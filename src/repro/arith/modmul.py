"""Integer-level reference modular multiplication algorithms.

These are the mathematical definitions of the three algorithm options in
the crypto layer's "Algorithm" design issue (paper Sec 5.1.1), used as
correctness oracles for the hardware/software substrates and as the
backend of :mod:`repro.arith.modexp`:

* pencil-and-paper: full product, one reduction;
* Brickell: MSB-first digit interleaving with per-step reduction;
* Montgomery: LSB-first digit interleaving with quotient-driven exact
  division by the radix (requires an odd modulus).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ReproError


class ModMulError(ReproError):
    """Invalid operands for a modular multiplication algorithm."""


def _check(a: int, b: int, modulus: int, min_modulus: int = 2) -> None:
    if modulus < min_modulus:
        raise ModMulError(f"modulus must be >= {min_modulus}, got {modulus}")
    if not (0 <= a < modulus and 0 <= b < modulus):
        raise ModMulError(
            f"operands must satisfy 0 <= a, b < m (a={a}, b={b}, m={modulus})")


def _check_radix(radix: int) -> int:
    if radix < 2 or radix & (radix - 1):
        raise ModMulError(f"radix must be a power of two >= 2, got {radix}")
    return int(math.log2(radix))


def digits_for(modulus: int, radix: int) -> int:
    """Digit count ``n`` with ``m < radix^n``."""
    bits_per_digit = _check_radix(radix)
    return max(1, -(-modulus.bit_length() // bits_per_digit))


def pencil_modmul(a: int, b: int, modulus: int) -> int:
    """Paper-and-pencil: full double-width product, then one reduction."""
    _check(a, b, modulus)
    return (a * b) % modulus


def brickell_modmul(a: int, b: int, modulus: int, radix: int = 2) -> int:
    """Brickell: most-significant-digit-first interleaving.

    At each step the running residue is multiplied by the radix, a
    partial product is added, and a bounded reduction brings it back
    below the modulus.  Works for any modulus >= 2.
    """
    _check(a, b, modulus)
    _check_radix(radix)
    n = digits_for(modulus, radix)
    residue = 0
    for i in range(n - 1, -1, -1):
        digit = (a // radix ** i) % radix
        residue = residue * radix + digit * b
        # Bounded reduction: residue < radix*m + radix*m before it.
        quotient = residue // modulus
        if quotient > 2 * radix:
            raise ModMulError("reduction bound violated")  # pragma: no cover
        residue -= quotient * modulus
    return residue


def montgomery_modmul(a: int, b: int, modulus: int, radix: int = 2
                      ) -> Tuple[int, int]:
    """Montgomery: least-significant-digit-first with exact division.

    Returns ``(result, n)`` where ``result = a*b*radix^(-n) mod m`` and
    ``n`` is the digit count used; callers needing a plain product use
    :func:`montgomery_multiply`.
    """
    _check(a, b, modulus, min_modulus=3)
    if modulus % 2 == 0:
        raise ModMulError("Montgomery requires an odd modulus")
    _check_radix(radix)
    n = digits_for(modulus, radix)
    minus_m_inv = pow(radix - modulus % radix, -1, radix)
    residue = 0
    for i in range(n):
        digit = (a // radix ** i) % radix
        residue += digit * b
        quotient = (residue * minus_m_inv) % radix
        residue = (residue + quotient * modulus) // radix
    if residue >= modulus:
        residue -= modulus
    return residue, n


def montgomery_multiply(a: int, b: int, modulus: int, radix: int = 2) -> int:
    """Plain ``a*b mod m`` through Montgomery domain round trips."""
    result, n = montgomery_modmul(a, b, modulus, radix)
    correction = pow(radix, n, modulus)
    return (result * correction) % modulus


def montgomery_form(value: int, modulus: int, radix: int = 2) -> int:
    """Map ``value`` into the Montgomery domain (``value * radix^n``)."""
    if not 0 <= value < modulus:
        raise ModMulError(f"value {value} out of range for modulus {modulus}")
    n = digits_for(modulus, radix)
    return (value * pow(radix, n, modulus)) % modulus
