"""Application workloads for the cryptography case study.

The paper motivates the whole exercise with "digital signature and
public key encryption" applications.  This module generates such
workloads — batches of signature/verify operations — and drives them
through any modular-multiplier backend (integer reference, hardware
simulator, software routine), reporting the operation counts and, when
the backend exposes cycle costs, the accumulated datapath cycles.

Used by the throughput benchmark to show that the core the layer
selects for the 8 us/multiplication budget also wins on an end-to-end
signing workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.arith.modexp import ModExpStats, ModMul
from repro.arith.rsa import RsaKeyPair, generate_keypair, sign, verify
from repro.errors import ReproError


@dataclass(frozen=True)
class SignatureWorkload:
    """A batch of digests to sign with one key."""

    key: RsaKeyPair
    digests: Sequence[int]

    @property
    def size(self) -> int:
        return len(self.digests)


def make_signature_workload(messages: int = 4, key_bits: int = 256,
                            seed: int = 0) -> SignatureWorkload:
    """Reproducible signing workload (key + random digests)."""
    if messages < 1:
        raise ReproError(f"workload needs >= 1 message, got {messages}")
    key = generate_keypair(bits=key_bits, seed=seed)
    rng = random.Random(seed + 1)
    digests = tuple(rng.randrange(1, key.modulus)
                    for _ in range(messages))
    return SignatureWorkload(key, digests)


@dataclass
class WorkloadResult:
    """Outcome of running a workload on one backend."""

    backend: str
    signatures: int
    modular_multiplications: int
    datapath_cycles: int
    verified: bool

    def cycles_per_signature(self) -> float:
        if not self.signatures:
            return 0.0
        return self.datapath_cycles / self.signatures

    def describe(self) -> str:
        cycles = (f", {self.datapath_cycles} cycles"
                  if self.datapath_cycles else "")
        return (f"{self.backend}: {self.signatures} signature(s), "
                f"{self.modular_multiplications} modmuls{cycles}, "
                f"verified={self.verified}")


#: A backend is a modmul plus an optional per-call cycle reader.
CycleReader = Callable[[], int]


def run_signature_workload(workload: SignatureWorkload,
                           modmul: ModMul,
                           backend_name: str = "reference",
                           cycle_reader: Optional[CycleReader] = None
                           ) -> WorkloadResult:
    """Sign every digest through ``modmul`` and verify the results.

    ``cycle_reader`` (when given) is sampled before and after the run;
    hardware-simulator backends expose their accumulated cycle counter
    through it.
    """
    start_cycles = cycle_reader() if cycle_reader else 0
    stats = ModExpStats()
    all_verified = True
    for digest in workload.digests:
        signature = sign(digest, workload.key, modmul=modmul, stats=stats)
        if not verify(digest, signature, workload.key):
            all_verified = False
    end_cycles = cycle_reader() if cycle_reader else 0
    return WorkloadResult(
        backend=backend_name,
        signatures=workload.size,
        modular_multiplications=stats.total,
        datapath_cycles=end_cycles - start_cycles,
        verified=all_verified,
    )


class SimulatorBackend:
    """Adapts a hardware multiplier simulator into a counting backend.

    Works with any object exposing ``multiply_mod(a, b, m)`` returning a
    result with ``.result`` and ``.cycles`` —
    :class:`~repro.hw.montgomery_hw.MontgomeryMultiplierHW` does, and
    Brickell simulators adapt via :meth:`from_brickell`.
    """

    def __init__(self, simulator, name: str):
        self._simulator = simulator
        self.name = name
        self.cycles = 0

    def modmul(self, a: int, b: int, modulus: int) -> int:
        run = self._simulator.multiply_mod(a, b, modulus)
        self.cycles += run.cycles
        return run.result

    def cycle_reader(self) -> int:
        return self.cycles

    @classmethod
    def from_brickell(cls, simulator, name: str) -> "SimulatorBackend":
        class _Wrapper:
            def multiply_mod(self, a, b, m, _sim=simulator):
                return _sim.simulate(a, b, m)

        return cls(_Wrapper(), name)
