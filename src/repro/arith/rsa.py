"""RSA — the cryptography application driving the case study.

The paper motivates modular exponentiation via "digital signature and
public key encryption" (its refs [9]/[10]).  This module provides a
small, self-contained RSA implementation — key generation with
Miller-Rabin primality testing, raw encrypt/decrypt/sign/verify — whose
exponentiations run on any modular-multiplier backend.  The examples use
it to show an end-to-end workload executing on a core selected through
the design space layer.

Raw (textbook) RSA only: no padding — it exercises the arithmetic
substrate; it is not a secure cryptosystem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.arith.modexp import ModExpStats, ModMul, binary_modexp
from repro.errors import ReproError


class RsaError(ReproError):
    """Key generation or usage failure."""


def is_probable_prime(candidate: int, rounds: int = 24,
                      rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    rng = rng or random.Random()
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise RsaError(f"prime size must be >= 8 bits, got {bits}")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair (textbook form)."""

    modulus: int
    public_exponent: int
    private_exponent: int
    bits: int

    def describe(self) -> str:
        return (f"RSA-{self.bits}: N has {self.modulus.bit_length()} bits, "
                f"e={self.public_exponent}")


def generate_keypair(bits: int = 512, public_exponent: int = 65537,
                     seed: Optional[int] = None) -> RsaKeyPair:
    """Generate a key pair; ``seed`` makes generation reproducible."""
    if bits < 32 or bits % 2:
        raise RsaError(f"key size must be an even number >= 32, got {bits}")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        modulus = p * q
        phi = (p - 1) * (q - 1)
        if phi % public_exponent == 0:
            continue
        try:
            private_exponent = pow(public_exponent, -1, phi)
        except ValueError:
            continue
        # The crypto layer's Req4 relies on the modulus being odd.
        assert modulus % 2 == 1
        return RsaKeyPair(modulus, public_exponent, private_exponent, bits)


def encrypt(message: int, key: RsaKeyPair,
            modmul: Optional[ModMul] = None,
            stats: Optional[ModExpStats] = None) -> int:
    """Raw RSA public operation ``message^e mod N``."""
    if not 0 <= message < key.modulus:
        raise RsaError("message must satisfy 0 <= m < N")
    return binary_modexp(message, key.public_exponent, key.modulus,
                         modmul, stats)


def decrypt(ciphertext: int, key: RsaKeyPair,
            modmul: Optional[ModMul] = None,
            stats: Optional[ModExpStats] = None) -> int:
    """Raw RSA private operation ``c^d mod N``."""
    if not 0 <= ciphertext < key.modulus:
        raise RsaError("ciphertext must satisfy 0 <= c < N")
    return binary_modexp(ciphertext, key.private_exponent, key.modulus,
                         modmul, stats)


def sign(digest: int, key: RsaKeyPair,
         modmul: Optional[ModMul] = None,
         stats: Optional[ModExpStats] = None) -> int:
    """Raw RSA signature (private operation on a digest value)."""
    return decrypt(digest, key, modmul, stats)


def verify(digest: int, signature: int, key: RsaKeyPair,
           modmul: Optional[ModMul] = None) -> bool:
    """Check a raw signature against its digest."""
    if not 0 <= signature < key.modulus:
        raise RsaError("signature must satisfy 0 <= s < N")
    return encrypt(signature, key, modmul) == digest
