"""Modular exponentiation built on pluggable modular multipliers.

The paper's application context is a modular exponentiation coprocessor
for cryptography ([10]): ``M^E mod N`` on integers up to 2^1000, with
modular multiplication as the basic operation.  This module provides the
exponentiation schedules and accepts *any* modular-multiplier backend —
the integer references, the hardware simulators, or the software
routines — which is exactly the decomposition the layer's DI7 models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.arith.modmul import (
    ModMulError,
    digits_for,
    montgomery_modmul,
)

#: A modular-multiplier backend: (a, b, modulus) -> a*b mod modulus.
ModMul = Callable[[int, int, int], int]


def _check(base: int, exponent: int, modulus: int) -> None:
    if modulus < 2:
        raise ModMulError(f"modulus must be >= 2, got {modulus}")
    if exponent < 0:
        raise ModMulError(f"exponent must be >= 0, got {exponent}")
    if not 0 <= base < modulus:
        raise ModMulError(f"base must satisfy 0 <= base < modulus")


@dataclass
class ModExpStats:
    """Multiplication counts of one exponentiation — the quantity the
    coprocessor's latency budget is written in."""

    squarings: int = 0
    multiplications: int = 0

    @property
    def total(self) -> int:
        return self.squarings + self.multiplications


def binary_modexp(base: int, exponent: int, modulus: int,
                  modmul: Optional[ModMul] = None,
                  stats: Optional[ModExpStats] = None) -> int:
    """Left-to-right square-and-multiply."""
    _check(base, exponent, modulus)
    mul: ModMul = modmul if modmul is not None else (
        lambda a, b, m: (a * b) % m)
    result = 1 % modulus
    for i in range(exponent.bit_length() - 1, -1, -1):
        result = mul(result, result, modulus)
        if stats is not None:
            stats.squarings += 1
        if (exponent >> i) & 1:
            result = mul(result, base, modulus)
            if stats is not None:
                stats.multiplications += 1
    return result


def mary_modexp(base: int, exponent: int, modulus: int, window_bits: int = 4,
                modmul: Optional[ModMul] = None,
                stats: Optional[ModExpStats] = None) -> int:
    """m-ary (fixed window) exponentiation — fewer multiplications at the
    cost of a table of ``2^window_bits`` precomputed powers."""
    _check(base, exponent, modulus)
    if not 1 <= window_bits <= 8:
        raise ModMulError(f"window must be 1..8 bits, got {window_bits}")
    mul: ModMul = modmul if modmul is not None else (
        lambda a, b, m: (a * b) % m)
    table = [1 % modulus, base]
    for _ in range(2, 1 << window_bits):
        table.append(mul(table[-1], base, modulus))
        if stats is not None:
            stats.multiplications += 1
    result = 1 % modulus
    bits = exponent.bit_length()
    windows = -(-bits // window_bits) if bits else 0
    for w in range(windows - 1, -1, -1):
        for _ in range(window_bits):
            result = mul(result, result, modulus)
            if stats is not None:
                stats.squarings += 1
        digit = (exponent >> (w * window_bits)) & ((1 << window_bits) - 1)
        if digit:
            result = mul(result, table[digit], modulus)
            if stats is not None:
                stats.multiplications += 1
    return result


def montgomery_modexp(base: int, exponent: int, modulus: int,
                      radix: int = 2,
                      stats: Optional[ModExpStats] = None) -> int:
    """Exponentiation entirely inside the Montgomery domain.

    One conversion in, one conversion out, all inner products as raw
    MonPro steps — the schedule the paper's coprocessor implements and
    the reason Fig 6 plots the *loop* delay of the multiplier.
    """
    _check(base, exponent, modulus)
    if modulus % 2 == 0:
        raise ModMulError("Montgomery exponentiation needs an odd modulus")
    n = digits_for(modulus, radix)
    r_mod = pow(radix, n, modulus)

    def monpro(a: int, b: int, m: int) -> int:
        result, _digits = montgomery_modmul(a, b, m, radix)
        return result

    result_bar = r_mod % modulus           # 1 in Montgomery form
    base_bar = (base * r_mod) % modulus
    for i in range(exponent.bit_length() - 1, -1, -1):
        result_bar = monpro(result_bar, result_bar, modulus)
        if stats is not None:
            stats.squarings += 1
        if (exponent >> i) & 1:
            result_bar = monpro(result_bar, base_bar, modulus)
            if stats is not None:
                stats.multiplications += 1
    return monpro(result_bar, 1, modulus)
