"""Integer-level reference arithmetic: modular multiplication and
exponentiation algorithms, plus the RSA application driver."""

from repro.arith.modexp import (
    ModExpStats,
    ModMul,
    binary_modexp,
    mary_modexp,
    montgomery_modexp,
)
from repro.arith.modmul import (
    ModMulError,
    brickell_modmul,
    digits_for,
    montgomery_form,
    montgomery_modmul,
    montgomery_multiply,
    pencil_modmul,
)
from repro.arith.workload import (
    SignatureWorkload,
    SimulatorBackend,
    WorkloadResult,
    make_signature_workload,
    run_signature_workload,
)
from repro.arith.rsa import (
    RsaError,
    RsaKeyPair,
    decrypt,
    encrypt,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    sign,
    verify,
)

__all__ = [
    "ModExpStats", "ModMul", "binary_modexp", "mary_modexp",
    "montgomery_modexp",
    "ModMulError", "brickell_modmul", "digits_for", "montgomery_form",
    "montgomery_modmul", "montgomery_multiply", "pencil_modmul",
    "RsaError", "RsaKeyPair", "decrypt", "encrypt", "generate_keypair",
    "generate_prime", "is_probable_prime", "sign", "verify",
    "SignatureWorkload", "SimulatorBackend", "WorkloadResult",
    "make_signature_workload", "run_signature_workload",
]
