"""An interactive exploration shell: ``python -m repro shell``.

The paper's workflow is a dialogue — the designer asks what the options
buy, commits, reconsiders.  This wraps an
:class:`~repro.core.session.ExplorationSession` in a line-oriented
command loop (the standard :mod:`cmd` machinery, so it scripts cleanly
through stdin for tests and demos):

::

    (dsl) require EffectiveOperandLength=768
    (dsl) options ImplementationStyle
    (dsl) decide ImplementationStyle=Hardware
    (dsl) report
    (dsl) explain #8_64
    (dsl) checkpoint before-algorithm
    (dsl) decide Algorithm=Montgomery
    (dsl) restore before-algorithm
"""

from __future__ import annotations

import cmd
from typing import IO, Optional

from repro.core.layer import DesignSpaceLayer
from repro.core.session import ExplorationSession
from repro.errors import ReproError


def _binding(arg: str):
    name, sep, raw = arg.partition("=")
    if not sep or not name or not raw:
        raise ReproError(f"expected Name=value, got {arg!r}")
    for caster in (int, float):
        try:
            return name.strip(), caster(raw)
        except ValueError:
            continue
    return name.strip(), raw.strip()


class ExplorationShell(cmd.Cmd):
    """Interactive front-end over one exploration session."""

    prompt = "(dsl) "
    intro = ("Design space exploration shell — 'help' lists commands, "
             "'report' shows the current state, 'quit' leaves.")

    def __init__(self, layer: DesignSpaceLayer, start: str,
                 merit_metrics=("area", "latency_ns", "delay_us"),
                 stdin: Optional[IO[str]] = None,
                 stdout: Optional[IO[str]] = None):
        super().__init__(stdin=stdin, stdout=stdout)
        if stdin is not None:
            self.use_rawinput = False
        self.session = ExplorationSession(layer, start,
                                          merit_metrics=merit_metrics)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _say(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _guard(self, action) -> None:
        try:
            action()
        except ReproError as exc:
            self._say(f"error: {exc}")

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def do_report(self, _arg: str) -> None:
        """report — current CDO, bindings, candidates, ranges."""
        self._say(self.session.report())

    def do_require(self, arg: str) -> None:
        """require NAME=VALUE — enter a requirement value."""
        def action():
            name, value = _binding(arg)
            self.session.set_requirement(name, value)
            self._say(f"requirement {name} = {value!r} "
                      f"({len(self.session.candidates())} candidates)")
        self._guard(action)

    def do_decide(self, arg: str) -> None:
        """decide ISSUE=OPTION — commit a design decision."""
        def action():
            name, value = _binding(arg)
            self.session.decide(name, value)
            self._say(f"decided {name} = {value!r}; now at "
                      f"{self.session.current_cdo.qualified_name} "
                      f"({len(self.session.candidates())} candidates)")
        self._guard(action)

    def do_options(self, arg: str) -> None:
        """options ISSUE — annotate the options of a design issue."""
        def action():
            if not arg.strip():
                for issue in self.session.addressable_issues():
                    self._say(f"  {issue.name}: "
                              f"{issue.domain.describe()}")
                return
            for info in self.session.available_options(arg.strip()):
                if info.eliminated:
                    self._say(f"  {info.option}: eliminated "
                              f"({info.elimination_reason})")
                else:
                    self._say(f"  {info.option}: {info.candidate_count} "
                              f"candidates {info.ranges}")
        self._guard(action)

    def do_candidates(self, _arg: str) -> None:
        """candidates — list the surviving cores."""
        for core in self.session.candidates():
            self._say(f"  {core.describe()}")

    def do_explain(self, arg: str) -> None:
        """explain CORE — why a core is in or out."""
        self._guard(lambda: self._say(self.session.explain(arg.strip())))

    def do_undo(self, _arg: str) -> None:
        """undo — revert the last mutation."""
        self._guard(lambda: (self.session.undo(), self._say("undone"))[1])

    def do_retract(self, arg: str) -> None:
        """retract NAME — withdraw a decision or requirement."""
        def action():
            self.session.retract(arg.strip())
            self._say(f"retracted {arg.strip()}; at "
                      f"{self.session.current_cdo.qualified_name}")
        self._guard(action)

    def do_checkpoint(self, arg: str) -> None:
        """checkpoint TAG — save the state for branched what-ifs."""
        def action():
            self.session.checkpoint(arg.strip())
            self._say(f"checkpoint {arg.strip()!r} saved")
        self._guard(action)

    def do_restore(self, arg: str) -> None:
        """restore TAG — return to a named checkpoint."""
        def action():
            self.session.restore(arg.strip())
            self._say(f"restored {arg.strip()!r}; at "
                      f"{self.session.current_cdo.qualified_name}")
        self._guard(action)

    def do_checkpoints(self, _arg: str) -> None:
        """checkpoints — list saved checkpoints."""
        self._say(", ".join(self.session.checkpoints()) or "(none)")

    def do_advise(self, _arg: str) -> None:
        """advise — rank the addressable issues by figure-of-merit
        impact (which decision to take next)."""
        from repro.core.advisor import advise
        def action():
            impacts = advise(self.session)
            if not impacts:
                self._say("no addressable issues")
            for impact in impacts:
                self._say(f"  {impact.describe()}")
        self._guard(action)

    def do_lint(self, arg: str) -> None:
        """lint [RULE ...] — static diagnostics for the session's layer
        (optionally restricted to rule codes/slugs/categories)."""
        from repro.core.lint import LintConfig, lint_layer
        def action():
            select = arg.split() or None
            report = lint_layer(self.session.layer,
                                config=LintConfig(select=select))
            self._say(report.render_text())
        self._guard(action)

    def do_verify(self, _arg: str) -> None:
        """verify — semantic verification from the current position:
        dead-branch proofs, unsat cores for the entered requirements,
        and the constraint stratification report."""
        def action():
            session = self.session
            report = session.layer.verify(
                requirements=tuple(session.requirement_values.items()),
                start=session.current_cdo.qualified_name)
            self._say(report.render_text())
            for core in report.analysis.unsat_cores:
                self._say(f"fix-it: region {core.region}:")
                for hint in core.hints:
                    self._say(f"  - {hint}")
        self._guard(action)

    def do_explore(self, arg: str) -> None:
        """explore [STRATEGY] [key=value ...] — automated search from the
        current position (requirements and decisions carried over).

        STRATEGY is exhaustive, bnb (default), beam or evolutionary;
        key=value pairs become strategy options (width=2, seed=7,
        population=16, ...) with 'jobs' controlling parallelism."""
        from repro.core.explore import ExplorationEngine, ExplorationProblem
        from repro.core.properties import DesignIssue

        def action():
            strategy = "bnb"
            options = {}
            for word in arg.split():
                if "=" in word:
                    name, value = _binding(word)
                    options[name] = value
                else:
                    strategy = word
            session = self.session
            decisions = []
            for name, option in session.decisions.items():
                prop = session.current_cdo.find_property(name)
                if isinstance(prop, DesignIssue) and prop.generalized:
                    continue  # implied by the current position
                decisions.append((name, option))
            problem = ExplorationProblem(
                start=session.current_cdo.qualified_name,
                metrics=session.merit_metrics,
                requirements=tuple(session.requirement_values.items()),
                decisions=tuple(decisions),
                layer=session.layer)
            jobs = int(options.pop("jobs", 1))  # type: ignore[call-overload]
            engine = ExplorationEngine(problem, strategy=strategy,
                                       jobs=jobs, strategy_options=options)
            self._say(engine.run().render_text())
        self._guard(action)

    def do_log(self, _arg: str) -> None:
        """log — the session's action log."""
        for line in self.session.log:
            self._say(f"  - {line}")

    def do_trace(self, arg: str) -> None:
        """trace on|off|status|save PATH — control exploration tracing.

        'on' starts recording structured events for every subsequent
        action; 'save PATH' writes them as a replayable JSONL file
        (verify later with 'repro trace PATH --replay')."""
        from repro.core.obs import summarize, write_jsonl
        layer = self.session.layer

        def action():
            word, _, rest = arg.strip().partition(" ")
            if word in ("", "status"):
                if layer.observer.enabled:
                    self._say(summarize(layer.observer.events))
                else:
                    self._say("tracing is off ('trace on' to start)")
            elif word == "on":
                layer.observe()
                self._say("tracing on")
            elif word == "off":
                layer.observe(None)
                self._say("tracing off")
            elif word == "save":
                path = rest.strip()
                if not path:
                    raise ReproError("usage: trace save PATH")
                if not layer.observer.enabled:
                    raise ReproError("tracing is off; nothing to save")
                count = write_jsonl(layer.observer.events, path)
                self._say(f"{count} events written to {path}")
            else:
                raise ReproError(
                    f"unknown trace subcommand {word!r}; "
                    f"expected on, off, status or save PATH")
        self._guard(action)

    def do_profile(self, arg: str) -> None:
        """profile [TOP] — span profile of the current trace.

        Aggregates the events recorded since 'trace on' into hot sites
        (self/cumulative time) and an indented flame tree; TOP bounds
        the table (default 10)."""
        from repro.core.obs import profile_events
        layer = self.session.layer

        def action():
            if not layer.observer.enabled:
                raise ReproError(
                    "tracing is off ('trace on' to start collecting)")
            word = arg.strip()
            top = int(word) if word else 10
            profile = profile_events(layer.observer.events)
            self._say(profile.render_table(top=top))
            self._say(profile.render_flame())
        self._guard(action)

    def do_stats(self, _arg: str) -> None:
        """stats — metrics collected while tracing was on."""
        if not self.session.layer.observer.enabled:
            self._say("tracing is off ('trace on' to start collecting)")
            return
        self._say(self.session.layer.observer.metrics.render_text())

    def do_quit(self, _arg: str) -> bool:
        """quit — leave the shell."""
        return True

    do_exit = do_quit
    do_EOF = do_quit

    def emptyline(self) -> None:  # do not repeat the last command
        pass

    def default(self, line: str) -> None:
        self._say(f"unknown command {line.split()[0]!r}; try 'help'")


def run_shell(layer: DesignSpaceLayer, start: str,
              stdin: Optional[IO[str]] = None,
              stdout: Optional[IO[str]] = None) -> ExplorationShell:
    """Create and run a shell; returns it (for inspecting the session)."""
    shell = ExplorationShell(layer, start, stdin=stdin, stdout=stdout)
    shell.cmdloop()
    return shell
