"""Design-space pruning: filtering cores by decisions and requirements.

Each design decision made during conceptual design corresponds to a
pruning of the component's design space: "the reusable designs that fall
outside the selected region ... are immediately eliminated from
consideration" (paper Sec 1).  This module implements that filter,
independent of session mechanics so it can be unit-tested and reused by
the benchmarks.
"""

from __future__ import annotations

import enum
import hashlib
import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.designobject import DesignObject
from repro.core.properties import Requirement


def names_digest(names: Sequence[str]) -> str:
    """Order-sensitive fingerprint of a core-name sequence.

    Used by the observability layer to record (and later verify, on
    replay) *which* cores survived a pruning pass without embedding the
    whole name list in every trace event.
    """
    joined = "\x00".join(names)
    return hashlib.sha1(joined.encode("utf-8")).hexdigest()[:16]


class MissingPolicy(enum.Enum):
    """How to treat a core that does not document a decided property.

    ``EXCLUDE`` (default) mirrors the paper's indexing discipline: cores
    are positioned in the space via design-issue values, so an
    undocumented value means the core is not in the selected region.
    ``INCLUDE`` keeps under-documented cores visible — useful when a
    library is being migrated into the layer.
    """

    EXCLUDE = "exclude"
    INCLUDE = "include"


class PruneReport:
    """Outcome of one filtering pass, for reporting and benchmarks.

    ``eliminated`` (core name -> human-readable reason) may be supplied
    eagerly, or as ``eliminated_factory`` — a thunk the indexed prune
    path uses to defer reason reconstruction until :attr:`eliminated`
    is actually read (most queries only need the survivors).
    """

    def __init__(self, survivors: List[DesignObject],
                 eliminated: Optional[Dict[str, str]] = None,
                 eliminated_factory: Optional[Callable[[], Dict[str, str]]] = None):
        self.survivors = survivors
        self._eliminated = eliminated if eliminated is not None else (
            None if eliminated_factory is not None else {})
        self._eliminated_factory = eliminated_factory
        self._digest: Optional[str] = None

    @property
    def eliminated(self) -> Dict[str, str]:
        if self._eliminated is None:
            assert self._eliminated_factory is not None
            self._eliminated = self._eliminated_factory()
        return self._eliminated

    @property
    def survivor_names(self) -> List[str]:
        return [core.name for core in self.survivors]

    def digest(self) -> str:
        """Fingerprint of the surviving-core names (order-sensitive).

        Memoized: the survivor list never changes after construction,
        and the trace path asks repeatedly (prune span, cache hits)."""
        if self._digest is None:
            self._digest = names_digest(self.survivor_names)
        return self._digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lazy = "" if self._eliminated is not None else " (reasons pending)"
        return f"<PruneReport {len(self.survivors)} survivors{lazy}>"


def _match_decision(core: DesignObject, name: str, option: object,
                    policy: MissingPolicy) -> Optional[str]:
    """None if the core complies with the decision, else the reason."""
    if not core.has_property(name):
        if policy is MissingPolicy.INCLUDE:
            return None
        return f"does not document decided issue {name!r}"
    value = core.property_value(name)
    if value != option:
        return f"{name}={value!r} (decision: {option!r})"
    return None


def _match_requirement(core: DesignObject, req: Requirement, required: object,
                       policy: MissingPolicy) -> Optional[str]:
    """None if the core satisfies the requirement value, else the reason.

    Requirement satisfaction checks both the core's documented property
    value (a capability, e.g. supported EOL) and — for MAX/MIN senses —
    the matching figure of merit when the property is absent but a merit
    with the same name exists (e.g. a latency requirement against a
    measured latency merit).

    Unlike design issues, an *undocumented* requirement never eliminates
    a core regardless of policy: cores are positioned in the design
    space through their design-issue values; requirement properties they
    do not document simply do not constrain them (e.g. a Brickell core
    carries no ModuloIsOdd property because it works either way).
    """
    if core.has_property(req.name):
        if req.satisfied_by(core.property_value(req.name), required):
            return None
        return (f"{req.name}={core.property_value(req.name)!r} fails "
                f"required {required!r} ({req.sense.value})")
    if core.has_merit(req.name):
        if req.satisfied_by(core.merit(req.name), required):
            return None
        return (f"{req.name}={core.merit(req.name):g} fails required "
                f"{required!r} ({req.sense.value})")
    return None


def prune(cores: Sequence[DesignObject],
          decisions: Mapping[str, object],
          requirements: Sequence[Tuple[Requirement, object]] = (),
          policy: MissingPolicy = MissingPolicy.EXCLUDE) -> PruneReport:
    """Filter ``cores`` down to those complying with every decision and
    requirement value.

    ``decisions`` maps design-issue names to the chosen option;
    ``requirements`` pairs requirement schemata with the designer-entered
    values.
    """
    survivors: List[DesignObject] = []
    eliminated: Dict[str, str] = {}
    for core in cores:
        reason = None
        for name, option in decisions.items():
            reason = _match_decision(core, name, option, policy)
            if reason:
                break
        if reason is None:
            for req, value in requirements:
                reason = _match_requirement(core, req, value, policy)
                if reason:
                    break
        if reason is None:
            survivors.append(core)
        else:
            eliminated[core.name] = reason
    return PruneReport(survivors=survivors, eliminated=eliminated)


def merit_ranges(cores: Sequence[DesignObject], metrics: Sequence[str]
                 ) -> Dict[str, Tuple[float, float]]:
    """Min/max of each metric over the cores that document it.

    This is the "critical information on the set of reusable designs that
    do comply with the decision, including ranges of performance and power
    consumption" the paper surfaces after every pruning step.  Metrics no
    surviving core documents are omitted.
    """
    ranges: Dict[str, Tuple[float, float]] = {}
    for metric in metrics:
        values = [core.merit(metric) for core in cores if core.has_merit(metric)]
        if values:
            ranges[metric] = (min(values), max(values))
    return ranges


def merit_bounds(ranges: Mapping[str, Tuple[float, float]],
                 metrics: Sequence[str]) -> Tuple[float, ...]:
    """Optimistic per-metric lower bounds of a design-space region.

    Given the min/max merit ranges of the cores surviving inside a
    region (as reported by :func:`merit_ranges` or the indexed
    ``merit_ranges_for``), returns the vector of minima in ``metrics``
    order — the best value any core in the region could still achieve.
    Metrics no surviving core documents are unbounded below only in
    theory; for dominance bounding we treat them as ``inf`` (worst),
    matching the frontier's missing-merit coordinates, so a region is
    never pruned for a metric nothing in it documents.

    Because every further decision only shrinks the surviving set, these
    minima are valid optimistic bounds for branch-and-bound: no terminal
    outcome under the region can beat them.
    """
    return tuple(ranges[m][0] if m in ranges else math.inf for m in metrics)


def option_support(cores: Sequence[DesignObject], issue_name: str
                   ) -> Dict[object, int]:
    """How many cores realize each option of a design issue — lets the
    designer see which regions of the space are populated."""
    support: Dict[object, int] = {}
    for core in cores:
        if core.has_property(issue_name):
            option = core.property_value(issue_name)
            support[option] = support.get(option, 0) + 1
    return support
