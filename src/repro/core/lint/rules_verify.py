"""DSL1xx — semantic verifier findings surfaced through the linter.

These rules are thin adapters around
:func:`repro.core.verify.engine.analyze_layer`: the verifier does the
abstract interpretation, the rules render its proofs as diagnostics so
the full lint toolchain (severity policy, ``--fail-on``, JSON output,
golden files) applies unchanged.

Unlike the structural DSL0xx rules they are **opt-in**: they yield
nothing unless the ``verify`` category's rule options carry
``enabled=True`` (plus the requirement set and optional start CDO of the
verification run).  :func:`repro.core.verify.verify_layer` injects those
options; a plain ``lint_layer()``/``repro lint`` run is byte-identical
to before the verifier existed.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.core.lint.engine import LintContext
from repro.core.lint.registry import DiagnosticFactory, rule

if False:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.verify.engine import VerifyAnalysis


def _analysis(ctx: LintContext, options: Mapping[str, object]
              ) -> Optional["VerifyAnalysis"]:
    """The (epoch-cached) verifier run these rules render, or ``None``
    when the run is not opted in."""
    if not options.get("enabled"):
        return None
    from repro.core.verify.engine import analyze_layer
    requirements: Sequence[Tuple[str, object]] = \
        tuple(options.get("requirements", ()) or ())  # type: ignore[arg-type]
    start = options.get("start")
    return analyze_layer(ctx.layer, requirements=requirements,
                         start=start if isinstance(start, str) else None)


@rule(code="DSL100", slug="dead-branch-proved", category="verify",
      severity=Severity.INFO,
      doc="A design-issue option is proved dead: every reachable session "
          "state violates a consistency constraint when it is chosen (or "
          "an elimination relation always removes it). Exploration may "
          "skip the branch without changing the frontier.")
def dead_branch_proved(ctx: LintContext, options: Mapping[str, object],
                       make: DiagnosticFactory) -> Iterator[Diagnostic]:
    analysis = _analysis(ctx, options)
    if analysis is None:
        return
    for proof in analysis.proofs:
        if proof.kind == "empty-region":
            continue  # rendered by DSL101
        yield make(
            SourceLocation("cdo", proof.cdo, proof.issue),
            f"option {proof.issue}={proof.option!r} is proved dead "
            f"({proof.kind}): {proof.explanation}",
            hint=f"drop the option or revisit constraint "
                 f"{proof.constraint or '<none>'}")


@rule(code="DSL101", slug="empty-feasible-region", category="verify",
      severity=Severity.INFO,
      doc="The feasible region under an option (or a whole CDO) is "
          "empty: no reusable core satisfies the given requirements, or "
          "constraint propagation emptied a property's abstract value.")
def empty_feasible_region(ctx: LintContext, options: Mapping[str, object],
                          make: DiagnosticFactory) -> Iterator[Diagnostic]:
    analysis = _analysis(ctx, options)
    if analysis is None:
        return
    for proof in analysis.proofs:
        if proof.kind != "empty-region":
            continue
        yield make(
            SourceLocation("cdo", proof.cdo, proof.issue),
            f"option {proof.issue}={proof.option!r} has an empty region: "
            f"{proof.explanation}",
            hint="register cores under the option or relax the "
                 "requirements")
    for qname in sorted(analysis.regions):
        region = analysis.regions[qname]
        if not region.empty:
            continue
        drained = sorted(n for n, v in region.properties.items()
                         if getattr(v, "is_empty", False))
        yield make(
            SourceLocation("cdo", qname),
            f"feasible region is empty: no value survives constraint "
            f"propagation for {', '.join(drained) or 'some property'}",
            hint="the requirement set conflicts with the constraints "
                 "applicable here; see the unsat core")


@rule(code="DSL102", slug="widening-unstable-stratum", category="verify",
      severity=Severity.WARNING,
      doc="A constraint stratum depends on an estimator-derived property "
          "that feeds further constraints: the verifier must widen there, "
          "so nothing downstream of the stratum can be statically "
          "narrowed or proved.")
def widening_unstable_stratum(ctx: LintContext,
                              options: Mapping[str, object],
                              make: DiagnosticFactory
                              ) -> Iterator[Diagnostic]:
    analysis = _analysis(ctx, options)
    if analysis is None:
        return
    for stratum in analysis.strata:
        if not stratum.unstable:
            continue
        props = ", ".join(stratum.unstable_properties)
        yield make(
            SourceLocation("layer", analysis.layer_name,
                           f"stratum-{stratum.index}"),
            f"stratum {stratum.index} is widening-unstable: "
            f"estimator-derived {props} feeds "
            f"{stratum.fan_out} downstream constraint edge(s)",
            hint="constraints reading an estimated value can only be "
                 "checked dynamically; keep them last in the ordering")


@rule(code="DSL103", slug="infeasible-requirements", category="verify",
      severity=Severity.ERROR,
      doc="The given requirement set is infeasible at a region: no core "
          "survives or a constraint is guaranteed to fail before any "
          "decision. The minimal unsat core lists exactly the conflicting "
          "requirements and constraints.")
def infeasible_requirements(ctx: LintContext,
                            options: Mapping[str, object],
                            make: DiagnosticFactory) -> Iterator[Diagnostic]:
    analysis = _analysis(ctx, options)
    if analysis is None:
        return
    for core in analysis.unsat_cores:
        reqs = ", ".join(f"{n}={v!r}" for n, v in core.requirements)
        cons = ", ".join(core.constraints)
        parts = [p for p in (reqs and f"requirements [{reqs}]",
                             cons and f"constraints [{cons}]") if p]
        yield make(
            SourceLocation("cdo", core.region),
            f"requirement set is infeasible here; minimal unsat core: "
            f"{'; '.join(parts) or 'the region itself (no cores)'}",
            hint=" | ".join(core.hints))
