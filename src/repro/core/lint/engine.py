"""The lint engine: walk a layer once, run every enabled rule over it.

The engine never opens an :class:`~repro.core.session.ExplorationSession`
— linting is a *static* pass over the layer's three artifact families
(CDO hierarchies, the constraint network, the library federation).  A
:class:`LintContext` precomputes the shared views every rule needs
(qualified-name maps, per-CDO core groupings, ancestor core counts) so
each rule stays linear in the artifact count; the 5k-core benchmark in
``benchmarks/test_bench_lint.py`` guards that property.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.cdo import QNAME_SEP, ClassOfDesignObjects
from repro.core.constraints import ConsistencyConstraint
from repro.core.designobject import DesignObject
from repro.core.lint.diagnostics import Diagnostic, LintReport
from repro.core.lint.registry import (
    DEFAULT_REGISTRY,
    LintConfig,
    RuleRegistry,
)
from repro.core.path import PropertyPath
from repro.errors import LintError, PathError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.layer import DesignSpaceLayer
    from repro.core.library import ReuseLibrary


class LintContext:
    """Shared, precomputed views of one layer for all rules of one run."""

    def __init__(self, layer: "DesignSpaceLayer"):
        self.layer = layer
        self.aliases: Dict[str, str] = dict(layer.aliases)
        self.cdos: List[ClassOfDesignObjects] = layer.all_cdos()
        self.constraints: List[ConsistencyConstraint] = \
            list(layer.constraints)

        #: qualified name -> CDO (first occurrence wins, mirroring the
        #: resolution order of :meth:`DesignSpaceLayer.cdo`).
        self.by_qname: Dict[str, ClassOfDesignObjects] = {}
        for cdo in self.cdos:
            self.by_qname.setdefault(cdo.qualified_name, cdo)
        self.leaves: List[ClassOfDesignObjects] = \
            [c for c in self.cdos if c.is_leaf]

        #: (library, core) pairs across the federation, plus groupings.
        self.cores: List[Tuple["ReuseLibrary", DesignObject]] = []
        self.cores_by_cdo: Dict[str, List[DesignObject]] = {}
        #: cores indexed at or under each known qualified name.
        self.core_counts_under: Dict[str, int] = {}
        for library in layer.libraries.libraries:
            for core in library:
                self.cores.append((library, core))
                self.cores_by_cdo.setdefault(core.cdo_name, []).append(core)
                owner = self.by_qname.get(core.cdo_name)
                if owner is not None:
                    for node in owner.path_from_root():
                        qname = node.qualified_name
                        self.core_counts_under[qname] = \
                            self.core_counts_under.get(qname, 0) + 1

        self._applicable_cache: Dict[str, List[ClassOfDesignObjects]] = {}

    # ------------------------------------------------------------------
    # helpers shared by rule implementations
    # ------------------------------------------------------------------
    def core_location_name(self, library: "ReuseLibrary",
                           core: DesignObject) -> str:
        return f"{library.name}/{core.name}"

    def applicable_cdos(self, constraint: ConsistencyConstraint
                        ) -> List[ClassOfDesignObjects]:
        """CDOs where every reference of ``constraint`` is meaningful
        (cached per constraint name within one run)."""
        hit = self._applicable_cache.get(constraint.name)
        if hit is None:
            hit = [cdo for cdo in self.cdos
                   if constraint.applies_to(cdo, self.aliases)]
            self._applicable_cache[constraint.name] = hit
        return hit

    def resolve_ref(self, ref: PropertyPath
                    ) -> List[Tuple[ClassOfDesignObjects, object]]:
        """Resolve a path reference against the layer (alias-expanded);
        raises :class:`~repro.errors.PathError` when dangling."""
        return ref.expand_aliases(self.aliases).resolve(self.cdos)

    def sampled_values(self, ref: object, limit: int = 8
                       ) -> Optional[Tuple[object, ...]]:
        """Representative values of a path reference's property domain.

        Returns ``None`` when the reference cannot be sampled statically
        (session bindings, dangling paths, unenumerable domains) — rules
        then stay silent rather than guess.
        """
        if not isinstance(ref, PropertyPath):
            return None
        try:
            hits = self.resolve_ref(ref)
        except PathError:
            return None
        _cdo, prop = hits[0]
        domain = getattr(prop, "domain", None)
        if domain is None:
            return None
        try:
            samples = tuple(domain.sample(limit))
        except Exception:
            return None
        if not samples:
            return None
        # Deduplicate, preserving order.
        seen = []
        for value in samples:
            if value not in seen:
                seen.append(value)
        return tuple(seen)

    def is_descendant_name(self, qname: str, ancestor_qname: str) -> bool:
        return qname == ancestor_qname or \
            qname.startswith(ancestor_qname + QNAME_SEP)


def _loaded_registry(registry: Optional[RuleRegistry]) -> RuleRegistry:
    if registry is not None:
        return registry
    # Importing the rule modules populates DEFAULT_REGISTRY exactly once.
    from repro.core.lint import rules_constraints  # noqa: F401
    from repro.core.lint import rules_decomposition  # noqa: F401
    from repro.core.lint import rules_hierarchy  # noqa: F401
    from repro.core.lint import rules_library  # noqa: F401
    from repro.core.lint import rules_verify  # noqa: F401
    return DEFAULT_REGISTRY


def lint_layer(layer: "DesignSpaceLayer",
               config: Optional[LintConfig] = None,
               registry: Optional[RuleRegistry] = None) -> LintReport:
    """Run every enabled rule over ``layer`` and collect a report.

    A rule that itself crashes is reported as a ``DSL000`` error naming
    the rule rather than aborting the pass — a linter that dies on the
    layers it exists to debug would be useless.
    """
    registry = _loaded_registry(registry)
    config = config if config is not None else LintConfig()
    config.validate(registry)
    context = LintContext(layer)
    diagnostics: List[Diagnostic] = []
    for lint_rule in registry:
        if not config.is_enabled(lint_rule):
            continue
        make = lint_rule.factory(config.severity_for(lint_rule))
        options = config.options_for(lint_rule)
        try:
            findings: Sequence[Diagnostic] = \
                list(lint_rule.check(context, options, make))
        except LintError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            from repro.core.lint.diagnostics import (
                Severity,
                SourceLocation,
            )
            findings = [Diagnostic(
                code="DSL000", rule=lint_rule.slug,
                severity=Severity.ERROR,
                location=SourceLocation("layer", layer.name),
                message=f"rule {lint_rule.code} crashed: {exc}",
                hint="report this as a linter bug")]
        diagnostics.extend(findings)
    return LintReport(layer.name, diagnostics)
