"""Library rules — health of the core federation (DSL020-DSL023).

The design space layer "transparently indexes designs residing in
different libraries" (Fig 1), but only cores indexed under *known* CDOs
participate: an orphan core is invisible to every subtree query, an
uncharacterized core cannot be placed in the evaluation space (Figs
9/12), and an empty leaf region is a part of the space the reuse
libraries cannot serve at all.
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterator, List, Mapping, Set

from repro.core.lint.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
)
from repro.core.lint.engine import LintContext
from repro.core.lint.registry import DiagnosticFactory, rule
from repro.core.library import ReuseLibrary


@rule(code="DSL020", slug="orphan-core", category="library",
      severity=Severity.ERROR,
      doc="A core is indexed under a CDO name that exists in no "
          "hierarchy of the layer — it is invisible to every query")
def orphan_core(ctx: LintContext, options: Mapping[str, object],
                make: DiagnosticFactory) -> Iterator[Diagnostic]:
    known = list(ctx.by_qname)
    for library, core in ctx.cores:
        if core.cdo_name in ctx.by_qname:
            continue
        close = difflib.get_close_matches(core.cdo_name, known, n=1)
        hint = (f"did you mean {close[0]!r}?" if close
                else "index the core under a qualified CDO name of the "
                     "layer")
        yield make(
            SourceLocation("core", ctx.core_location_name(library, core),
                           core.cdo_name),
            f"indexed under unknown CDO {core.cdo_name!r}; no subtree "
            f"query can ever reach it",
            hint=hint)


@rule(code="DSL021", slug="core-under-inner-node", category="library",
      severity=Severity.WARNING,
      doc="A core is indexed under a non-leaf CDO — its position leaves "
          "design issues of that region undecided")
def core_under_inner_node(ctx: LintContext, options: Mapping[str, object],
                          make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for library, core in ctx.cores:
        owner = ctx.by_qname.get(core.cdo_name)
        if owner is None or owner.is_leaf:
            continue
        issue = owner.generalized_issue
        issue_name = issue.name if issue is not None else "?"
        yield make(
            SourceLocation("core", ctx.core_location_name(library, core),
                           core.cdo_name),
            f"indexed under non-leaf CDO {core.cdo_name!r}; the core "
            f"does not say how it decides {issue_name!r}",
            hint="index the core under the leaf matching the options "
                 "it realizes")


@rule(code="DSL022", slug="missing-merits", category="library",
      severity=Severity.WARNING,
      doc="A core lacks figures of merit that every other core of the "
          "same region declares — it cannot be compared in the "
          "evaluation space")
def missing_merits(ctx: LintContext, options: Mapping[str, object],
                   make: DiagnosticFactory) -> Iterator[Diagnostic]:
    library_of: Dict[int, ReuseLibrary] = \
        {id(core): library for library, core in ctx.cores}
    for cdo_name, cores in sorted(ctx.cores_by_cdo.items()):
        if len(cores) < 2:
            continue
        keysets: List[Set[str]] = [set(core.merits) for core in cores]
        # A key is common to every *other* core of the region exactly
        # when n-1 cores declare it and this one does not (n declarers
        # means this core has it too) — one counting pass keeps the
        # rule linear in federation size.
        group_size = len(cores)
        declarers: Dict[str, int] = {}
        for keys in keysets:
            for key in keys:
                declarers[key] = declarers.get(key, 0) + 1
        for position, core in enumerate(cores):
            missing = sorted(
                key for key, count in declarers.items()
                if count == group_size - 1 and key not in keysets[position])
            if not missing:
                continue
            library = library_of.get(id(core))
            location_name = (ctx.core_location_name(library, core)
                             if library is not None else core.name)
            yield make(
                SourceLocation("core", location_name, cdo_name),
                f"missing figure(s) of merit {missing} that every other "
                f"core under {cdo_name!r} declares; evaluation-space "
                f"queries over those metrics silently drop it",
                hint="characterize the core (set_merit) or drop the "
                     "metric from the region's convention")


@rule(code="DSL023", slug="empty-leaf-region", category="library",
      severity=Severity.INFO,
      doc="A leaf CDO has no core indexed at or under it — that region "
          "of the space has no reusable implementation yet")
def empty_leaf_region(ctx: LintContext, options: Mapping[str, object],
                      make: DiagnosticFactory) -> Iterator[Diagnostic]:
    if not ctx.cores:
        return  # an empty federation would flag every leaf; say nothing
    for leaf in ctx.leaves:
        qname = leaf.qualified_name
        if ctx.core_counts_under.get(qname, 0):
            continue
        yield make(
            SourceLocation("cdo", qname),
            "leaf region has no core indexed at or under it; "
            "explorations reaching this class find an empty library "
            "shelf",
            hint="acquire or build a core for the region, or prune the "
                 "class if it is not worth serving")
