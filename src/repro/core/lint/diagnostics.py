"""The linter's diagnostic model.

A diagnostic is one finding of the static-analysis pass over a design
space layer: a stable code (``DSL0xx``), a severity, a source location
naming the artifact at fault (a CDO, a consistency constraint, a core,
...), a human-readable message and an optional fix-it hint.  Diagnostics
are plain values — rules produce them, the engine collects them into a
:class:`LintReport`, and front-ends render the report as text or JSON.

The model deliberately mirrors compiler diagnostics rather than
exceptions: the paper's meta-library is authored by humans, and authors
need *all* the problems of a malformed hierarchy at once, not the first
one the walker happens to trip over.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make the layer unusable or silently wrong (an
    unreachable CDO, a constraint cycle); ``WARNING`` findings are very
    likely mistakes (a constraint that can never fire); ``INFO`` findings
    are observations worth a look (an empty leaf region).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric weight — higher is more severe."""
        return {"error": 3, "warning": 2, "info": 1}[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def parse_severity(text: str) -> Severity:
    """Parse a severity name (``"warning"``) into a :class:`Severity`."""
    for severity in Severity:
        if severity.value == text:
            return severity
    raise ValueError(
        f"unknown severity {text!r}; expected one of "
        f"{[s.value for s in Severity]}")


#: Artifact kinds a diagnostic can point at.
LOCATION_KINDS = ("layer", "cdo", "property", "constraint", "core",
                  "library")


@dataclass(frozen=True)
class SourceLocation:
    """Which artifact of the layer a diagnostic is about.

    ``kind`` is one of :data:`LOCATION_KINDS`; ``name`` is the artifact's
    canonical name — a qualified CDO name, a constraint name, or
    ``library/core`` for cores; ``detail`` optionally narrows further
    (a property or alias name inside the artifact).
    """

    kind: str
    name: str
    detail: str = ""

    def render(self) -> str:
        suffix = f".{self.detail}" if self.detail else ""
        return f"{self.kind} {self.name}{suffix}"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str            #: Stable ``DSL0xx`` identifier.
    rule: str            #: Kebab-case rule slug (``duplicate-sibling-names``).
    severity: Severity
    location: SourceLocation
    message: str
    hint: str = ""       #: Optional fix-it suggestion.

    def sort_key(self) -> Tuple[int, str, str, str, str]:
        """Severity-major, then stable lexicographic order — report output
        must be deterministic for golden-file tests."""
        return (-self.severity.rank, self.code, self.location.kind,
                self.location.name, self.message)

    def render(self) -> str:
        line = (f"{self.code} {self.severity.value:<7} "
                f"[{self.location.render()}] {self.message}")
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.value,
            "location": {"kind": self.location.kind,
                         "name": self.location.name,
                         "detail": self.location.detail},
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class LintReport:
    """The collected findings of one lint pass over a layer."""

    layer_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.diagnostics = sorted(self.diagnostics,
                                  key=Diagnostic.sort_key)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> Sequence[str]:
        """Distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def counts(self) -> Dict[str, int]:
        out = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity.value] += 1
        return out

    def has_at_least(self, threshold: Severity) -> bool:
        """Whether any finding is at or above ``threshold`` severity."""
        return any(d.severity.rank >= threshold.rank
                   for d in self.diagnostics)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        if self.clean:
            return f"lint report for layer {self.layer_name!r}: clean"
        counts = self.counts()
        parts = [f"{counts[s.value]} {s.value}{'s' if counts[s.value] != 1 else ''}"
                 for s in Severity if counts[s.value]]
        return (f"lint report for layer {self.layer_name!r}: "
                + ", ".join(parts))

    def render_text(self) -> str:
        lines = [self.summary()]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "layer": self.layer_name,
            "summary": self.counts(),
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def merge_reports(layer_name: str,
                  reports: Iterable[LintReport]) -> LintReport:
    """Combine several reports (e.g. per-rule-category passes) into one."""
    diagnostics: List[Diagnostic] = []
    for report in reports:
        diagnostics.extend(report.diagnostics)
    return LintReport(layer_name, diagnostics)
