"""Hierarchy rules — structural health of the CDO forest (DSL001-DSL005).

The paper's generalization/specialization hierarchy is only navigable if
every region is reachable by qualified name, every child corresponds to
an option of its parent's generalized design issue, and inherited
properties stay unambiguous.  These rules batch-check what
:meth:`ClassOfDesignObjects.validate_subtree` spot-checks, plus the
holes the constructive API cannot close (a property added to an ancestor
*after* a descendant declared the same name, sibling CDOs sharing a
name through explicit ``specialize(..., name=...)`` calls).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping

from repro.core.cdo import ClassOfDesignObjects
from repro.core.lint.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
)
from repro.core.lint.engine import LintContext
from repro.core.lint.registry import DiagnosticFactory, rule
from repro.core.properties import DesignIssue
from repro.core.values import EnumDomain


def _cdo_loc(cdo: ClassOfDesignObjects, detail: str = "") -> SourceLocation:
    return SourceLocation("cdo", cdo.qualified_name, detail)


@rule(code="DSL001", slug="duplicate-sibling-names", category="hierarchy",
      severity=Severity.ERROR,
      doc="Sibling CDOs share a name, making all but the first "
          "unreachable by qualified-name lookup")
def duplicate_sibling_names(ctx: LintContext, options: Mapping[str, object],
                            make: DiagnosticFactory
                            ) -> Iterator[Diagnostic]:
    for cdo in ctx.cdos:
        names: Dict[str, List[object]] = {}
        for child in cdo.children:
            names.setdefault(child.name, []).append(child.option_of_parent)
        for name, opts in sorted(names.items()):
            if len(opts) > 1:
                rendered = ", ".join(repr(o) for o in opts)
                yield make(
                    _cdo_loc(cdo),
                    f"{len(opts)} children named {name!r} (for options "
                    f"{rendered}); only the first is reachable by "
                    f"qualified name",
                    hint="give each specialization a distinct name= "
                         "argument")


@rule(code="DSL002", slug="children-without-issue", category="hierarchy",
      severity=Severity.ERROR,
      doc="A CDO has children but no generalized design issue, or a "
          "child's option is not in the issue's domain")
def children_without_issue(ctx: LintContext, options: Mapping[str, object],
                           make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for root in ctx.layer.roots:
        for cdo, problem in root.subtree_violations():
            yield make(_cdo_loc(cdo), problem,
                       hint="declare a generalized design issue before "
                            "specializing, and specialize only its "
                            "declared options")


@rule(code="DSL003", slug="unspecialized-options", category="hierarchy",
      severity=Severity.WARNING,
      doc="Options of a generalized design issue have no child CDO — "
          "those regions of the space cannot be explored")
def unspecialized_options(ctx: LintContext, options: Mapping[str, object],
                          make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for cdo in ctx.cdos:
        issue = cdo.generalized_issue
        if issue is None:
            continue
        present = {child.option_of_parent for child in cdo.children}
        missing = [o for o in issue.options() if o not in present]
        if missing:
            rendered = ", ".join(repr(o) for o in missing)
            yield make(
                _cdo_loc(cdo, issue.name),
                f"generalized issue {issue.name!r} has no child CDO for "
                f"option(s) {rendered}",
                hint="call specialize() for each option (or "
                     "specialize_all()), or narrow the issue's domain")


@rule(code="DSL004", slug="shadowed-property", category="hierarchy",
      severity=Severity.ERROR,
      doc="A CDO redeclares a property an ancestor already declares, "
          "making inherited references ambiguous")
def shadowed_property(ctx: LintContext, options: Mapping[str, object],
                      make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for cdo in ctx.cdos:
        if cdo.parent is None:
            continue
        for prop in cdo.own_properties:
            owner = cdo.parent.find_property_owner(prop.name)
            if owner is None:
                continue
            ancestor_prop = owner.find_property(prop.name)
            compatible = (type(prop) is type(ancestor_prop)
                          and prop.domain.describe()
                          == ancestor_prop.domain.describe())
            flavor = ("redundantly redeclares"
                      if compatible else "incompatibly redefines")
            yield make(
                _cdo_loc(cdo, prop.name),
                f"property {prop.name!r} {flavor} the one inherited from "
                f"{owner.qualified_name}",
                hint="remove the redeclaration or rename the property",
                severity=Severity.WARNING if compatible
                else Severity.ERROR)


@rule(code="DSL005", slug="single-option-issue", category="hierarchy",
      severity=Severity.INFO,
      doc="A design issue offers exactly one option — it is not a "
          "decision")
def single_option_issue(ctx: LintContext, options: Mapping[str, object],
                        make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for cdo in ctx.cdos:
        for prop in cdo.own_properties:
            if not isinstance(prop, DesignIssue):
                continue
            domain = prop.domain
            if isinstance(domain, EnumDomain) and len(domain) == 1:
                only = domain.options[0]
                yield make(
                    _cdo_loc(cdo, prop.name),
                    f"design issue {prop.name!r} has a single option "
                    f"({only!r}) — there is nothing to decide",
                    hint="fold the forced value into the CDO's "
                         "documentation or widen the domain")
