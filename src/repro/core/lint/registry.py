"""Rule registry and per-run configuration for the design-space linter.

A lint rule is a generator function decorated with :func:`rule`; the
decorator records the rule's stable code (``DSL0xx``), slug, category,
default severity and documentation, and registers it with the module's
:data:`DEFAULT_REGISTRY`.  Rules receive a
:class:`~repro.core.lint.engine.LintContext` plus their per-rule options
mapping and a ``make`` factory pre-bound with the rule's identity, so a
rule body reads::

    @rule(code="DSL001", slug="duplicate-sibling-names",
          category="hierarchy", severity=Severity.ERROR, doc="...")
    def duplicate_sibling_names(ctx, options, make):
        ...
        yield make(location, "two children named 'X'", hint="rename one")

:class:`LintConfig` carries run-time policy: which rules are enabled,
severity overrides and per-rule options — the per-rule enable/disable
and config surface the CLI exposes through ``--select`` / ``--disable``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.core.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.errors import LintError

_CODE_RE = re.compile(r"^DSL\d{3}$")
_SLUG_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")

#: Rule categories, matching the three core artifacts plus DI7 and the
#: semantic verifier (whose DSL1xx rules are surfaced through the linter).
CATEGORIES = ("hierarchy", "constraints", "library", "decomposition",
              "verify")

#: ``make(location, message, hint="", severity=None)`` -> Diagnostic.
DiagnosticFactory = Callable[..., Diagnostic]

#: A rule body: (context, options, make) -> iterable of diagnostics.
RuleFn = Callable[[object, Mapping[str, object], DiagnosticFactory],
                  Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """A registered rule: identity, default policy and the check body."""

    code: str
    slug: str
    category: str
    severity: Severity
    doc: str
    check: RuleFn

    def factory(self, severity_override: Optional[Severity] = None
                ) -> DiagnosticFactory:
        """A diagnostic constructor pre-bound with this rule's identity."""
        default = severity_override or self.severity

        def make(location: SourceLocation, message: str, hint: str = "",
                 severity: Optional[Severity] = None) -> Diagnostic:
            # An explicit per-diagnostic severity (rules may downgrade
            # special cases) still respects a config-level override.
            chosen = severity_override or severity or default
            return Diagnostic(code=self.code, rule=self.slug,
                              severity=chosen, location=location,
                              message=message, hint=hint)

        return make

    def describe(self) -> str:
        return (f"{self.code} {self.slug} [{self.category}, "
                f"default {self.severity.value}] — {self.doc}")


class RuleRegistry:
    """Ordered collection of lint rules, keyed by code and slug."""

    def __init__(self) -> None:
        self._rules: Dict[str, LintRule] = {}
        self._by_slug: Dict[str, LintRule] = {}

    def register(self, rule: LintRule) -> LintRule:
        if not _CODE_RE.match(rule.code):
            raise LintError(
                f"rule code {rule.code!r} does not match 'DSL<3 digits>'")
        if not _SLUG_RE.match(rule.slug):
            raise LintError(f"rule slug {rule.slug!r} is not kebab-case")
        if rule.category not in CATEGORIES:
            raise LintError(
                f"rule {rule.code}: unknown category {rule.category!r}; "
                f"expected one of {CATEGORIES}")
        if not rule.doc:
            raise LintError(f"rule {rule.code} needs a doc string")
        if rule.code in self._rules:
            raise LintError(f"duplicate rule code {rule.code!r}")
        if rule.slug in self._by_slug:
            raise LintError(f"duplicate rule slug {rule.slug!r}")
        self._rules[rule.code] = rule
        self._by_slug[rule.slug] = rule
        return rule

    def get(self, key: str) -> LintRule:
        """Look up by code (``DSL001``) or slug."""
        hit = self._rules.get(key) or self._by_slug.get(key)
        if hit is None:
            raise LintError(
                f"no lint rule {key!r}; known: {sorted(self._rules)}")
        return hit

    def __contains__(self, key: str) -> bool:
        return key in self._rules or key in self._by_slug

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[LintRule]:
        return iter(sorted(self._rules.values(), key=lambda r: r.code))

    def codes(self) -> Sequence[str]:
        return tuple(sorted(self._rules))


#: The registry the stock rules register into on import.
DEFAULT_REGISTRY = RuleRegistry()


def rule(code: str, slug: str, category: str, severity: Severity,
         doc: str, registry: Optional[RuleRegistry] = None
         ) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering a rule body with ``registry`` (default:
    :data:`DEFAULT_REGISTRY`)."""
    target = registry if registry is not None else DEFAULT_REGISTRY

    def decorate(fn: RuleFn) -> RuleFn:
        target.register(LintRule(code=code, slug=slug, category=category,
                                 severity=severity, doc=doc, check=fn))
        return fn

    return decorate


@dataclass
class LintConfig:
    """Per-run linter policy.

    ``select`` (when given) whitelists rules by code/slug; ``disable``
    removes individual rules; ``severity_overrides`` re-grades a rule's
    findings; ``rule_options`` passes free-form knobs to one rule (keyed
    by code or slug) — e.g. the sampling budget of the never-fires check.
    """

    select: Optional[Sequence[str]] = None
    disable: Sequence[str] = ()
    severity_overrides: Mapping[str, str] = field(default_factory=dict)
    rule_options: Mapping[str, Mapping[str, object]] = \
        field(default_factory=dict)

    def _matches(self, rule: LintRule, keys: Iterable[str]) -> bool:
        return any(key in (rule.code, rule.slug, rule.category)
                   for key in keys)

    def is_enabled(self, rule: LintRule) -> bool:
        if self.select is not None and \
                not self._matches(rule, self.select):
            return False
        return not self._matches(rule, self.disable)

    def severity_for(self, rule: LintRule) -> Optional[Severity]:
        """The configured override severity, or None to keep defaults."""
        from repro.core.lint.diagnostics import parse_severity
        for key in (rule.code, rule.slug):
            if key in self.severity_overrides:
                return parse_severity(str(self.severity_overrides[key]))
        return None

    def options_for(self, rule: LintRule) -> Mapping[str, object]:
        merged: Dict[str, object] = {}
        for key in (rule.category, rule.slug, rule.code):
            merged.update(self.rule_options.get(key, {}))
        return merged

    def validate(self, registry: RuleRegistry) -> None:
        """Reject references to rules the registry does not know."""
        named: List[str] = list(self.disable)
        named += list(self.select or ())
        named += list(self.severity_overrides)
        named += list(self.rule_options)
        for key in named:
            if key in CATEGORIES or key in registry:
                continue
            raise LintError(
                f"lint config references unknown rule {key!r}; known "
                f"codes: {list(registry.codes())}")
