"""Decomposition rules — the DI7 construct (DSL030-DSL031).

A behavioral decomposition (paper Fig 11) promises that a CDO's critical
operators "are designed by exploring other CDOs in the hierarchy".  The
promise breaks statically in two ways: the ``source``/``restrict``
references point at nothing, or the decompositions chain back into
themselves — a Multiplier designed in terms of Multipliers never bottoms
out.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Set, Tuple

from repro.core.cdo import ClassOfDesignObjects
from repro.core.lint.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
)
from repro.core.lint.engine import LintContext
from repro.core.lint.registry import DiagnosticFactory, rule
from repro.core.lint.rules_constraints import _tarjan_sccs
from repro.core.path import parse_path, parse_pattern
from repro.core.properties import (
    BehavioralDecomposition,
    BehavioralDescription,
)
from repro.errors import PathError


def _decompositions(ctx: LintContext
                    ) -> List[Tuple[ClassOfDesignObjects,
                                    BehavioralDecomposition]]:
    out: List[Tuple[ClassOfDesignObjects, BehavioralDecomposition]] = []
    for cdo in ctx.cdos:
        for prop in cdo.own_properties:
            if isinstance(prop, BehavioralDecomposition):
                out.append((cdo, prop))
    return out


def _related(ctx: LintContext, qname: str, other_qname: str) -> bool:
    """Same class, ancestor, or descendant — i.e. an exploration
    positioned in one region can see or reach the other."""
    return ctx.is_descendant_name(qname, other_qname) or \
        ctx.is_descendant_name(other_qname, qname)


@rule(code="DSL030", slug="dangling-decomposition", category="decomposition",
      severity=Severity.ERROR,
      doc="A decomposition's source path or restriction pattern resolves "
          "to nothing — DI7 can never be planned from it")
def dangling_decomposition(ctx: LintContext,
                           options: Mapping[str, object],
                           make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for owner, prop in _decompositions(ctx):
        location = SourceLocation("property",
                                  f"{owner.qualified_name}.{prop.name}")
        try:
            source = parse_path(prop.source)
            hits = ctx.resolve_ref(source)
        except PathError as exc:
            yield make(
                location,
                f"source {prop.source!r} is dangling: {exc}",
                hint="point the source at a declared behavioral "
                     "description")
            continue
        useful = [
            (cdo, hit_prop) for cdo, hit_prop in hits
            if isinstance(hit_prop, BehavioralDescription)
            and _related(ctx, cdo.qualified_name, owner.qualified_name)]
        if not useful:
            yield make(
                location,
                f"source {prop.source!r} resolves to no behavioral "
                f"description visible from {owner.qualified_name} or its "
                f"specializations",
                hint="check the source pattern, or attach the "
                     "behavioral description the decomposition expects")
            continue
        if not prop.restrict_pattern:
            continue
        try:
            pattern = parse_pattern(prop.restrict_pattern)
        except PathError as exc:
            yield make(
                location,
                f"restriction pattern {prop.restrict_pattern!r} does not "
                f"parse: {exc}",
                hint="use the qualified-name pattern syntax of "
                     "repro.core.path")
            continue
        if not any(pattern.matches(cdo.qualified_name)
                   for cdo in ctx.cdos):
            yield make(
                location,
                f"restriction pattern {prop.restrict_pattern!r} matches "
                f"no CDO in the layer; the decomposition allows no "
                f"operator class at all",
                hint="widen the pattern or add the operator CDOs it "
                     "expects")


@rule(code="DSL031", slug="decomposition-cycle", category="decomposition",
      severity=Severity.ERROR,
      doc="Behavioral decompositions chain back into themselves — the "
          "DI7 workflow would recurse forever")
def decomposition_cycle(ctx: LintContext, options: Mapping[str, object],
                        make: DiagnosticFactory) -> Iterator[Diagnostic]:
    entries = [(owner, prop) for owner, prop in _decompositions(ctx)
               if prop.restrict_pattern]
    nodes: Dict[str, Tuple[ClassOfDesignObjects,
                           BehavioralDecomposition]] = {}
    targets: Dict[str, List[str]] = {}
    for owner, prop in entries:
        key = f"{owner.qualified_name}::{prop.name}"
        nodes[key] = (owner, prop)
        try:
            pattern = parse_pattern(prop.restrict_pattern)
        except PathError:
            continue  # DSL030's finding; nothing to chase here
        targets[key] = [cdo.qualified_name for cdo in ctx.cdos
                        if pattern.matches(cdo.qualified_name)]
    graph: Dict[str, Set[str]] = {key: set() for key in nodes}
    for key in nodes:
        for other_key, (other_owner, _other_prop) in nodes.items():
            if any(_related(ctx, target, other_owner.qualified_name)
                   for target in targets.get(key, ())):
                graph[key].add(other_key)
    for component in _tarjan_sccs(graph):
        cyclic = len(component) > 1 or (
            len(component) == 1
            and component[0] in graph.get(component[0], ()))
        if not cyclic:
            continue
        first_owner, first_prop = nodes[component[0]]
        yield make(
            SourceLocation(
                "property",
                f"{first_owner.qualified_name}.{first_prop.name}"),
            f"decomposition cycle: {' -> '.join(component)} -> "
            f"{component[0]}; sub-explorations opened through DI7 would "
            f"never bottom out",
            hint="restrict each decomposition to operator classes that "
                 "do not decompose back into the decomposing region")
