"""Constraint-network rules (DSL010-DSL014).

The independent/dependent split of the paper's consistency constraints
*is* the ordering of design issues (Sec 4): the dependent set may only
be addressed after the independents.  That ordering exists only if the
induced property graph is acyclic; and a constraint only does its job if
its references resolve, its region is non-empty, its relation can
actually fire inside the declared domains, and no two constraints fight
over the same derived value.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Set, Tuple

from repro.core.constraints import ConsistencyConstraint
from repro.core.lint.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
)
from repro.core.lint.engine import LintContext
from repro.core.lint.registry import DiagnosticFactory, rule
from repro.core.path import PropertyPath
from repro.core.relations import (
    EliminateOptions,
    EstimatorInvocation,
    Formula,
    InconsistentOptions,
)
from repro.errors import PathError


def _cc_loc(constraint: ConsistencyConstraint,
            detail: str = "") -> SourceLocation:
    return SourceLocation("constraint", constraint.name, detail)


def _all_refs(constraint: ConsistencyConstraint
              ) -> Iterator[Tuple[str, str, object]]:
    """(role, alias, ref) triples across all three reference sets."""
    for role, refs in (("independent", constraint.independents),
                       ("dependent", constraint.dependents),
                       ("short", constraint.shorts)):
        for alias, ref in refs.items():
            yield role, alias, ref


@rule(code="DSL010", slug="dangling-reference", category="constraints",
      severity=Severity.ERROR,
      doc="A constraint's property path matches no class or resolves to "
          "no visible property")
def dangling_reference(ctx: LintContext, options: Mapping[str, object],
                       make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for constraint in ctx.constraints:
        for role, alias, ref in _all_refs(constraint):
            if not isinstance(ref, PropertyPath):
                continue
            try:
                ctx.resolve_ref(ref)
            except PathError as exc:
                yield make(
                    _cc_loc(constraint, alias),
                    f"{role} reference {alias}={ref.render()} is "
                    f"dangling: {exc}",
                    hint="fix the path or rename the property it "
                         "addresses")


def _tarjan_sccs(graph: Mapping[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan strongly-connected components (deterministic
    order: nodes visited sorted)."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = itertools.count()

    for start in sorted(graph):
        if start in index_of:
            continue
        work: List[Tuple[str, Iterator[str]]] = \
            [(start, iter(sorted(graph.get(start, ()))))]
        index_of[start] = lowlink[start] = next(counter)
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = next(counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


@rule(code="DSL011", slug="constraint-cycle", category="constraints",
      severity=Severity.ERROR,
      doc="The independent-to-dependent property graph has a cycle — "
          "the constraints induce no usable ordering of design issues")
def constraint_cycle(ctx: LintContext, options: Mapping[str, object],
                     make: DiagnosticFactory) -> Iterator[Diagnostic]:
    graph: Dict[str, Set[str]] = {}
    contributors: Dict[Tuple[str, str], List[str]] = {}
    for constraint in ctx.constraints:
        indeps = constraint.independent_property_names()
        deps = constraint.dependent_property_names()
        for source in indeps:
            graph.setdefault(source, set())
            for target in deps:
                graph[source].add(target)
                graph.setdefault(target, set())
                contributors.setdefault((source, target),
                                        []).append(constraint.name)
    for component in _tarjan_sccs(graph):
        cyclic = len(component) > 1 or (
            len(component) == 1
            and component[0] in graph.get(component[0], ()))
        if not cyclic:
            continue
        involved = sorted({name
                           for edge, names in contributors.items()
                           if edge[0] in component and edge[1] in component
                           for name in names})
        yield make(
            SourceLocation("layer", ctx.layer.name,
                           detail="+".join(involved)),
            f"constraint cycle over properties "
            f"{{{', '.join(component)}}} via constraint(s) "
            f"{', '.join(involved)}: the dependent set can never be "
            f"addressed after its independents",
            hint="break the cycle by removing one dependency or "
                 "merging the constraints")


@rule(code="DSL012", slug="empty-applies-region", category="constraints",
      severity=Severity.WARNING,
      doc="No CDO satisfies all of a constraint's reference patterns — "
          "the constraint governs nothing")
def empty_applies_region(ctx: LintContext, options: Mapping[str, object],
                         make: DiagnosticFactory) -> Iterator[Diagnostic]:
    for constraint in ctx.constraints:
        if not ctx.applicable_cdos(constraint):
            yield make(
                _cc_loc(constraint),
                "applies to no CDO in the layer: no exploration can "
                "ever be governed by this constraint",
                hint="widen a class pattern, or check the patterns "
                     "against the hierarchy's qualified names")


@rule(code="DSL013", slug="conflicting-derivations", category="constraints",
      severity=Severity.WARNING,
      doc="Two constraints derive the same dependent property over "
          "overlapping regions — the last evaluation silently wins")
def conflicting_derivations(ctx: LintContext,
                            options: Mapping[str, object],
                            make: DiagnosticFactory
                            ) -> Iterator[Diagnostic]:
    derivers: Dict[str, List[ConsistencyConstraint]] = {}
    for constraint in ctx.constraints:
        relation = constraint.relation
        if not isinstance(relation, (Formula, EstimatorInvocation)):
            continue
        ref = constraint.dependents.get(relation.target)
        if not isinstance(ref, PropertyPath):
            continue
        derivers.setdefault(ref.property_name, []).append(constraint)
    for prop_name, constraints in sorted(derivers.items()):
        if len(constraints) < 2:
            continue
        for first, second in itertools.combinations(constraints, 2):
            overlap = set(id(c) for c in ctx.applicable_cdos(first)) & \
                set(id(c) for c in ctx.applicable_cdos(second))
            if overlap:
                yield make(
                    _cc_loc(first),
                    f"derives {prop_name!r} exactly, but so does "
                    f"constraint {second.name!r} on an overlapping "
                    f"region — the two derivations race",
                    hint="narrow one constraint's patterns or merge "
                         "the relations")


#: Relations DSL014 can statically test-fire.
_FIREABLE = (InconsistentOptions, EliminateOptions)


@rule(code="DSL014", slug="never-fires", category="constraints",
      severity=Severity.WARNING,
      doc="An option-rejecting or option-eliminating constraint cannot "
          "fire for any combination of values in its declared domains")
def never_fires(ctx: LintContext, options: Mapping[str, object],
                make: DiagnosticFactory) -> Iterator[Diagnostic]:
    sample_limit = int(options.get("samples", 8))  # type: ignore[arg-type]
    max_combinations = int(
        options.get("max_combinations", 512))  # type: ignore[arg-type]
    for constraint in ctx.constraints:
        relation = constraint.relation
        if not isinstance(relation, _FIREABLE):
            continue
        aliases = tuple(relation.requires)
        if not aliases:
            continue  # nothing to enumerate over
        refs = {**constraint.independents, **constraint.dependents,
                **constraint.shorts}
        pools: List[Tuple[object, ...]] = []
        sampleable = True
        for alias in aliases:
            values = ctx.sampled_values(refs.get(alias),
                                        limit=sample_limit)
            if values is None:
                sampleable = False
                break
            pools.append(values)
        if not sampleable:
            continue  # cannot decide statically; stay silent
        total = 1
        for pool in pools:
            total *= len(pool)
        if total > max_combinations:
            continue
        fired = False
        for combination in itertools.product(*pools):
            bindings = dict(zip(aliases, combination))
            try:
                result = relation.evaluate(bindings,
                                           tools=ctx.layer.tools)
            except Exception:
                # The relation needs richer bindings than the sampled
                # domains provide — indeterminate, assume it can fire.
                fired = True
                break
            if not result.ok or result.eliminated:
                fired = True
                break
        if not fired:
            yield make(
                _cc_loc(constraint),
                f"relation never fires for any of the {total} sampled "
                f"combination(s) of its declared domains — the "
                f"constraint is dead weight",
                hint="check the predicate against the domains of "
                     f"aliases {list(aliases)}")
