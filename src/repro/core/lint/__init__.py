"""Static analysis for design space layers (the ``repro lint`` engine).

A compiler front-end for the paper's methodology: walk a
:class:`~repro.core.layer.DesignSpaceLayer` — CDO hierarchies,
consistency-constraint network, library federation, DI7 decompositions —
without opening an exploration session, and report everything that would
make exploration misbehave later as stable ``DSL0xx`` diagnostics.

Entry points:

* :func:`lint_layer` — run the enabled rules over a layer;
* :meth:`DesignSpaceLayer.lint` — the same, as a layer method (with a
  ``strict=`` mode that raises :class:`~repro.errors.LintError`);
* ``python -m repro lint`` — the CLI surface (text or JSON output).

The rule catalogue lives in the ``rules_*`` modules; importing this
package loads all of them into :data:`DEFAULT_REGISTRY`.
"""

from repro.core.lint.diagnostics import (
    LOCATION_KINDS,
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
    merge_reports,
    parse_severity,
)
from repro.core.lint.engine import LintContext, lint_layer
from repro.core.lint.registry import (
    CATEGORIES,
    DEFAULT_REGISTRY,
    LintConfig,
    LintRule,
    RuleRegistry,
    rule,
)

# Populate DEFAULT_REGISTRY with the stock rule catalogue.
from repro.core.lint import rules_constraints  # noqa: E402,F401
from repro.core.lint import rules_decomposition  # noqa: E402,F401
from repro.core.lint import rules_hierarchy  # noqa: E402,F401
from repro.core.lint import rules_library  # noqa: E402,F401
from repro.core.lint import rules_verify  # noqa: E402,F401

from repro.errors import LintError  # noqa: E402

__all__ = [
    "CATEGORIES",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "LOCATION_KINDS",
    "LintConfig",
    "LintContext",
    "LintError",
    "LintReport",
    "LintRule",
    "RuleRegistry",
    "Severity",
    "SourceLocation",
    "lint_layer",
    "merge_reports",
    "parse_severity",
    "rule",
]
