"""Advising the next design issue to address.

Paper Sec 4: "some design issues may have a more significant impact on
the figures of merit of interest than others, suggesting that such
design issues should be partially ordered in order to allow for a
systematic exploration of the design space."  The layer's consistency
constraints encode the *hard* ordering; this module computes the
*soft* one, from data: for every addressable issue, how much do its
options differ in what they make achievable?

Impact of one issue = the normalized spread, across its options, of the
best value of each merit metric among the surviving cores.  An issue
whose options all lead to the same achievable latency has no impact and
can be deferred; the issue separating 1.3 us futures from 4 us futures
should be put to the designer first — exactly how the paper argues
"Implementation Style" earns its place before "Algorithm".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.session import ExplorationSession
from repro.errors import SessionError


@dataclass
class IssueImpact:
    """Measured impact of one addressable design issue."""

    issue_name: str
    #: metric -> relative spread of option-best values (0 = no impact).
    spreads: Dict[str, float] = field(default_factory=dict)
    #: options that currently lead to zero candidates.
    dead_options: List[object] = field(default_factory=list)
    #: options annotated (option, candidate count).
    option_counts: List[tuple] = field(default_factory=list)

    @property
    def impact(self) -> float:
        """Scalar impact: the largest per-metric spread."""
        return max(self.spreads.values(), default=0.0)

    def describe(self) -> str:
        spreads = ", ".join(f"{metric}: {value:.0%}"
                            for metric, value in sorted(
                                self.spreads.items()))
        dead = (f"; dead options: {self.dead_options}"
                if self.dead_options else "")
        return f"{self.issue_name} (impact {self.impact:.0%}) [{spreads}]{dead}"


def assess_issue(session: ExplorationSession, issue_name: str,
                 metrics: Optional[Sequence[str]] = None,
                 option_limit: int = 16) -> IssueImpact:
    """Measure one issue's impact at the session's current state."""
    metrics = tuple(metrics if metrics is not None
                    else session.merit_metrics)
    impact = IssueImpact(issue_name)
    option_best: Dict[str, List[float]] = {metric: [] for metric in metrics}
    for info in session.available_options(issue_name, limit=option_limit):
        if info.eliminated:
            continue
        impact.option_counts.append((info.option, info.candidate_count))
        if info.candidate_count == 0:
            impact.dead_options.append(info.option)
            continue
        for metric in metrics:
            if metric in info.ranges:
                option_best[metric].append(info.ranges[metric][0])
    for metric, bests in option_best.items():
        if len(bests) >= 2 and max(bests) > 0:
            impact.spreads[metric] = (max(bests) - min(bests)) / max(bests)
        elif bests:
            impact.spreads[metric] = 0.0
    return impact


def advise(session: ExplorationSession,
           metrics: Optional[Sequence[str]] = None,
           option_limit: int = 16) -> List[IssueImpact]:
    """Rank the addressable issues by impact, highest first.

    Issues whose options cannot be enumerated cheaply (unbounded
    domains with no context) fall back to the sampled options.
    """
    impacts: List[IssueImpact] = []
    for issue in session.addressable_issues():
        try:
            impacts.append(assess_issue(session, issue.name, metrics,
                                        option_limit))
        except SessionError:
            continue
    impacts.sort(key=lambda item: item.impact, reverse=True)
    return impacts
