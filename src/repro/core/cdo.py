"""Classes of design objects (CDOs) and their specialization hierarchy.

A CDO implicitly defines the design space of all feasible implementations
of some behaviour (paper Sec 2).  CDOs form a generalization/specialization
hierarchy: a CDO may carry **at most one generalized design issue**, and
each option of that issue defines a child CDO — a design space region
contained within the parent's region.  CDOs without a generalized issue
are leaves (paper Sec 4).

Properties attach to the CDO where they first become meaningful and are
inherited by every descendant (the paper's "because of the inheritance
hierarchy, the properties may be part of the CDO in question or of any of
its ancestor classes").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.properties import (
    BehavioralDescription,
    DesignIssue,
    Property,
    Requirement,
)
from repro.errors import HierarchyError, PropertyError, ReproError

#: Separator for qualified CDO names ("Operator.Modular.Multiplier.Hardware").
QNAME_SEP = "."


def _check_cdo_name(name: str) -> str:
    if not name:
        raise HierarchyError("CDO name must be non-empty")
    forbidden = set(name) & set("@*(){}, \t\n" + QNAME_SEP)
    if forbidden:
        raise HierarchyError(
            f"CDO name {name!r} contains reserved characters {sorted(forbidden)!r}")
    return name


class ClassOfDesignObjects:
    """A node of the generalization/specialization hierarchy.

    Instances are created either as roots (``parent=None``) or through
    :meth:`specialize`, which ties the child to an option of the parent's
    generalized design issue.
    """

    def __init__(self, name: str, doc: str,
                 parent: Optional["ClassOfDesignObjects"] = None,
                 option_of_parent: object = None):
        self.name = _check_cdo_name(name)
        if not doc:
            raise HierarchyError(f"CDO {name!r} needs a documentation string")
        self.doc = doc
        self.parent = parent
        #: Which option of the parent's generalized issue this class refines.
        self.option_of_parent = option_of_parent
        self._children: Dict[object, "ClassOfDesignObjects"] = {}
        self._properties: Dict[str, Property] = {}
        self._generalized_issue: Optional[DesignIssue] = None
        #: Structural generation counter: bumped (here and up the parent
        #: chain) whenever the sub-hierarchy gains a property or a child,
        #: so layer-level caches keyed on the root's version expire.
        self._version = 0

    def _touch_structure(self) -> None:
        node: Optional["ClassOfDesignObjects"] = self
        while node is not None:
            node._version += 1
            node = node.parent

    # ------------------------------------------------------------------
    # identity and navigation
    # ------------------------------------------------------------------
    @property
    def qualified_name(self) -> str:
        """Dotted path from the root, e.g. ``Operator.Modular.Multiplier``."""
        parts = [cdo.name for cdo in self.path_from_root()]
        return QNAME_SEP.join(parts)

    def path_from_root(self) -> List["ClassOfDesignObjects"]:
        """Root-first chain of CDOs ending at ``self``."""
        chain: List[ClassOfDesignObjects] = []
        node: Optional[ClassOfDesignObjects] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def ancestors(self) -> List["ClassOfDesignObjects"]:
        """Proper ancestors, nearest first."""
        out: List[ClassOfDesignObjects] = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    @property
    def children(self) -> Sequence["ClassOfDesignObjects"]:
        return tuple(self._children.values())

    def child_for_option(self, option: object) -> "ClassOfDesignObjects":
        """The specialization spawned by ``option`` of the generalized issue."""
        try:
            return self._children[option]
        except KeyError:
            raise HierarchyError(
                f"{self.qualified_name}: no specialization for option {option!r}"
            ) from None

    @property
    def is_leaf(self) -> bool:
        """Leaf CDOs carry no generalized design issue (paper Sec 4)."""
        return self._generalized_issue is None

    def walk(self) -> Iterator["ClassOfDesignObjects"]:
        """Pre-order traversal of the sub-hierarchy rooted here."""
        yield self
        for child in self._children.values():
            yield from child.walk()

    def is_ancestor_of(self, other: "ClassOfDesignObjects") -> bool:
        node: Optional[ClassOfDesignObjects] = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def add_property(self, prop: Property) -> Property:
        """Attach a property to this class.

        A generalized design issue may appear at most once per CDO; a
        property name may not shadow one inherited from an ancestor —
        the paper's layers are self-documenting, and silent shadowing
        would make ``Radix@*.Hardware`` ambiguous.
        """
        if prop.name in self._properties:
            raise PropertyError(
                f"{self.qualified_name}: duplicate property {prop.name!r}")
        owner = self.find_property_owner(prop.name)
        if owner is not None:
            raise PropertyError(
                f"{self.qualified_name}: property {prop.name!r} already "
                f"defined on ancestor {owner.qualified_name}")
        if isinstance(prop, DesignIssue) and prop.generalized:
            if self._generalized_issue is not None:
                raise HierarchyError(
                    f"{self.qualified_name}: already has generalized issue "
                    f"{self._generalized_issue.name!r}; a CDO may contain at "
                    f"most one generalized design issue")
            self._generalized_issue = prop
        self._properties[prop.name] = prop
        self._touch_structure()
        return prop

    @property
    def own_properties(self) -> Sequence[Property]:
        return tuple(self._properties.values())

    @property
    def generalized_issue(self) -> Optional[DesignIssue]:
        return self._generalized_issue

    def all_properties(self) -> List[Property]:
        """Own plus inherited properties, outermost ancestor first."""
        out: List[Property] = []
        for node in self.path_from_root():
            out.extend(node._properties.values())
        return out

    def find_property(self, name: str) -> Property:
        """Resolve ``name`` on this class or its ancestors."""
        node: Optional[ClassOfDesignObjects] = self
        while node is not None:
            if name in node._properties:
                return node._properties[name]
            node = node.parent
        raise PropertyError(
            f"{self.qualified_name}: no property {name!r} here or on ancestors")

    def has_property(self, name: str) -> bool:
        try:
            self.find_property(name)
            return True
        except PropertyError:
            return False

    def find_property_owner(self, name: str) -> Optional["ClassOfDesignObjects"]:
        """The CDO (self or ancestor) on which ``name`` is declared."""
        node: Optional[ClassOfDesignObjects] = self
        while node is not None:
            if name in node._properties:
                return node
            node = node.parent
        return None

    def requirements(self) -> List[Requirement]:
        return [p for p in self.all_properties() if isinstance(p, Requirement)]

    def design_issues(self, include_generalized: bool = True) -> List[DesignIssue]:
        issues = [p for p in self.all_properties() if isinstance(p, DesignIssue)]
        if not include_generalized:
            issues = [i for i in issues if not i.generalized]
        return issues

    def behavioral_descriptions(self) -> List[BehavioralDescription]:
        return [p for p in self.all_properties()
                if isinstance(p, BehavioralDescription)]

    # ------------------------------------------------------------------
    # specialization
    # ------------------------------------------------------------------
    def specialize(self, option: object, name: Optional[str] = None,
                   doc: str = "") -> "ClassOfDesignObjects":
        """Create the child CDO for ``option`` of the generalized issue.

        ``name`` defaults to ``str(option)``.  The child starts with no
        properties of its own; domain layers then attach the issues that
        become meaningful inside the narrowed region (paper Sec 5.1.5).
        """
        if self._generalized_issue is None:
            raise HierarchyError(
                f"{self.qualified_name}: cannot specialize a CDO without a "
                f"generalized design issue")
        self._generalized_issue.validate(option)
        if option in self._children:
            raise HierarchyError(
                f"{self.qualified_name}: option {option!r} already specialized")
        child_name = name if name is not None else str(option)
        child_doc = doc or (f"Specialization of {self.qualified_name} for "
                            f"{self._generalized_issue.name} = {option}")
        child = ClassOfDesignObjects(child_name, child_doc, parent=self,
                                     option_of_parent=option)
        self._children[option] = child
        self._touch_structure()
        return child

    def specialize_all(self) -> List["ClassOfDesignObjects"]:
        """Specialize every not-yet-specialized option of the generalized
        issue; returns the full child list."""
        if self._generalized_issue is None:
            raise HierarchyError(
                f"{self.qualified_name}: no generalized issue to specialize")
        for option in self._generalized_issue.options():
            if option not in self._children:
                self.specialize(option)
        return list(self._children.values())

    # ------------------------------------------------------------------
    # validation / rendering
    # ------------------------------------------------------------------
    def subtree_violations(self
                           ) -> List[Tuple["ClassOfDesignObjects", str]]:
        """All structural violations in the sub-hierarchy rooted here.

        Returns ``(cdo, problem)`` pairs: a CDO with children but no
        generalized design issue, or a child whose option is outside the
        issue's domain.  This is the shared substrate of
        :meth:`validate_subtree` and the lint engine's hierarchy rules
        (``DSL002``) — one walk, every finding.
        """
        out: List[Tuple[ClassOfDesignObjects, str]] = []
        for node in self.walk():
            if node._children and node._generalized_issue is None:
                out.append((node, "has children but no generalized "
                                  "design issue"))
                continue
            for option in node._children:
                try:
                    node._generalized_issue.validate(option)
                except ReproError as exc:
                    out.append((node, f"child option {option!r} is not "
                                      f"in the generalized issue's "
                                      f"domain: {exc}"))
        return out

    def validate_subtree(self) -> None:
        """Check structural invariants of the sub-hierarchy rooted here.

        Every child must correspond to an option of the generalized
        issue, and leaves must have no children.  *All* violations are
        aggregated into one exception message, so hierarchy authors see
        the complete damage report instead of the first broken node.
        """
        violations = self.subtree_violations()
        if violations:
            lines = [f"{node.qualified_name}: {problem}"
                     for node, problem in violations]
            raise HierarchyError(
                f"{len(violations)} structural violation(s) under "
                f"{self.qualified_name}:\n  " + "\n  ".join(lines))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CDO {self.qualified_name}>"
