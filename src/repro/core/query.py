"""A fluent query interface over the layer's indexed cores.

Sessions answer the guided-exploration question ("what survives my
decisions?"); tools and scripts often need the direct one ("give me all
radix-2 carry-save cores under OMM-HM, fastest first").  ``CoreQuery``
provides that without bypassing the layer: queries are still expressed
in design-space vocabulary (CDO regions, design-issue values, figures
of merit), so they remain portable across the attached libraries.

>>> fast = (CoreQuery(layer).under("OMM-HM")
...         .where(Radix=2, AdderImplementation="Carry-Save")
...         .merit_at_most("delay_us", 8.0)
...         .order_by("latency_ns").limit(3).all())
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.designobject import DesignObject
from repro.core.evaluation import EvaluationSpace
from repro.core.layer import DesignSpaceLayer
from repro.core.library import LibraryFederation
from repro.core.pruning import merit_ranges
from repro.errors import ReproError


class QueryError(ReproError):
    """Malformed query."""


_Filter = Callable[[DesignObject], bool]


class CoreQuery:
    """An immutable, chainable core query.

    Every refinement returns a new query; terminal methods (:meth:`all`,
    :meth:`first`, :meth:`count`, ...) execute it.
    """

    def __init__(self, source: Union[DesignSpaceLayer, LibraryFederation],
                 _cdo: Optional[str] = None,
                 _filters: Sequence[_Filter] = (),
                 _eq: Sequence[Tuple[str, object]] = (),
                 _order: Optional[Tuple[str, bool]] = None,
                 _limit: Optional[int] = None):
        self._source = source
        self._cdo = _cdo
        self._filters = tuple(_filters)
        #: Structured property-equality terms, answered from the core
        #: index's posting sets instead of per-core predicate calls.
        self._eq = tuple(_eq)
        self._order = _order
        self._limit = _limit

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------
    def _derive(self, **changes) -> "CoreQuery":
        state = dict(_cdo=self._cdo, _filters=self._filters, _eq=self._eq,
                     _order=self._order, _limit=self._limit)
        state.update(changes)
        return CoreQuery(self._source, **state)

    def under(self, cdo_name: str) -> "CoreQuery":
        """Restrict to cores indexed at/below a CDO (aliases resolve
        when the source is a layer)."""
        if isinstance(self._source, DesignSpaceLayer):
            cdo_name = self._source.cdo(cdo_name).qualified_name
        return self._derive(_cdo=cdo_name)

    def where(self, **property_values) -> "CoreQuery":
        """Keep cores whose documented properties equal the given
        values (undocumented properties do not match)."""
        return self._derive(_eq=self._eq + tuple(property_values.items()))

    def where_fn(self, predicate: _Filter) -> "CoreQuery":
        """Keep cores satisfying an arbitrary predicate."""
        return self._derive(_filters=self._filters + (predicate,))

    def merit_at_most(self, key: str, bound: float) -> "CoreQuery":
        """Keep cores documenting ``key`` at or below ``bound``."""
        return self._derive(_filters=self._filters + (
            lambda core: core.has_merit(key) and core.merit(key) <= bound,))

    def merit_at_least(self, key: str, bound: float) -> "CoreQuery":
        return self._derive(_filters=self._filters + (
            lambda core: core.has_merit(key) and core.merit(key) >= bound,))

    def from_provider(self, provenance: str) -> "CoreQuery":
        """Keep cores from one reuse library (Fig 1's A/B/C)."""
        return self._derive(_filters=self._filters + (
            lambda core: core.provenance == provenance,))

    def order_by(self, merit_key: str, reverse: bool = False
                 ) -> "CoreQuery":
        """Sort by a figure of merit (cores lacking it sort last)."""
        return self._derive(_order=(merit_key, reverse))

    def limit(self, count: int) -> "CoreQuery":
        if count < 0:
            raise QueryError(f"limit must be >= 0, got {count}")
        return self._derive(_limit=count)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _federation(self) -> LibraryFederation:
        if isinstance(self._source, DesignSpaceLayer):
            return self._source.libraries
        return self._source

    def all(self) -> List[DesignObject]:
        index = self._federation().index()
        ids = index.subtree_ids(self._cdo) if self._cdo is not None \
            else index.all_ids
        for name, value in self._eq:
            if not ids:
                break
            ids = ids & index.decision_ids(name, value)
        cores = index.materialize(ids)
        for check in self._filters:
            cores = [core for core in cores if check(core)]
        if self._order is not None:
            key, reverse = self._order
            documented = [c for c in cores if c.has_merit(key)]
            missing = [c for c in cores if not c.has_merit(key)]
            documented.sort(key=lambda c: c.merit(key), reverse=reverse)
            cores = documented + missing
        if self._limit is not None:
            cores = cores[:self._limit]
        return cores

    def first(self) -> Optional[DesignObject]:
        hits = self.limit(1).all()
        return hits[0] if hits else None

    def one(self) -> DesignObject:
        hits = self.limit(2).all()
        if len(hits) != 1:
            raise QueryError(
                f"expected exactly one core, found {len(hits)}")
        return hits[0]

    def count(self) -> int:
        return len(self.all())

    def names(self) -> List[str]:
        return [core.name for core in self.all()]

    def exists(self) -> bool:
        return self.first() is not None

    def ranges(self, metrics: Sequence[str]
               ) -> Dict[str, Tuple[float, float]]:
        return merit_ranges(self.all(), metrics)

    def evaluation_space(self, metrics: Sequence[str]) -> EvaluationSpace:
        return EvaluationSpace.from_designs(self.all(), metrics,
                                            skip_missing=True)

    def pareto(self, metrics: Sequence[str]) -> List[DesignObject]:
        """The non-dominated cores over the given (minimized) metrics."""
        space = self.evaluation_space(metrics)
        return [point.design for point in space.pareto_frontier()
                if point.design is not None]
