"""Exploration sessions: conceptual design over a design space layer.

A session walks the generalization/specialization hierarchy the way the
paper's designer does in Sec 5: enter requirement values from the system
specification, address design issues in an order consistent with the
layer's consistency constraints, descend into specialized CDOs when a
*generalized* issue is decided, and at every step observe the surviving
cores and their figure-of-merit ranges.

The session enforces the CC semantics of Sec 4:

* an issue appearing in a CC's dependent set cannot be addressed before
  the CC's independents are bound (partial ordering);
* deciding a combination a CC's relation rejects raises
  :class:`~repro.errors.ConstraintViolation`;
* options eliminated by ``EliminateOptions`` relations are withdrawn from
  the issue's available options;
* revising an independent marks every dependent *stale* — it "needs to be
  re-assessed" — and recomputes derived values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.cdo import ClassOfDesignObjects
from repro.core.constraints import (
    UNBOUND,
    ConsistencyConstraint,
    SessionBinding,
)
from repro.core.designobject import DesignObject
from repro.core.index import CoreIndex
from repro.core.layer import DesignSpaceLayer
from repro.core.obs import events as _ev
from repro.core.path import PropertyPath
from repro.core.properties import (
    BehavioralDescription,
    DesignIssue,
    Property,
    Requirement,
)
from repro.core.pruning import (
    MissingPolicy,
    PruneReport,
    _match_decision,
    merit_ranges,
)
from repro.errors import (
    ConstraintError,
    ConstraintViolation,
    PropertyError,
    SessionError,
)


#: Traced pruning payloads are *bounded*: above this survivor count the
#: per-core digest and merit ranges are omitted from ``prune`` /
#: ``cache_hit`` events (computing them would scale with the library and
#: blow the tracing overhead budget).  The survivor count itself is free,
#: always recorded, and always verified on replay.
TRACE_SET_LIMIT = 4096


@dataclass
class OptionInfo:
    """What the layer can tell the designer about one option of an issue."""

    option: object
    eliminated: bool
    elimination_reason: str
    candidate_count: int
    ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)


class DecisionOutcome:
    """What one committed decision did to the design space.

    Returned by :meth:`ExplorationSession.decide`.  The pruning effect
    (how many cores the decision eliminated, and which) is computed
    *lazily* from an immutable :class:`~repro.core.index.CoreIndex`
    snapshot captured at commit time, so the first read and every later
    read see byte-identical numbers even if the layer or the session
    moved on in between.
    """

    def __init__(self, issue: str, option: object, generalized: bool,
                 cdo_before: str, cdo_after: str,
                 stale: Tuple[str, ...],
                 index: CoreIndex, policy: MissingPolicy,
                 filters_before: Tuple[Dict[str, object], tuple],
                 filters_after: Tuple[Dict[str, object], tuple]):
        #: The design issue the decision addressed.
        self.issue = issue
        self.option = option
        self.generalized = generalized
        self.cdo_before = cdo_before
        #: Session position after the decision (descended when generalized).
        self.cdo = cdo_after
        #: Previously-addressed dependents marked stale by this decision.
        self.stale = stale
        self._index = index
        self._policy = policy
        self._filters_before = filters_before
        self._filters_after = filters_after
        self._ids_memo: Optional[Tuple[frozenset, frozenset]] = None

    def _ids(self) -> Tuple[frozenset, frozenset]:
        if self._ids_memo is None:
            index = self._index
            decisions, requirements = self._filters_before
            before = frozenset(index.prune_ids(
                index.subtree_ids(self.cdo_before), decisions,
                requirements, self._policy))
            decisions, requirements = self._filters_after
            after = frozenset(index.prune_ids(
                index.subtree_ids(self.cdo), decisions,
                requirements, self._policy))
            self._ids_memo = (before, after)
        return self._ids_memo

    @property
    def survivors_before(self) -> int:
        """Candidate-core count just before the decision."""
        return len(self._ids()[0])

    @property
    def survivors_after(self) -> int:
        """Candidate-core count with the decision in force."""
        return len(self._ids()[1])

    @property
    def eliminated_count(self) -> int:
        """How many cores this decision (alone) pruned away."""
        before, after = self._ids()
        return len(before - after)

    @property
    def eliminated(self) -> Dict[str, str]:
        """Core name -> reason, for the cores this decision eliminated.

        Reasons always name the triggering design issue, and — being
        derived from the commit-time snapshot — are identical no matter
        when or how often they are read.
        """
        before, after = self._ids()
        out: Dict[str, str] = {}
        for i in sorted(before - after):
            core = self._index.cores[i]
            reason = None
            if not self.generalized:
                reason = _match_decision(core, self.issue, self.option,
                                         self._policy)
            if reason is None:
                reason = (f"outside {self.cdo} (issue {self.issue!r} "
                          f"selected option {self.option!r})")
            out[core.name] = reason
        return out

    def describe(self) -> str:
        return (f"decision {self.issue} = {self.option!r}: "
                f"{self.survivors_before} -> {self.survivors_after} "
                f"candidates ({self.eliminated_count} eliminated)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecisionOutcome {self.describe()}>"


@dataclass
class _State:
    """Snapshot of all mutable session state (for undo)."""

    cdo_name: str
    requirements: Dict[str, object]
    decisions: Dict[str, object]
    derived: Dict[str, object]
    stale: Set[str]
    log: List[str]


class ExplorationSession:
    """One designer's traversal of a design space layer."""

    def __init__(self, layer: DesignSpaceLayer,
                 start: Union[str, ClassOfDesignObjects],
                 merit_metrics: Sequence[str] = ("area", "latency_ns"),
                 missing_policy: MissingPolicy = MissingPolicy.EXCLUDE):
        self.layer = layer
        self._cdo = layer.cdo(start) if isinstance(start, str) else start
        #: Metrics summarized in range reports.
        self.merit_metrics = tuple(merit_metrics)
        self.missing_policy = missing_policy
        self._requirements: Dict[str, object] = {}
        self._decisions: Dict[str, object] = {}
        self._derived: Dict[str, object] = {}
        self._stale: Set[str] = set()
        self._log: List[str] = []
        self._history: List[_State] = []
        self._checkpoints: Dict[str, _State] = {}
        #: Epoch-keyed memo of prune reports; every mutation clears it
        #: (the layer-epoch component of each key additionally guards
        #: against library/hierarchy changes behind the session's back).
        self._prune_cache: Dict[tuple, PruneReport] = {}
        self._constraints_cache_key: object = None
        self._constraints_cache: List[ConsistencyConstraint] = []
        #: Number of actual (non-memoized) prune computations; exposed
        #: for tests and benchmarks asserting query-plan economy.
        self._prune_calls = 0
        #: Recorder this session last announced itself to (see ``_obs``).
        self._obs_recorder: object = None
        self._obs_session = 0
        self._refresh_constraints()

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    @property
    def current_cdo(self) -> ClassOfDesignObjects:
        return self._cdo

    @property
    def decisions(self) -> Mapping[str, object]:
        return dict(self._decisions)

    @property
    def requirement_values(self) -> Mapping[str, object]:
        return dict(self._requirements)

    @property
    def derived_values(self) -> Mapping[str, object]:
        return dict(self._derived)

    @property
    def stale_properties(self) -> Set[str]:
        return set(self._stale)

    @property
    def log(self) -> Sequence[str]:
        return tuple(self._log)

    def context(self) -> Dict[str, object]:
        """Property-name -> value mapping used by dependent domains."""
        ctx: Dict[str, object] = {}
        ctx.update(self._derived)
        ctx.update(self._requirements)
        ctx.update(self._decisions)
        return ctx

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def _obs(self):
        """The layer's recorder; announces this session on first traced use.

        The ``session_open`` payload carries the session's *current*
        position, metrics and accumulated requirement/decision state
        (in insertion order), so a trace switched on mid-session is
        still replayable: :func:`repro.core.obs.replay.replay_trace`
        primes that state before re-applying the recorded events.
        """
        obs = self.layer.observer
        if obs.enabled and obs is not self._obs_recorder:
            self._obs_recorder = obs
            self._obs_session = obs.next_session()
            obs.emit(_ev.SESSION_OPEN, session=self._obs_session,
                     layer=self.layer.name,
                     cdo=self._cdo.qualified_name,
                     metrics=list(self.merit_metrics),
                     missing_policy=self.missing_policy.value,
                     requirements=dict(self._requirements),
                     decisions=dict(self._decisions))
        return obs

    @property
    def trace(self) -> Tuple:
        """Trace events visible to this session — its own, plus
        session-less infrastructure events (index rebuilds, lint runs).
        Empty when tracing is off."""
        obs = self.layer.observer
        if not obs.enabled or obs is not self._obs_recorder:
            return ()
        sid = self._obs_session
        return tuple(e for e in obs.events
                     if e.payload.get("session", sid) == sid)

    # ------------------------------------------------------------------
    # constraint machinery
    # ------------------------------------------------------------------
    def _applicable_constraints(self) -> List[ConsistencyConstraint]:
        key = (self.layer.epoch, self._cdo.qualified_name)
        if key != self._constraints_cache_key:
            self._constraints_cache = self.layer.constraints.applicable(
                self._cdo, self.layer.aliases)
            self._constraints_cache_key = key
        return self._constraints_cache

    def _bind_ref(self, ref: Union[PropertyPath, SessionBinding]) -> object:
        """Resolve one constraint reference to a value, or UNBOUND."""
        if isinstance(ref, SessionBinding):
            return ref.fn(self)
        name = ref.property_name
        if name in self._decisions:
            value: object = self._decisions[name]
        elif name in self._requirements:
            value = self._requirements[name]
        elif name in self._derived:
            value = self._derived[name]
        else:
            try:
                prop = self._cdo.find_property(name)
            except PropertyError:
                return UNBOUND
            if isinstance(prop, BehavioralDescription) and prop.description is not None:
                value = prop.description
            elif isinstance(prop, DesignIssue) and prop.default is not None:
                value = prop.default
            else:
                return UNBOUND
        if ref.selectors:
            value = self.layer.selectors.apply_chain(ref.selectors, value)
        return value

    def _bindings_for(self, constraint: ConsistencyConstraint,
                      overrides: Optional[Mapping[str, object]] = None
                      ) -> Optional[Dict[str, object]]:
        """Bind the aliases of ``constraint``; None when incomplete.

        Independents and shorts must all resolve; dependent aliases are
        included when a value is available (a decided option, a
        tentative override) and omitted otherwise — relations declare
        via their ``requires`` lists whether they need them.

        ``overrides`` maps *property names* to tentative values (used to
        test a decision before committing it).
        """
        bindings: Dict[str, object] = {}
        required = {**constraint.independents, **constraint.shorts}
        for alias, ref in required.items():
            value = self._lookup(ref, overrides)
            if value is UNBOUND:
                return None
            bindings[alias] = value
        for alias, ref in constraint.dependents.items():
            value = self._lookup(ref, overrides)
            if value is not UNBOUND:
                bindings[alias] = value
        return bindings

    def _lookup(self, ref: Union[PropertyPath, SessionBinding],
                overrides: Optional[Mapping[str, object]]) -> object:
        if (overrides and isinstance(ref, PropertyPath)
                and not ref.selectors
                and ref.property_name in overrides):
            return overrides[ref.property_name]
        return self._bind_ref(ref)

    def _independents_bound(self, constraint: ConsistencyConstraint) -> bool:
        refs = {**constraint.independents, **constraint.shorts}
        return all(self._bind_ref(ref) is not UNBOUND for ref in refs.values())

    def _refresh_constraints(self,
                             overrides: Optional[Mapping[str, object]] = None,
                             enforce: bool = True) -> None:
        """Re-evaluate every applicable, fully-bound constraint.

        Updates derived values and option eliminations; raises
        :class:`ConstraintViolation` for rejected combinations when
        ``enforce``.
        """
        obs = self._obs
        tools = self.layer.tools
        if obs.enabled:
            # One wrap per refresh: every estimator run inside a CC
            # relation below records an ``estimate_invoked`` span nested
            # under its constraint's span.
            tools = obs.wrap_tools(tools)
        derived: Dict[str, object] = {}
        eliminated: Dict[str, List[Tuple[object, str]]] = {}
        for constraint in self._applicable_constraints():
            bindings = self._bindings_for(constraint, overrides)
            if bindings is None:
                continue
            with obs.span(_ev.CONSTRAINT_FIRED, session=self._obs_session,
                          constraint=constraint.name) as span:
                try:
                    result = constraint.relation.evaluate(bindings, tools)
                except ConstraintError:
                    # The relation needs aliases this CC does not bind yet.
                    result = None
                    span.note(outcome="unbound")
                else:
                    span.note(ok=result.ok)
            if result is None:
                continue
            if not result.ok and enforce:
                raise ConstraintViolation(constraint.name,
                                          result.explanation or constraint.doc)
            for alias, value in result.derived.items():
                target = self._alias_to_property(constraint, alias)
                derived[target] = value
            for prop_name, option in result.eliminated:
                eliminated.setdefault(prop_name, []).append(
                    (option, f"{constraint.name}: {constraint.doc}"))
        self._derived = derived
        self._eliminations = eliminated

    @staticmethod
    def _alias_to_property(constraint: ConsistencyConstraint,
                           alias: str) -> str:
        ref = constraint.dependents.get(alias)
        if isinstance(ref, PropertyPath):
            return ref.property_name
        return alias

    def eliminations_for(self, issue_name: str) -> List[Tuple[object, str]]:
        """Options of ``issue_name`` currently eliminated, with reasons."""
        return list(getattr(self, "_eliminations", {}).get(issue_name, []))

    def pending_constraints(self) -> List[ConsistencyConstraint]:
        """Applicable constraints whose independent sets are not bound."""
        return [c for c in self._applicable_constraints()
                if not self._independents_bound(c)]

    def blocking_constraints(self, issue_name: str
                             ) -> List[ConsistencyConstraint]:
        """Constraints that gate ``issue_name`` and are not yet bound —
        the designer must address their independents first (paper Sec 4)."""
        gating = self.layer.constraints.gating(issue_name, self._cdo,
                                               self.layer.aliases)
        return [c for c in gating if not self._independents_bound(c)]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        self._history.append(_State(
            cdo_name=self._cdo.qualified_name,
            requirements=dict(self._requirements),
            decisions=dict(self._decisions),
            derived=dict(self._derived),
            stale=set(self._stale),
            log=list(self._log),
        ))

    def undo(self) -> None:
        """Revert the last mutating operation."""
        obs = self._obs
        if not self._history:
            raise SessionError("nothing to undo")
        self._restore(self._history.pop())
        if obs.enabled:
            obs.emit(_ev.UNDO, session=self._obs_session,
                     cdo=self._cdo.qualified_name)

    def _restore(self, state: "_State") -> None:
        self._cdo = self.layer.cdo(state.cdo_name)
        self._requirements = dict(state.requirements)
        self._decisions = dict(state.decisions)
        self._derived = dict(state.derived)
        self._stale = set(state.stale)
        self._log = list(state.log)
        self._invalidate_queries()
        self._refresh_constraints(enforce=False)

    def _invalidate_queries(self) -> None:
        """Drop memoized prune reports after a session mutation.

        The layer-epoch component of every cache key already protects
        against library/hierarchy changes; clearing here simply bounds
        the cache to the current exploration state."""
        self._prune_cache.clear()

    def checkpoint(self, tag: str) -> None:
        """Save the current state under a name for branched what-ifs.

        Unlike :meth:`undo`'s linear history, named checkpoints let the
        designer fork: explore one branch, ``restore`` the checkpoint,
        explore another, and compare (the paper's trade-off exploration
        is exactly this loop).
        """
        obs = self._obs
        if not tag:
            raise SessionError("checkpoint tag must be non-empty")
        if obs.enabled:
            obs.emit(_ev.CHECKPOINT, session=self._obs_session, tag=tag)
        self._checkpoints[tag] = _State(
            cdo_name=self._cdo.qualified_name,
            requirements=dict(self._requirements),
            decisions=dict(self._decisions),
            derived=dict(self._derived),
            stale=set(self._stale),
            log=list(self._log),
        )

    def restore(self, tag: str) -> None:
        """Return to a named checkpoint (linear undo history is kept,
        with the restore itself undoable)."""
        obs = self._obs
        if tag not in self._checkpoints:
            raise SessionError(
                f"no checkpoint {tag!r}; saved: {sorted(self._checkpoints)}")
        self._checkpoint()
        self._restore(self._checkpoints[tag])
        self._log.append(f"restored checkpoint {tag!r}")
        if obs.enabled:
            obs.emit(_ev.RESTORE, session=self._obs_session, tag=tag,
                     cdo=self._cdo.qualified_name)

    def checkpoints(self) -> List[str]:
        return sorted(self._checkpoints)

    def fork(self) -> "ExplorationSession":
        """An independent session at the same position and state.

        The clone shares the layer (and therefore its core indexes and
        epoch-keyed caches) but carries its own copies of requirements,
        decisions and staleness, with fresh undo history and no named
        checkpoints — the exploration engine evaluates each branch on
        such a fork so sibling branches can never perturb one another.
        """
        clone = ExplorationSession(
            self.layer, self._cdo,
            merit_metrics=self.merit_metrics,
            missing_policy=self.missing_policy)
        clone._requirements = dict(self._requirements)
        clone._decisions = dict(self._decisions)
        clone._stale = set(self._stale)
        clone._log = list(self._log)
        clone._refresh_constraints(enforce=False)
        return clone

    def set_requirement(self, name: str, value: object) -> None:
        """Enter a requirement value from the system specification."""
        obs = self._obs
        prop = self._cdo.find_property(name)
        if not isinstance(prop, Requirement):
            raise SessionError(
                f"{name!r} is a {type(prop).__name__}, not a requirement; "
                f"use decide() for design issues")
        prop.validate(value, self.context())
        self._checkpoint()
        previous = self._requirements.get(name)
        self._requirements[name] = value
        try:
            self._refresh_constraints()
        except ConstraintViolation:
            self._requirements.pop(name)
            if previous is not None:
                self._requirements[name] = previous
            self._history.pop()
            raise
        stale = self._mark_dependents_stale(name)
        self._stale.discard(name)
        self._invalidate_queries()
        self._log.append(f"requirement {name} = {value!r}")
        if obs.enabled:
            obs.emit(_ev.REQUIRE, session=self._obs_session,
                     name=name, value=value, stale=sorted(stale))

    def decide(self, name: str, option: object) -> DecisionOutcome:
        """Commit a design decision; descends when the issue is generalized.

        Returns a :class:`DecisionOutcome` summarizing the pruning effect
        (candidate counts before/after, eliminated cores with reasons
        naming this issue).  The outcome is computed lazily from a
        commit-time index snapshot, so reading it never perturbs — and is
        never perturbed by — the session's own memoized queries.
        """
        obs = self._obs
        prop = self._cdo.find_property(name)
        if not isinstance(prop, DesignIssue):
            raise SessionError(
                f"{name!r} is a {type(prop).__name__}, not a design issue; "
                f"use set_requirement() for requirements")
        if prop.generalized and name in self._decisions:
            # Re-deciding a generalized issue would hop to a sibling
            # specialization while decisions made below the current one
            # are still in force; the designer must retract first.
            raise SessionError(
                f"generalized issue {name!r} is already decided "
                f"({self._decisions[name]!r}); retract() it to ascend "
                f"before choosing another option")
        blockers = self.blocking_constraints(name)
        if blockers:
            needs = sorted({p for c in blockers
                            for p in c.independent_property_names()})
            raise SessionError(
                f"issue {name!r} is ordered after unresolved independents "
                f"{needs} (constraints: {[c.name for c in blockers]})")
        prop.validate(option, self.context())
        for bad_option, reason in self.eliminations_for(name):
            if bad_option == option:
                raise ConstraintViolation(
                    reason.split(":")[0],
                    f"option {option!r} of {name!r} was eliminated: {reason}")
        # Tentative evaluation before committing.
        self._refresh_constraints(overrides={name: option})
        snapshot_index = self.layer.libraries.index()
        cdo_before = self._cdo.qualified_name
        filters_before = (self._filter_decisions(),
                          tuple(self._requirement_pairs()))
        self._checkpoint()
        self._decisions[name] = option
        self._refresh_constraints()
        stale = self._mark_dependents_stale(name)
        self._stale.discard(name)
        self._invalidate_queries()
        self._log.append(f"decision {name} = {option!r}")
        if prop.generalized:
            owner = self._cdo.find_property_owner(name)
            assert owner is not None
            child = owner.child_for_option(option)
            on_path = child is self._cdo or child.is_ancestor_of(self._cdo)
            if owner is self._cdo:
                self._cdo = child
                self._log.append(f"specialized to {child.qualified_name}")
                self._refresh_constraints(enforce=False)
            elif not on_path:
                # The session already sits inside a *different* branch
                # of this ancestor's partition; accepting the decision
                # would contradict the current position.  Roll the whole
                # state back (constraints already ran with the rejected
                # decision, so derived values / eliminations / staleness
                # must not leak into subsequent queries).
                position = self._cdo.qualified_name
                self._restore(self._history.pop())
                raise SessionError(
                    f"option {option!r} of {name!r} selects "
                    f"{child.qualified_name}, but the exploration is "
                    f"inside {position}")
            # else: the option is the one this position already implies;
            # record it without moving.
        outcome = DecisionOutcome(
            issue=name, option=option, generalized=prop.generalized,
            cdo_before=cdo_before, cdo_after=self._cdo.qualified_name,
            stale=tuple(sorted(stale)),
            index=snapshot_index, policy=self.missing_policy,
            filters_before=filters_before,
            filters_after=(self._filter_decisions(),
                           tuple(self._requirement_pairs())))
        if obs.enabled:
            obs.emit(_ev.DECIDE, session=self._obs_session,
                     issue=name, option=option,
                     generalized=prop.generalized,
                     cdo=self._cdo.qualified_name, stale=sorted(stale))
        return outcome

    def retract(self, name: str) -> None:
        """Withdraw a decision or requirement value.

        Retracting a generalized decision ascends back above the
        specialization it selected and drops every decision and
        requirement that only exists below that point.
        """
        obs = self._obs
        if name not in self._decisions and name not in self._requirements:
            raise SessionError(f"{name!r} has not been addressed")
        self._checkpoint()
        if name in self._requirements:
            del self._requirements[name]
            self._log.append(f"retracted requirement {name}")
        else:
            prop = self._cdo.find_property(name)
            del self._decisions[name]
            self._log.append(f"retracted decision {name}")
            if isinstance(prop, DesignIssue) and prop.generalized:
                owner = self._cdo.find_property_owner(name)
                assert owner is not None
                dropped = self._drop_below(owner)
                self._cdo = owner
                if dropped:
                    self._log.append(
                        f"dropped deeper bindings: {sorted(dropped)}")
                self._log.append(f"ascended to {owner.qualified_name}")
        self._mark_dependents_stale(name)
        self._invalidate_queries()
        self._refresh_constraints(enforce=False)
        if obs.enabled:
            obs.emit(_ev.RETRACT, session=self._obs_session, name=name,
                     cdo=self._cdo.qualified_name)

    def _drop_below(self, cdo: ClassOfDesignObjects) -> Set[str]:
        """Remove bindings of properties not visible from ``cdo``."""
        dropped: Set[str] = set()
        for store in (self._decisions, self._requirements):
            for name in list(store):
                if not cdo.has_property(name):
                    del store[name]
                    dropped.add(name)
        return dropped

    def revise(self, name: str, value: object) -> None:
        """Change an already-addressed property.

        Implements the paper's re-assessment rule: "when the independent
        set is modified, the dependent set needs to be re-assessed" —
        dependents of ``name`` become stale.
        """
        if name in self._requirements:
            self.set_requirement(name, value)
        elif name in self._decisions:
            prop = self._cdo.find_property(name)
            if isinstance(prop, DesignIssue) and prop.generalized:
                raise SessionError(
                    f"{name!r} is a generalized issue; retract() it to "
                    f"ascend, then decide the new option")
            self.decide(name, value)
        else:
            raise SessionError(f"{name!r} has not been addressed yet")

    def _mark_dependents_stale(self, name: str) -> Set[str]:
        """Mark dependents of ``name`` stale; returns the marked set
        (the per-action re-assessment fan-out the trace records)."""
        marked: Set[str] = set()
        for constraint in self._applicable_constraints():
            if name in constraint.independent_property_names():
                for dep in constraint.dependent_property_names():
                    if dep in self._decisions or dep in self._requirements:
                        self._stale.add(dep)
                        marked.add(dep)
        return marked

    def acknowledge(self, name: str) -> None:
        """Designer confirms a stale dependent is still valid."""
        obs = self._obs
        if name not in self._stale:
            raise SessionError(f"{name!r} is not stale")
        self._stale.discard(name)
        self._log.append(f"re-assessed {name}")
        if obs.enabled:
            obs.emit(_ev.ACKNOWLEDGE, session=self._obs_session, name=name)

    # ------------------------------------------------------------------
    # queries: candidates, options, ranges
    # ------------------------------------------------------------------
    def _requirement_pairs(self) -> List[Tuple[Requirement, object]]:
        pairs: List[Tuple[Requirement, object]] = []
        for name, value in self._requirements.items():
            prop = self._cdo.find_property(name)
            assert isinstance(prop, Requirement)
            pairs.append((prop, value))
        return pairs

    def _filter_decisions(self) -> Dict[str, object]:
        """Decisions used for core filtering.

        Generalized decisions are realized by subtree indexing (the
        session already descended), so they are excluded from the
        property filter — a hard core indexed under ``...Hardware`` need
        not re-document "Implementation Style".
        """
        out: Dict[str, object] = {}
        for name, option in self._decisions.items():
            prop = self._cdo.find_property(name)
            if isinstance(prop, DesignIssue) and prop.generalized:
                continue
            out[name] = option
        return out

    def _prune_cache_key(self, decisions: Mapping[str, object],
                         requirements: Sequence[Tuple[Requirement, object]]
                         ) -> Optional[tuple]:
        """Memo key for one prune, or None when a value is unhashable."""
        try:
            return (self.layer.epoch, self._cdo.qualified_name,
                    self.missing_policy,
                    frozenset(decisions.items()),
                    tuple((req.name, req.sense, value)
                          for req, value in requirements))
        except TypeError:
            return None

    def prune_report(self,
                     extra: Optional[Mapping[str, object]] = None
                     ) -> PruneReport:
        """Current survivors with (lazily computed) elimination reasons.

        Reports are memoized on (layer epoch, position, decisions,
        requirements): repeated queries between mutations hit the cache,
        and any mutation of the layer or its libraries moves the epoch,
        so no caller ever observes a stale report.
        """
        obs = self._obs
        decisions = self._filter_decisions()
        if extra:
            decisions.update(extra)
        requirements = self._requirement_pairs()
        key = self._prune_cache_key(decisions, requirements)
        if key is not None:
            hit = self._prune_cache.get(key)
            if hit is not None:
                if obs.enabled:
                    payload = dict(session=self._obs_session,
                                   survivors=len(hit.survivors),
                                   extra=bool(extra))
                    if len(hit.survivors) <= TRACE_SET_LIMIT:
                        payload["digest"] = hit.digest()
                    obs.emit(_ev.CACHE_HIT, **payload)
                return hit
        self._prune_calls += 1
        if obs.enabled and key is not None:
            obs.emit(_ev.CACHE_MISS, session=self._obs_session)
        with obs.span(_ev.PRUNE, session=self._obs_session) as span:
            index = self.layer.libraries.index()
            report = index.prune(
                self._cdo.qualified_name, decisions, requirements,
                self.missing_policy)
            if obs.enabled:
                span.note(
                    cdo=self._cdo.qualified_name,
                    survivors=len(report.survivors),
                    epoch=self.layer.epoch,
                    extra=bool(extra))
                if len(report.survivors) <= TRACE_SET_LIMIT:
                    ranges = index.merit_ranges_for(
                        report.survivor_ids, self.merit_metrics)
                    span.note(
                        digest=report.digest(),
                        ranges={m: list(b) for m, b in ranges.items()})
        if key is not None:
            self._prune_cache[key] = report
        return report

    def candidates(self) -> List[DesignObject]:
        """Cores complying with the requirements and decisions so far."""
        return self.prune_report().survivors

    def fom_ranges(self, metrics: Optional[Sequence[str]] = None
                   ) -> Dict[str, Tuple[float, float]]:
        """Figure-of-merit ranges over the current candidates."""
        report = self.prune_report()
        return merit_ranges(report.survivors,
                            metrics if metrics is not None else self.merit_metrics)

    def available_options(self, issue_name: str,
                          limit: int = 32) -> List[OptionInfo]:
        """Options of an issue annotated with elimination status,
        candidate counts and merit ranges — the information the paper
        says should guide the designer at every step.

        Answered in one indexed pass: the base candidate set (everything
        but this issue's filter) is pruned once, then each option is a
        posting-set intersection instead of a full re-prune.
        """
        prop = self._cdo.find_property(issue_name)
        if not isinstance(prop, DesignIssue):
            raise SessionError(f"{issue_name!r} is not a design issue")
        eliminated = dict()
        for option, reason in self.eliminations_for(issue_name):
            eliminated[option] = reason
        index = self.layer.libraries.index()
        decisions = self._filter_decisions()
        decisions.pop(issue_name, None)
        requirements = self._requirement_pairs()
        base_ids = index.prune_ids(
            index.subtree_ids(self._cdo.qualified_name),
            decisions, requirements, self.missing_policy)
        owner = self._cdo.find_property_owner(issue_name) \
            if prop.generalized else None
        infos: List[OptionInfo] = []
        for option in prop.options(self.context(), limit):
            if option in eliminated:
                infos.append(OptionInfo(option, True, eliminated[option], 0))
                continue
            if prop.generalized:
                # A generalized option's candidates are the cores indexed
                # under the corresponding specialization (which need not
                # lie below the current position).
                assert owner is not None
                try:
                    child = owner.child_for_option(option)
                except Exception:
                    ids: Set[int] = set()
                else:
                    ids = index.prune_ids(
                        index.subtree_ids(child.qualified_name),
                        decisions, requirements, self.missing_policy)
            else:
                ids = base_ids & index.decision_ids(
                    issue_name, option, self.missing_policy)
            infos.append(OptionInfo(
                option, False, "", len(ids),
                index.merit_ranges_for(ids, self.merit_metrics)))
        return infos

    def explain(self, core_name: str) -> str:
        """Why a core is (or is not) among the current candidates.

        The paper's layer is supposed to keep the designer oriented;
        "it vanished" is not an answer, so this surfaces the exact
        decision or requirement that eliminated a core.
        """
        report = self.prune_report()
        if core_name in report.eliminated:
            return (f"{core_name} eliminated: "
                    f"{report.eliminated[core_name]}")
        if any(core.name == core_name for core in report.survivors):
            return f"{core_name} survives every decision and requirement"
        return (f"{core_name} is not indexed under "
                f"{self._cdo.qualified_name} (outside the explored "
                f"design-space region)")

    def addressable_issues(self) -> List[DesignIssue]:
        """Design issues visible here, not yet decided and not blocked.

        Generalized issues of ancestor CDOs whose option is already
        implied by the session's position (the branch was entered when
        the session started below it) are settled, not addressable.
        """
        out = []
        for issue in self._cdo.design_issues():
            if issue.name in self._decisions:
                continue
            if issue.generalized:
                owner = self._cdo.find_property_owner(issue.name)
                if owner is not None and owner is not self._cdo:
                    continue  # position already implies an option
            if self.blocking_constraints(issue.name):
                continue
            out.append(issue)
        return out

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Textual state summary for interactive use and the examples."""
        lines = [f"Exploration of layer {self.layer.name!r}",
                 f"  at CDO: {self._cdo.qualified_name}"]
        if self._requirements:
            lines.append("  requirements:")
            for name, value in sorted(self._requirements.items()):
                flag = "  [stale]" if name in self._stale else ""
                lines.append(f"    {name} = {value!r}{flag}")
        if self._decisions:
            lines.append("  decisions:")
            for name, option in sorted(self._decisions.items()):
                flag = "  [stale]" if name in self._stale else ""
                lines.append(f"    {name} = {option!r}{flag}")
        if self._derived:
            lines.append("  derived:")
            for name, value in sorted(self._derived.items()):
                lines.append(f"    {name} = {value!r}")
        prune_report = self.prune_report()
        lines.append(f"  candidate cores: {len(prune_report.survivors)}")
        ranges = merit_ranges(prune_report.survivors, self.merit_metrics)
        for metric, (lo, hi) in sorted(ranges.items()):
            lines.append(f"    {metric}: {lo:g} .. {hi:g}")
        pending = self.pending_constraints()
        if pending:
            lines.append(
                f"  pending constraints: {[c.name for c in pending]}")
        return "\n".join(lines)
