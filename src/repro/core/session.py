"""Exploration sessions: conceptual design over a design space layer.

A session walks the generalization/specialization hierarchy the way the
paper's designer does in Sec 5: enter requirement values from the system
specification, address design issues in an order consistent with the
layer's consistency constraints, descend into specialized CDOs when a
*generalized* issue is decided, and at every step observe the surviving
cores and their figure-of-merit ranges.

The session enforces the CC semantics of Sec 4:

* an issue appearing in a CC's dependent set cannot be addressed before
  the CC's independents are bound (partial ordering);
* deciding a combination a CC's relation rejects raises
  :class:`~repro.errors.ConstraintViolation`;
* options eliminated by ``EliminateOptions`` relations are withdrawn from
  the issue's available options;
* revising an independent marks every dependent *stale* — it "needs to be
  re-assessed" — and recomputes derived values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.cdo import ClassOfDesignObjects
from repro.core.constraints import (
    UNBOUND,
    ConsistencyConstraint,
    SessionBinding,
)
from repro.core.designobject import DesignObject
from repro.core.layer import DesignSpaceLayer
from repro.core.path import PropertyPath
from repro.core.properties import (
    BehavioralDescription,
    DesignIssue,
    Property,
    Requirement,
)
from repro.core.pruning import MissingPolicy, PruneReport, merit_ranges
from repro.errors import (
    ConstraintError,
    ConstraintViolation,
    PropertyError,
    SessionError,
)


@dataclass
class OptionInfo:
    """What the layer can tell the designer about one option of an issue."""

    option: object
    eliminated: bool
    elimination_reason: str
    candidate_count: int
    ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)


@dataclass
class _State:
    """Snapshot of all mutable session state (for undo)."""

    cdo_name: str
    requirements: Dict[str, object]
    decisions: Dict[str, object]
    derived: Dict[str, object]
    stale: Set[str]
    log: List[str]


class ExplorationSession:
    """One designer's traversal of a design space layer."""

    def __init__(self, layer: DesignSpaceLayer,
                 start: Union[str, ClassOfDesignObjects],
                 merit_metrics: Sequence[str] = ("area", "latency_ns"),
                 missing_policy: MissingPolicy = MissingPolicy.EXCLUDE):
        self.layer = layer
        self._cdo = layer.cdo(start) if isinstance(start, str) else start
        #: Metrics summarized in range reports.
        self.merit_metrics = tuple(merit_metrics)
        self.missing_policy = missing_policy
        self._requirements: Dict[str, object] = {}
        self._decisions: Dict[str, object] = {}
        self._derived: Dict[str, object] = {}
        self._stale: Set[str] = set()
        self._log: List[str] = []
        self._history: List[_State] = []
        self._checkpoints: Dict[str, _State] = {}
        #: Epoch-keyed memo of prune reports; every mutation clears it
        #: (the layer-epoch component of each key additionally guards
        #: against library/hierarchy changes behind the session's back).
        self._prune_cache: Dict[tuple, PruneReport] = {}
        self._constraints_cache_key: object = None
        self._constraints_cache: List[ConsistencyConstraint] = []
        #: Number of actual (non-memoized) prune computations; exposed
        #: for tests and benchmarks asserting query-plan economy.
        self._prune_calls = 0
        self._refresh_constraints()

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    @property
    def current_cdo(self) -> ClassOfDesignObjects:
        return self._cdo

    @property
    def decisions(self) -> Mapping[str, object]:
        return dict(self._decisions)

    @property
    def requirement_values(self) -> Mapping[str, object]:
        return dict(self._requirements)

    @property
    def derived_values(self) -> Mapping[str, object]:
        return dict(self._derived)

    @property
    def stale_properties(self) -> Set[str]:
        return set(self._stale)

    @property
    def log(self) -> Sequence[str]:
        return tuple(self._log)

    def context(self) -> Dict[str, object]:
        """Property-name -> value mapping used by dependent domains."""
        ctx: Dict[str, object] = {}
        ctx.update(self._derived)
        ctx.update(self._requirements)
        ctx.update(self._decisions)
        return ctx

    # ------------------------------------------------------------------
    # constraint machinery
    # ------------------------------------------------------------------
    def _applicable_constraints(self) -> List[ConsistencyConstraint]:
        key = (self.layer.epoch, self._cdo.qualified_name)
        if key != self._constraints_cache_key:
            self._constraints_cache = self.layer.constraints.applicable(
                self._cdo, self.layer.aliases)
            self._constraints_cache_key = key
        return self._constraints_cache

    def _bind_ref(self, ref: Union[PropertyPath, SessionBinding]) -> object:
        """Resolve one constraint reference to a value, or UNBOUND."""
        if isinstance(ref, SessionBinding):
            return ref.fn(self)
        name = ref.property_name
        if name in self._decisions:
            value: object = self._decisions[name]
        elif name in self._requirements:
            value = self._requirements[name]
        elif name in self._derived:
            value = self._derived[name]
        else:
            try:
                prop = self._cdo.find_property(name)
            except PropertyError:
                return UNBOUND
            if isinstance(prop, BehavioralDescription) and prop.description is not None:
                value = prop.description
            elif isinstance(prop, DesignIssue) and prop.default is not None:
                value = prop.default
            else:
                return UNBOUND
        if ref.selectors:
            value = self.layer.selectors.apply_chain(ref.selectors, value)
        return value

    def _bindings_for(self, constraint: ConsistencyConstraint,
                      overrides: Optional[Mapping[str, object]] = None
                      ) -> Optional[Dict[str, object]]:
        """Bind the aliases of ``constraint``; None when incomplete.

        Independents and shorts must all resolve; dependent aliases are
        included when a value is available (a decided option, a
        tentative override) and omitted otherwise — relations declare
        via their ``requires`` lists whether they need them.

        ``overrides`` maps *property names* to tentative values (used to
        test a decision before committing it).
        """
        bindings: Dict[str, object] = {}
        required = {**constraint.independents, **constraint.shorts}
        for alias, ref in required.items():
            value = self._lookup(ref, overrides)
            if value is UNBOUND:
                return None
            bindings[alias] = value
        for alias, ref in constraint.dependents.items():
            value = self._lookup(ref, overrides)
            if value is not UNBOUND:
                bindings[alias] = value
        return bindings

    def _lookup(self, ref: Union[PropertyPath, SessionBinding],
                overrides: Optional[Mapping[str, object]]) -> object:
        if (overrides and isinstance(ref, PropertyPath)
                and not ref.selectors
                and ref.property_name in overrides):
            return overrides[ref.property_name]
        return self._bind_ref(ref)

    def _independents_bound(self, constraint: ConsistencyConstraint) -> bool:
        refs = {**constraint.independents, **constraint.shorts}
        return all(self._bind_ref(ref) is not UNBOUND for ref in refs.values())

    def _refresh_constraints(self,
                             overrides: Optional[Mapping[str, object]] = None,
                             enforce: bool = True) -> None:
        """Re-evaluate every applicable, fully-bound constraint.

        Updates derived values and option eliminations; raises
        :class:`ConstraintViolation` for rejected combinations when
        ``enforce``.
        """
        derived: Dict[str, object] = {}
        eliminated: Dict[str, List[Tuple[object, str]]] = {}
        for constraint in self._applicable_constraints():
            bindings = self._bindings_for(constraint, overrides)
            if bindings is None:
                continue
            try:
                result = constraint.relation.evaluate(bindings, self.layer.tools)
            except ConstraintError:
                # The relation needs aliases this CC does not bind yet.
                continue
            if not result.ok and enforce:
                raise ConstraintViolation(constraint.name,
                                          result.explanation or constraint.doc)
            for alias, value in result.derived.items():
                target = self._alias_to_property(constraint, alias)
                derived[target] = value
            for prop_name, option in result.eliminated:
                eliminated.setdefault(prop_name, []).append(
                    (option, f"{constraint.name}: {constraint.doc}"))
        self._derived = derived
        self._eliminations = eliminated

    @staticmethod
    def _alias_to_property(constraint: ConsistencyConstraint,
                           alias: str) -> str:
        ref = constraint.dependents.get(alias)
        if isinstance(ref, PropertyPath):
            return ref.property_name
        return alias

    def eliminations_for(self, issue_name: str) -> List[Tuple[object, str]]:
        """Options of ``issue_name`` currently eliminated, with reasons."""
        return list(getattr(self, "_eliminations", {}).get(issue_name, []))

    def pending_constraints(self) -> List[ConsistencyConstraint]:
        """Applicable constraints whose independent sets are not bound."""
        return [c for c in self._applicable_constraints()
                if not self._independents_bound(c)]

    def blocking_constraints(self, issue_name: str
                             ) -> List[ConsistencyConstraint]:
        """Constraints that gate ``issue_name`` and are not yet bound —
        the designer must address their independents first (paper Sec 4)."""
        gating = self.layer.constraints.gating(issue_name, self._cdo,
                                               self.layer.aliases)
        return [c for c in gating if not self._independents_bound(c)]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        self._history.append(_State(
            cdo_name=self._cdo.qualified_name,
            requirements=dict(self._requirements),
            decisions=dict(self._decisions),
            derived=dict(self._derived),
            stale=set(self._stale),
            log=list(self._log),
        ))

    def undo(self) -> None:
        """Revert the last mutating operation."""
        if not self._history:
            raise SessionError("nothing to undo")
        self._restore(self._history.pop())

    def _restore(self, state: "_State") -> None:
        self._cdo = self.layer.cdo(state.cdo_name)
        self._requirements = dict(state.requirements)
        self._decisions = dict(state.decisions)
        self._derived = dict(state.derived)
        self._stale = set(state.stale)
        self._log = list(state.log)
        self._invalidate_queries()
        self._refresh_constraints(enforce=False)

    def _invalidate_queries(self) -> None:
        """Drop memoized prune reports after a session mutation.

        The layer-epoch component of every cache key already protects
        against library/hierarchy changes; clearing here simply bounds
        the cache to the current exploration state."""
        self._prune_cache.clear()

    def checkpoint(self, tag: str) -> None:
        """Save the current state under a name for branched what-ifs.

        Unlike :meth:`undo`'s linear history, named checkpoints let the
        designer fork: explore one branch, ``restore`` the checkpoint,
        explore another, and compare (the paper's trade-off exploration
        is exactly this loop).
        """
        if not tag:
            raise SessionError("checkpoint tag must be non-empty")
        self._checkpoints[tag] = _State(
            cdo_name=self._cdo.qualified_name,
            requirements=dict(self._requirements),
            decisions=dict(self._decisions),
            derived=dict(self._derived),
            stale=set(self._stale),
            log=list(self._log),
        )

    def restore(self, tag: str) -> None:
        """Return to a named checkpoint (linear undo history is kept,
        with the restore itself undoable)."""
        if tag not in self._checkpoints:
            raise SessionError(
                f"no checkpoint {tag!r}; saved: {sorted(self._checkpoints)}")
        self._checkpoint()
        self._restore(self._checkpoints[tag])
        self._log.append(f"restored checkpoint {tag!r}")

    def checkpoints(self) -> List[str]:
        return sorted(self._checkpoints)

    def set_requirement(self, name: str, value: object) -> None:
        """Enter a requirement value from the system specification."""
        prop = self._cdo.find_property(name)
        if not isinstance(prop, Requirement):
            raise SessionError(
                f"{name!r} is a {type(prop).__name__}, not a requirement; "
                f"use decide() for design issues")
        prop.validate(value, self.context())
        self._checkpoint()
        previous = self._requirements.get(name)
        self._requirements[name] = value
        try:
            self._refresh_constraints()
        except ConstraintViolation:
            self._requirements.pop(name)
            if previous is not None:
                self._requirements[name] = previous
            self._history.pop()
            raise
        self._mark_dependents_stale(name)
        self._stale.discard(name)
        self._invalidate_queries()
        self._log.append(f"requirement {name} = {value!r}")

    def decide(self, name: str, option: object) -> None:
        """Commit a design decision; descends when the issue is generalized."""
        prop = self._cdo.find_property(name)
        if not isinstance(prop, DesignIssue):
            raise SessionError(
                f"{name!r} is a {type(prop).__name__}, not a design issue; "
                f"use set_requirement() for requirements")
        if prop.generalized and name in self._decisions:
            # Re-deciding a generalized issue would hop to a sibling
            # specialization while decisions made below the current one
            # are still in force; the designer must retract first.
            raise SessionError(
                f"generalized issue {name!r} is already decided "
                f"({self._decisions[name]!r}); retract() it to ascend "
                f"before choosing another option")
        blockers = self.blocking_constraints(name)
        if blockers:
            needs = sorted({p for c in blockers
                            for p in c.independent_property_names()})
            raise SessionError(
                f"issue {name!r} is ordered after unresolved independents "
                f"{needs} (constraints: {[c.name for c in blockers]})")
        prop.validate(option, self.context())
        for bad_option, reason in self.eliminations_for(name):
            if bad_option == option:
                raise ConstraintViolation(
                    reason.split(":")[0],
                    f"option {option!r} of {name!r} was eliminated: {reason}")
        # Tentative evaluation before committing.
        self._refresh_constraints(overrides={name: option})
        self._checkpoint()
        self._decisions[name] = option
        self._refresh_constraints()
        self._mark_dependents_stale(name)
        self._stale.discard(name)
        self._invalidate_queries()
        self._log.append(f"decision {name} = {option!r}")
        if prop.generalized:
            owner = self._cdo.find_property_owner(name)
            assert owner is not None
            child = owner.child_for_option(option)
            on_path = child is self._cdo or child.is_ancestor_of(self._cdo)
            if owner is self._cdo:
                self._cdo = child
                self._log.append(f"specialized to {child.qualified_name}")
                self._refresh_constraints(enforce=False)
            elif not on_path:
                # The session already sits inside a *different* branch
                # of this ancestor's partition; accepting the decision
                # would contradict the current position.  Roll the whole
                # state back (constraints already ran with the rejected
                # decision, so derived values / eliminations / staleness
                # must not leak into subsequent queries).
                position = self._cdo.qualified_name
                self._restore(self._history.pop())
                raise SessionError(
                    f"option {option!r} of {name!r} selects "
                    f"{child.qualified_name}, but the exploration is "
                    f"inside {position}")
            # else: the option is the one this position already implies;
            # record it without moving.

    def retract(self, name: str) -> None:
        """Withdraw a decision or requirement value.

        Retracting a generalized decision ascends back above the
        specialization it selected and drops every decision and
        requirement that only exists below that point.
        """
        if name not in self._decisions and name not in self._requirements:
            raise SessionError(f"{name!r} has not been addressed")
        self._checkpoint()
        if name in self._requirements:
            del self._requirements[name]
            self._log.append(f"retracted requirement {name}")
        else:
            prop = self._cdo.find_property(name)
            del self._decisions[name]
            self._log.append(f"retracted decision {name}")
            if isinstance(prop, DesignIssue) and prop.generalized:
                owner = self._cdo.find_property_owner(name)
                assert owner is not None
                dropped = self._drop_below(owner)
                self._cdo = owner
                if dropped:
                    self._log.append(
                        f"dropped deeper bindings: {sorted(dropped)}")
                self._log.append(f"ascended to {owner.qualified_name}")
        self._mark_dependents_stale(name)
        self._invalidate_queries()
        self._refresh_constraints(enforce=False)

    def _drop_below(self, cdo: ClassOfDesignObjects) -> Set[str]:
        """Remove bindings of properties not visible from ``cdo``."""
        dropped: Set[str] = set()
        for store in (self._decisions, self._requirements):
            for name in list(store):
                if not cdo.has_property(name):
                    del store[name]
                    dropped.add(name)
        return dropped

    def revise(self, name: str, value: object) -> None:
        """Change an already-addressed property.

        Implements the paper's re-assessment rule: "when the independent
        set is modified, the dependent set needs to be re-assessed" —
        dependents of ``name`` become stale.
        """
        if name in self._requirements:
            self.set_requirement(name, value)
        elif name in self._decisions:
            prop = self._cdo.find_property(name)
            if isinstance(prop, DesignIssue) and prop.generalized:
                raise SessionError(
                    f"{name!r} is a generalized issue; retract() it to "
                    f"ascend, then decide the new option")
            self.decide(name, value)
        else:
            raise SessionError(f"{name!r} has not been addressed yet")

    def _mark_dependents_stale(self, name: str) -> None:
        for constraint in self._applicable_constraints():
            if name in constraint.independent_property_names():
                for dep in constraint.dependent_property_names():
                    if dep in self._decisions or dep in self._requirements:
                        self._stale.add(dep)

    def acknowledge(self, name: str) -> None:
        """Designer confirms a stale dependent is still valid."""
        if name not in self._stale:
            raise SessionError(f"{name!r} is not stale")
        self._stale.discard(name)
        self._log.append(f"re-assessed {name}")

    # ------------------------------------------------------------------
    # queries: candidates, options, ranges
    # ------------------------------------------------------------------
    def _requirement_pairs(self) -> List[Tuple[Requirement, object]]:
        pairs: List[Tuple[Requirement, object]] = []
        for name, value in self._requirements.items():
            prop = self._cdo.find_property(name)
            assert isinstance(prop, Requirement)
            pairs.append((prop, value))
        return pairs

    def _filter_decisions(self) -> Dict[str, object]:
        """Decisions used for core filtering.

        Generalized decisions are realized by subtree indexing (the
        session already descended), so they are excluded from the
        property filter — a hard core indexed under ``...Hardware`` need
        not re-document "Implementation Style".
        """
        out: Dict[str, object] = {}
        for name, option in self._decisions.items():
            prop = self._cdo.find_property(name)
            if isinstance(prop, DesignIssue) and prop.generalized:
                continue
            out[name] = option
        return out

    def _prune_cache_key(self, decisions: Mapping[str, object],
                         requirements: Sequence[Tuple[Requirement, object]]
                         ) -> Optional[tuple]:
        """Memo key for one prune, or None when a value is unhashable."""
        try:
            return (self.layer.epoch, self._cdo.qualified_name,
                    self.missing_policy,
                    frozenset(decisions.items()),
                    tuple((req.name, req.sense, value)
                          for req, value in requirements))
        except TypeError:
            return None

    def prune_report(self,
                     extra: Optional[Mapping[str, object]] = None
                     ) -> PruneReport:
        """Current survivors with (lazily computed) elimination reasons.

        Reports are memoized on (layer epoch, position, decisions,
        requirements): repeated queries between mutations hit the cache,
        and any mutation of the layer or its libraries moves the epoch,
        so no caller ever observes a stale report.
        """
        decisions = self._filter_decisions()
        if extra:
            decisions.update(extra)
        requirements = self._requirement_pairs()
        key = self._prune_cache_key(decisions, requirements)
        if key is not None:
            hit = self._prune_cache.get(key)
            if hit is not None:
                return hit
        self._prune_calls += 1
        report = self.layer.libraries.index().prune(
            self._cdo.qualified_name, decisions, requirements,
            self.missing_policy)
        if key is not None:
            self._prune_cache[key] = report
        return report

    def candidates(self) -> List[DesignObject]:
        """Cores complying with the requirements and decisions so far."""
        return self.prune_report().survivors

    def fom_ranges(self, metrics: Optional[Sequence[str]] = None
                   ) -> Dict[str, Tuple[float, float]]:
        """Figure-of-merit ranges over the current candidates."""
        report = self.prune_report()
        return merit_ranges(report.survivors,
                            metrics if metrics is not None else self.merit_metrics)

    def available_options(self, issue_name: str,
                          limit: int = 32) -> List[OptionInfo]:
        """Options of an issue annotated with elimination status,
        candidate counts and merit ranges — the information the paper
        says should guide the designer at every step.

        Answered in one indexed pass: the base candidate set (everything
        but this issue's filter) is pruned once, then each option is a
        posting-set intersection instead of a full re-prune.
        """
        prop = self._cdo.find_property(issue_name)
        if not isinstance(prop, DesignIssue):
            raise SessionError(f"{issue_name!r} is not a design issue")
        eliminated = dict()
        for option, reason in self.eliminations_for(issue_name):
            eliminated[option] = reason
        index = self.layer.libraries.index()
        decisions = self._filter_decisions()
        decisions.pop(issue_name, None)
        requirements = self._requirement_pairs()
        base_ids = index.prune_ids(
            index.subtree_ids(self._cdo.qualified_name),
            decisions, requirements, self.missing_policy)
        owner = self._cdo.find_property_owner(issue_name) \
            if prop.generalized else None
        infos: List[OptionInfo] = []
        for option in prop.options(self.context(), limit):
            if option in eliminated:
                infos.append(OptionInfo(option, True, eliminated[option], 0))
                continue
            if prop.generalized:
                # A generalized option's candidates are the cores indexed
                # under the corresponding specialization (which need not
                # lie below the current position).
                assert owner is not None
                try:
                    child = owner.child_for_option(option)
                except Exception:
                    ids: Set[int] = set()
                else:
                    ids = index.prune_ids(
                        index.subtree_ids(child.qualified_name),
                        decisions, requirements, self.missing_policy)
            else:
                ids = base_ids & index.decision_ids(
                    issue_name, option, self.missing_policy)
            infos.append(OptionInfo(
                option, False, "", len(ids),
                index.merit_ranges_for(ids, self.merit_metrics)))
        return infos

    def explain(self, core_name: str) -> str:
        """Why a core is (or is not) among the current candidates.

        The paper's layer is supposed to keep the designer oriented;
        "it vanished" is not an answer, so this surfaces the exact
        decision or requirement that eliminated a core.
        """
        report = self.prune_report()
        if core_name in report.eliminated:
            return (f"{core_name} eliminated: "
                    f"{report.eliminated[core_name]}")
        if any(core.name == core_name for core in report.survivors):
            return f"{core_name} survives every decision and requirement"
        return (f"{core_name} is not indexed under "
                f"{self._cdo.qualified_name} (outside the explored "
                f"design-space region)")

    def addressable_issues(self) -> List[DesignIssue]:
        """Design issues visible here, not yet decided and not blocked.

        Generalized issues of ancestor CDOs whose option is already
        implied by the session's position (the branch was entered when
        the session started below it) are settled, not addressable.
        """
        out = []
        for issue in self._cdo.design_issues():
            if issue.name in self._decisions:
                continue
            if issue.generalized:
                owner = self._cdo.find_property_owner(issue.name)
                if owner is not None and owner is not self._cdo:
                    continue  # position already implies an option
            if self.blocking_constraints(issue.name):
                continue
            out.append(issue)
        return out

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Textual state summary for interactive use and the examples."""
        lines = [f"Exploration of layer {self.layer.name!r}",
                 f"  at CDO: {self._cdo.qualified_name}"]
        if self._requirements:
            lines.append("  requirements:")
            for name, value in sorted(self._requirements.items()):
                flag = "  [stale]" if name in self._stale else ""
                lines.append(f"    {name} = {value!r}{flag}")
        if self._decisions:
            lines.append("  decisions:")
            for name, option in sorted(self._decisions.items()):
                flag = "  [stale]" if name in self._stale else ""
                lines.append(f"    {name} = {option!r}{flag}")
        if self._derived:
            lines.append("  derived:")
            for name, value in sorted(self._derived.items()):
                lines.append(f"    {name} = {value!r}")
        prune_report = self.prune_report()
        lines.append(f"  candidate cores: {len(prune_report.survivors)}")
        ranges = merit_ranges(prune_report.survivors, self.merit_metrics)
        for metric, (lo, hi) in sorted(ranges.items()):
            lines.append(f"    {metric}: {lo:g} .. {hi:g}")
        pending = self.pending_constraints()
        if pending:
            lines.append(
                f"  pending constraints: {[c.name for c in pending]}")
        return "\n".join(lines)
