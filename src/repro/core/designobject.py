"""Design objects — points in the design space (reusable cores).

A design object is a concrete, reusable design residing in a reuse
library: a hard/soft/firm core, or a software routine plus the processor
it runs on (paper Sec 2).  The design space layer indexes it under a CDO
and characterizes it with:

* **property values** — the option the core realizes for each design
  issue and the problem givens it supports (its position in the space);
* **figures of merit** — measured/estimated area, latency, clock period,
  power, ... used by the evaluation space (Figs 9/12);
* **views** — detailed design data per level of abstraction (the boxes of
  Fig 2(b)); the layer stores them opaquely, as payload references.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.errors import LibraryError

#: Conventional figure-of-merit keys used across the repository.  Layers
#: may add their own; these names keep benchmarks and reports consistent.
AREA = "area"                      # equivalent-gate area (dimensionless)
LATENCY_NS = "latency_ns"          # single-operation latency
CLOCK_NS = "clock_ns"              # clock period (hardware cores)
CYCLES = "cycles"                  # latency in clock cycles
DELAY_US = "delay_us"              # single-operation latency, microseconds
POWER_MW = "power_mw"              # average power (extension FoM)
THROUGHPUT_OPS = "throughput_ops"  # operations per second

#: The abstraction levels of Fig 2(b).
LEVELS = ("algorithm", "rt", "logic", "physical")


class DesignObject:
    """A reusable design (core) indexed by the design space layer."""

    def __init__(self, name: str, cdo_name: str,
                 properties: Optional[Mapping[str, object]] = None,
                 merits: Optional[Mapping[str, float]] = None,
                 doc: str = "",
                 views: Optional[Mapping[str, object]] = None,
                 provenance: str = ""):
        if not name:
            raise LibraryError("design object name must be non-empty")
        if not cdo_name:
            raise LibraryError(f"design object {name!r} needs a CDO name")
        #: Containers (reuse libraries) whose indexes cover this core;
        #: notified on every characterization change so epoch-cached
        #: queries never serve a stale position in the design space.
        self._watchers: list = []
        self.name = name
        #: Qualified name of the (typically leaf) CDO the core belongs to.
        self.cdo_name = cdo_name
        self._properties: Dict[str, object] = dict(properties or {})
        self._merits: Dict[str, float] = {}
        for key, value in (merits or {}).items():
            self.set_merit(key, value)
        self.doc = doc
        self._views: Dict[str, object] = dict(views or {})
        for level in self._views:
            if level not in LEVELS:
                raise LibraryError(
                    f"design object {name!r}: unknown view level {level!r}; "
                    f"expected one of {LEVELS}")
        #: Which reuse library / flow produced this core (Fig 1's A/B/C).
        self.provenance = provenance

    # ------------------------------------------------------------------
    # property values (position in the design space)
    # ------------------------------------------------------------------
    def property_value(self, name: str, default: object = None) -> object:
        return self._properties.get(name, default)

    def has_property(self, name: str) -> bool:
        return name in self._properties

    def _touch(self) -> None:
        for watcher in self._watchers:
            watcher._bump()

    def set_property(self, name: str, value: object) -> None:
        _sanitizer.check_write(self, "DesignObject.set_property")
        self._properties[name] = value
        self._touch()

    @property
    def properties(self) -> Mapping[str, object]:
        return dict(self._properties)

    # ------------------------------------------------------------------
    # figures of merit (position in the evaluation space)
    # ------------------------------------------------------------------
    def merit(self, key: str) -> float:
        try:
            return self._merits[key]
        except KeyError:
            raise LibraryError(
                f"design object {self.name!r} has no figure of merit {key!r}; "
                f"available: {sorted(self._merits)}") from None

    def merit_or_none(self, key: str) -> Optional[float]:
        return self._merits.get(key)

    def has_merit(self, key: str) -> bool:
        return key in self._merits

    def set_merit(self, key: str, value: float) -> None:
        _sanitizer.check_write(self, "DesignObject.set_merit")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise LibraryError(
                f"figure of merit {key!r} must be numeric, got {value!r}")
        self._merits[key] = float(value)
        self._touch()

    @property
    def merits(self) -> Mapping[str, float]:
        return dict(self._merits)

    # ------------------------------------------------------------------
    # views (detailed design data, Fig 2(b))
    # ------------------------------------------------------------------
    def view(self, level: str) -> object:
        try:
            return self._views[level]
        except KeyError:
            raise LibraryError(
                f"design object {self.name!r} has no {level!r} view") from None

    def has_view(self, level: str) -> bool:
        return level in self._views

    def set_view(self, level: str, payload: object) -> None:
        _sanitizer.check_write(self, "DesignObject.set_view")
        if level not in LEVELS:
            raise LibraryError(f"unknown view level {level!r}")
        self._views[level] = payload
        self._touch()

    @property
    def view_levels(self) -> Sequence[str]:
        return tuple(level for level in LEVELS if level in self._views)

    # ------------------------------------------------------------------
    def evaluation_point(self, metrics: Sequence[str]) -> Tuple[float, ...]:
        """Coordinates of the core in the evaluation space spanned by
        ``metrics`` (raises if any metric is missing)."""
        return tuple(self.merit(m) for m in metrics)

    def describe(self) -> str:
        merits = ", ".join(f"{k}={v:g}" for k, v in sorted(self._merits.items()))
        props = ", ".join(f"{k}={v}" for k, v in sorted(self._properties.items(),
                                                        key=lambda kv: kv[0]))
        return (f"{self.name} [{self.cdo_name}] {{{props}}} ({merits})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DesignObject {self.name} @ {self.cdo_name}>"
