"""Deriving generalization hierarchies from evaluation data (paper Sec 2.2).

The paper argues that generalization boundaries should follow the cores'
"actual proximity in the evaluation space": designs 1, 2 and 5 of the
IDCT example cluster apart from designs 3 and 4, so the first design
issue presented should be the one separating those clusters (Fig 3).

This module makes that argument executable: agglomerative clustering with
complete linkage over normalized figures of merit, a gap heuristic to
pick the number of clusters, and a routine that checks which design-issue
options *explain* a clustering — i.e. which issue is the right candidate
for generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.evaluation import EvaluationPoint, EvaluationSpace
from repro.errors import ReproError


@dataclass
class Cluster:
    """A group of evaluation points."""

    points: List[EvaluationPoint]

    @property
    def names(self) -> Set[str]:
        return {p.name for p in self.points}

    def centroid(self) -> Tuple[float, ...]:
        if not self.points:
            raise ReproError("empty cluster has no centroid")
        dim = len(self.points[0].coords)
        return tuple(sum(p.coords[i] for p in self.points) / len(self.points)
                     for i in range(dim))


def _complete_linkage(a: Cluster, b: Cluster,
                      scales: Sequence[float]) -> float:
    """Greatest pairwise normalized distance between the clusters."""
    return max(p.distance_to(q, scales) for p in a.points for q in b.points)


@dataclass
class MergeStep:
    """One agglomeration step, recorded for dendrogram-style reporting."""

    distance: float
    left_names: Set[str]
    right_names: Set[str]


def agglomerate(space: EvaluationSpace, k: int
                ) -> Tuple[List[Cluster], List[MergeStep]]:
    """Complete-linkage agglomerative clustering down to ``k`` clusters.

    Distances are normalized by per-axis span so that area (tens of
    thousands of gates) does not drown delay (nanoseconds).  Returns the
    clusters and the merge history.
    """
    if k < 1:
        raise ReproError(f"cluster count must be >= 1, got {k}")
    if len(space) < k:
        raise ReproError(
            f"cannot form {k} clusters from {len(space)} points")
    scales = space.scales()
    clusters = [Cluster([p]) for p in space.points]
    history: List[MergeStep] = []
    while len(clusters) > k:
        best: Optional[Tuple[float, int, int]] = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                d = _complete_linkage(clusters[i], clusters[j], scales)
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        d, i, j = best
        history.append(MergeStep(d, clusters[i].names, clusters[j].names))
        merged = Cluster(clusters[i].points + clusters[j].points)
        clusters = [c for idx, c in enumerate(clusters) if idx not in (i, j)]
        clusters.append(merged)
    return clusters, history


def suggest_cluster_count(space: EvaluationSpace, max_k: int = 6) -> int:
    """Pick k by the largest relative gap in merge distances.

    Run the agglomeration to a single cluster and find the merge whose
    distance jumps most over its predecessor — cutting just before that
    merge yields the natural cluster count.  Falls back to 1 for
    degenerate spaces.
    """
    if len(space) <= 1:
        return len(space)
    _, history = agglomerate(space, 1)
    if not history:
        return 1
    best_k = 1
    best_gap = 0.0
    for i in range(1, len(history)):
        previous = history[i - 1].distance
        if previous <= 0:
            continue
        gap = history[i].distance / previous
        # Cutting before merge i leaves len(history) - i + 1 clusters.
        k = len(history) - i + 1
        if gap > best_gap and k <= max_k:
            best_gap = gap
            best_k = k
    return best_k


@dataclass
class IssueExplanation:
    """How well one design issue explains a clustering.

    ``purity`` is the fraction of designs whose cluster is predicted by
    the issue's option (1.0 = the issue splits exactly along cluster
    boundaries and is the natural generalization candidate).
    """

    issue_name: str
    purity: float
    option_by_cluster: List[Dict[object, int]]


def explain_clusters(clusters: Sequence[Cluster],
                     issue_names: Sequence[str]) -> List[IssueExplanation]:
    """Rank design issues by how well their options predict the clusters.

    Only points carrying a backing design object with the property set
    participate.  Purity is computed by assigning each cluster its
    majority option and counting agreement; issues splitting along
    cluster boundaries score 1.0 and are the generalization candidates
    the paper would promote (Sec 2.2).
    """
    out: List[IssueExplanation] = []
    for issue in issue_names:
        per_cluster: List[Dict[object, int]] = []
        agree = 0
        total = 0
        used_options: List[object] = []
        for cluster in clusters:
            counts: Dict[object, int] = {}
            for point in cluster.points:
                if point.design is None or not point.design.has_property(issue):
                    continue
                option = point.design.property_value(issue)
                counts[option] = counts.get(option, 0) + 1
            per_cluster.append(counts)
            if counts:
                majority_option = max(counts, key=lambda o: counts[o])
                # An option reused as majority of two clusters cannot
                # discriminate them; it still counts toward agreement of
                # its first cluster only.
                if majority_option in used_options:
                    total += sum(counts.values())
                    continue
                used_options.append(majority_option)
                agree += counts[majority_option]
                total += sum(counts.values())
        purity = (agree / total) if total else 0.0
        out.append(IssueExplanation(issue, purity, per_cluster))
    out.sort(key=lambda e: e.purity, reverse=True)
    return out


def suggest_generalization(space: EvaluationSpace,
                           issue_names: Sequence[str],
                           k: Optional[int] = None
                           ) -> Tuple[List[Cluster], List[IssueExplanation]]:
    """End-to-end hierarchy induction: cluster the evaluation space, then
    rank candidate issues for the generalized split.

    Returns the clusters and the explanations sorted best-first; the
    top-ranked issue with purity 1.0 (if any) is the one a layer designer
    should promote to a generalized design issue.
    """
    if k is None:
        k = suggest_cluster_count(space)
    clusters, _ = agglomerate(space, k)
    return clusters, explain_clusters(clusters, issue_names)
