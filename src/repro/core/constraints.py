"""Consistency constraints (paper Sec 4, Fig 13).

A consistency constraint (CC) is defined by an **independent set** of
properties, a **dependent set** of properties, and a **relation**.  The
dependent set can only be addressed by the designer after the independent
set has been addressed, and must be re-assessed whenever an independent
changes.  CCs therefore serve three purposes at once (all exercised by
the crypto case study):

* consistency between design options / requirements (CC1);
* partial ordering of design issues by impact (the independent/dependent
  split *is* the ordering);
* the utilization context of early estimation tools (CC3) and the
  elimination of dominated options (CC4).

Property references in the independent/dependent sets are written in the
paper's path notation (:mod:`repro.core.path`).  For references the path
language cannot express (e.g. CC4's reach into a behavioral
decomposition), a :class:`SessionBinding` escape hatch binds the alias
with a function of the exploration session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.analysis import sanitizer as _sanitizer
from repro.core.cdo import ClassOfDesignObjects
from repro.core.path import PropertyPath, parse_path
from repro.core.relations import Relation
from repro.errors import ConstraintError


@dataclass(frozen=True)
class SessionBinding:
    """Bind an alias from the exploration session directly.

    ``fn(session)`` returns the value, or :data:`UNBOUND` when the
    information the binding needs is not available yet.  ``doc`` keeps the
    constraint self-documented.
    """

    fn: Callable[[object], object]
    doc: str
    #: Pattern of the CDO(s) on which this binding becomes meaningful;
    #: empty means "anywhere".
    pattern: str = ""


class _Unbound:
    """Sentinel for 'no value yet'."""

    def __repr__(self) -> str:
        return "UNBOUND"


UNBOUND = _Unbound()

Ref = Union[str, PropertyPath, SessionBinding]


def _normalize_refs(refs: Mapping[str, Ref]) -> Dict[str, Union[PropertyPath, SessionBinding]]:
    out: Dict[str, Union[PropertyPath, SessionBinding]] = {}
    for alias, ref in refs.items():
        if isinstance(ref, str):
            out[alias] = parse_path(ref)
        elif isinstance(ref, (PropertyPath, SessionBinding)):
            out[alias] = ref
        else:
            raise ConstraintError(
                f"alias {alias!r}: expected a path or SessionBinding, "
                f"got {type(ref).__name__}")
    return out


class ConsistencyConstraint:
    """A named CC tying independents to dependents through a relation."""

    def __init__(self, name: str, doc: str,
                 independents: Mapping[str, Ref],
                 dependents: Mapping[str, Ref],
                 relation: Relation,
                 shorts: Optional[Mapping[str, Ref]] = None):
        if not name:
            raise ConstraintError("constraint name must be non-empty")
        if not doc:
            raise ConstraintError(f"constraint {name!r} needs a doc string")
        self.name = name
        self.doc = doc
        self.independents = _normalize_refs(independents)
        self.dependents = _normalize_refs(dependents)
        #: Named sub-expressions (the paper's ``Shorts={...}``), resolved
        #: like independents and exposed to the relation under their alias.
        self.shorts = _normalize_refs(shorts or {})
        self.relation = relation
        overlap = set(self.independents) & set(self.dependents)
        if overlap:
            raise ConstraintError(
                f"constraint {name!r}: aliases {sorted(overlap)} appear in "
                f"both independent and dependent sets")

    # ------------------------------------------------------------------
    def _ref_applies(self, ref: Union[PropertyPath, SessionBinding],
                     cdo: ClassOfDesignObjects,
                     aliases: Mapping[str, str]) -> bool:
        """Whether a single reference is meaningful at ``cdo``.

        Path references apply when their pattern matches the CDO itself or
        one of its ancestors (the property is then visible from ``cdo``
        through inheritance).
        """
        if isinstance(ref, SessionBinding):
            if not ref.pattern:
                return True
            from repro.core.path import parse_pattern
            pattern = parse_path(f"x@{ref.pattern}").expand_aliases(aliases).pattern \
                if aliases else parse_pattern(ref.pattern)
            return any(pattern.matches(node.qualified_name)
                       for node in cdo.path_from_root())
        path = ref.expand_aliases(aliases) if aliases else ref
        return any(path.pattern.matches(node.qualified_name)
                   for node in cdo.path_from_root())

    def applies_to(self, cdo: ClassOfDesignObjects,
                   aliases: Optional[Mapping[str, str]] = None) -> bool:
        """A CC governs an exploration positioned at ``cdo`` when *all* of
        its references are meaningful there.

        CC2 references ``Radix@*.Hardware.Montgomery``; it therefore only
        applies once the exploration has specialized down to the
        Montgomery class — exactly the paper's narrowing behaviour.
        """
        aliases = aliases or {}
        refs = list(self.independents.values()) + list(self.dependents.values())
        refs += list(self.shorts.values())
        return all(self._ref_applies(ref, cdo, aliases) for ref in refs)

    def dependent_property_names(self) -> List[str]:
        """Names of properties whose decision is gated by this CC."""
        out = []
        for ref in self.dependents.values():
            if isinstance(ref, PropertyPath):
                out.append(ref.property_name)
        return out

    def independent_property_names(self) -> List[str]:
        out = []
        for ref in self.independents.values():
            if isinstance(ref, PropertyPath):
                out.append(ref.property_name)
        return out

    def describe(self) -> str:
        def render(refs: Mapping[str, Union[PropertyPath, SessionBinding]]) -> str:
            parts = []
            for alias, ref in refs.items():
                if isinstance(ref, SessionBinding):
                    parts.append(f"{alias}=<session: {ref.doc}>")
                else:
                    parts.append(f"{alias}={ref.render()}")
            return "{" + ", ".join(parts) + "}"

        lines = [f"CC {self.name}: {self.doc}",
                 f"  Indep_Set={render(self.independents)}",
                 f"  Dep_Set={render(self.dependents)}"]
        if self.shorts:
            lines.append(f"  Shorts={render(self.shorts)}")
        lines.append(f"  Relation: {self.relation.description}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConsistencyConstraint {self.name}>"


class ConstraintSet:
    """An ordered, name-indexed collection of CCs belonging to a layer."""

    def __init__(self, constraints: Sequence[ConsistencyConstraint] = ()):
        self._constraints: Dict[str, ConsistencyConstraint] = {}
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: ConsistencyConstraint) -> ConsistencyConstraint:
        """Register a constraint; names are unique within the set.

        A rejected duplicate leaves the set untouched — the originally
        registered constraint stays authoritative.
        """
        _sanitizer.check_write(self, "ConstraintSet.add")
        existing = self._constraints.get(constraint.name)
        if existing is not None:
            raise ConstraintError(
                f"duplicate constraint name {constraint.name!r} (already "
                f"registered: {existing.doc!r}); constraint names are "
                f"unique within a layer")
        self._constraints[constraint.name] = constraint
        return constraint

    def get(self, name: str) -> ConsistencyConstraint:
        try:
            return self._constraints[name]
        except KeyError:
            raise ConstraintError(f"no constraint named {name!r}") from None

    def __iter__(self) -> Iterator[ConsistencyConstraint]:
        """Iterate in a stable order (sorted by constraint name).

        Insertion order would track layer-construction order, which is
        fine for a single build but makes verifier fixpoints and lint
        output depend on how a layer happened to be assembled; sorting
        by the unique name keeps every downstream report deterministic.
        """
        return iter(sorted(self._constraints.values(), key=lambda c: c.name))

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, name: str) -> bool:
        return name in self._constraints

    def applicable(self, cdo: ClassOfDesignObjects,
                   aliases: Optional[Mapping[str, str]] = None
                   ) -> List[ConsistencyConstraint]:
        return [c for c in self if c.applies_to(cdo, aliases)]

    def gating(self, property_name: str, cdo: ClassOfDesignObjects,
               aliases: Optional[Mapping[str, str]] = None
               ) -> List[ConsistencyConstraint]:
        """Constraints that list ``property_name`` in their dependent set
        and apply at ``cdo`` — these order the issue after their
        independents."""
        return [c for c in self.applicable(cdo, aliases)
                if property_name in c.dependent_property_names()]
