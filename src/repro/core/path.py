"""Property paths — the layer's addressing notation (paper Figs 11/13).

Consistency constraints and decompositions in the paper reference
properties with expressions such as::

    Radix@*.Hardware.Montgomery
    EOL@Operator
    oper(+,line:2)@BD@*.Hardware.Montgomery

The general shape is ``selector@...@property@class-pattern``:

* the rightmost element is a **class pattern** — dotted CDO names where
  ``*`` is a wild card matching one or more path segments;
* the element left of it is the **property name** to resolve on matching
  classes (inherited properties count, as in the paper);
* any further elements are **selectors** — functions applied to the
  resolved property's value, e.g. ``oper(+,line:2)`` picks the ``+``
  operator instance on line 2 of a behavioral description.  Selector
  implementations are pluggable (see :class:`SelectorRegistry`); the
  behaviour package registers ``oper``.

Class patterns may use layer-registered aliases (``OMM`` for
``Operator.Modular.Multiplier``) as single segments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.cdo import QNAME_SEP, ClassOfDesignObjects
from repro.core.properties import Property
from repro.errors import PathError, PropertyError

WILDCARD = "*"

_SELECTOR_RE = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)\((?P<args>.*)\)$")
_SEGMENT_RE = re.compile(r"^[A-Za-z_0-9][A-Za-z_0-9\- ]*$")


@dataclass(frozen=True)
class Selector:
    """A parsed selector element, e.g. ``oper(+,line:2)``."""

    name: str
    args: Tuple[str, ...]

    def render(self) -> str:
        return f"{self.name}({','.join(self.args)})"


@dataclass(frozen=True)
class ClassPattern:
    """A dotted CDO pattern with ``*`` wild cards.

    Matching is anchored at both ends against the CDO's qualified name:
    ``*.Hardware.Montgomery`` matches any class whose path ends in
    ``Hardware.Montgomery``; a pattern without wild cards must equal the
    qualified name (after alias expansion).  A single trailing ``*``
    (``Operator.*``) matches every strict descendant of ``Operator``.
    """

    segments: Tuple[str, ...]

    def matches(self, qualified_name: str) -> bool:
        parts = tuple(qualified_name.split(QNAME_SEP))
        return _match_segments(self.segments, parts)

    def render(self) -> str:
        return QNAME_SEP.join(self.segments)


def _match_segments(pattern: Tuple[str, ...], parts: Tuple[str, ...]) -> bool:
    """Greedy-free recursive matcher; ``*`` consumes one or more parts."""
    if not pattern:
        return not parts
    head, rest = pattern[0], pattern[1:]
    if head == WILDCARD:
        # '*' must consume at least one segment.
        return any(_match_segments(rest, parts[i:])
                   for i in range(1, len(parts) + 1))
    if not parts or parts[0] != head:
        return False
    return _match_segments(rest, parts[1:])


@dataclass(frozen=True)
class PropertyPath:
    """A fully parsed property path."""

    selectors: Tuple[Selector, ...]
    property_name: str
    pattern: ClassPattern

    def render(self) -> str:
        left = [s.render() for s in self.selectors]
        left.append(self.property_name)
        left.append(self.pattern.render())
        return "@".join(left)

    # ------------------------------------------------------------------
    def resolve_classes(self, cdos: Sequence[ClassOfDesignObjects],
                        aliases: Optional[Mapping[str, str]] = None,
                        ) -> List[ClassOfDesignObjects]:
        """CDOs (from the given universe) whose qualified name matches."""
        pattern = self.expand_aliases(aliases).pattern if aliases else self.pattern
        return [cdo for cdo in cdos if pattern.matches(cdo.qualified_name)]

    def resolve(self, cdos: Sequence[ClassOfDesignObjects],
                aliases: Optional[Mapping[str, str]] = None,
                ) -> List[Tuple[ClassOfDesignObjects, Property]]:
        """Resolve to ``(cdo, property)`` pairs.

        A matching CDO contributes a pair when the property is visible on
        it (declared there or inherited).  It is an error if *no*
        matching class exposes the property — that means the path is
        stale with respect to the layer, and the paper's layers are
        supposed to stay self-consistent.
        """
        matched = self.resolve_classes(cdos, aliases)
        if not matched:
            raise PathError(f"{self.render()}: no class matches pattern "
                            f"{self.pattern.render()!r}")
        out: List[Tuple[ClassOfDesignObjects, Property]] = []
        for cdo in matched:
            try:
                out.append((cdo, cdo.find_property(self.property_name)))
            except PropertyError:
                continue
        if not out:
            raise PathError(
                f"{self.render()}: property {self.property_name!r} not "
                f"visible on any of {[c.qualified_name for c in matched]}")
        return out

    def expand_aliases(self, aliases: Mapping[str, str]) -> "PropertyPath":
        """Return a copy with alias segments replaced by their expansion."""
        segments: List[str] = []
        for seg in self.pattern.segments:
            if seg in aliases:
                segments.extend(aliases[seg].split(QNAME_SEP))
            else:
                segments.append(seg)
        return PropertyPath(self.selectors, self.property_name,
                            ClassPattern(tuple(segments)))


def _split_top_level(text: str, sep: str) -> List[str]:
    """Split on ``sep`` outside parentheses (selector args contain none of
    the path separators, but commas inside ``oper(+,line:2)`` must not
    split the selector)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise PathError(f"unbalanced ')' in {text!r}")
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise PathError(f"unbalanced '(' in {text!r}")
    parts.append("".join(current))
    return parts


def parse_pattern(text: str) -> ClassPattern:
    """Parse a dotted class pattern (no ``@``)."""
    text = text.strip()
    if not text:
        raise PathError("empty class pattern")
    segments = tuple(seg.strip() for seg in text.split(QNAME_SEP))
    for seg in segments:
        if seg == WILDCARD:
            continue
        if not _SEGMENT_RE.match(seg):
            raise PathError(f"bad pattern segment {seg!r} in {text!r}")
    return ClassPattern(segments)


def parse_path(text: str) -> PropertyPath:
    """Parse a full property path.

    >>> p = parse_path("Radix@*.Hardware.Montgomery")
    >>> p.property_name, p.pattern.segments
    ('Radix', ('*', 'Hardware', 'Montgomery'))
    >>> parse_path("oper(+,line:2)@BD@*.Hardware").selectors[0].name
    'oper'
    """
    elements = [e.strip() for e in _split_top_level(text.strip(), "@")]
    if len(elements) < 2:
        raise PathError(
            f"{text!r}: a property path needs at least 'property@pattern'")
    pattern = parse_pattern(elements[-1])
    property_name = elements[-2]
    if not property_name or _SELECTOR_RE.match(property_name):
        raise PathError(f"{text!r}: {property_name!r} is not a property name")
    selectors: List[Selector] = []
    # Selectors written left-to-right apply outermost-first; store in
    # application order (innermost first).
    for element in reversed(elements[:-2]):
        match = _SELECTOR_RE.match(element)
        if not match:
            raise PathError(f"{text!r}: {element!r} is not a selector call")
        raw_args = match.group("args").strip()
        args = tuple(a.strip() for a in raw_args.split(",")) if raw_args else ()
        selectors.append(Selector(match.group("name"), args))
    return PropertyPath(tuple(selectors), property_name, pattern)


#: A selector implementation maps (value, selector args) -> value.
SelectorFn = Callable[[object, Tuple[str, ...]], object]


class SelectorRegistry:
    """Pluggable selector implementations, keyed by selector name.

    The core layer ships none; :mod:`repro.behavior.operators` registers
    ``oper`` for behavioral descriptions.  Layers may add their own.
    """

    def __init__(self) -> None:
        self._selectors: Dict[str, SelectorFn] = {}

    def register(self, name: str, fn: SelectorFn) -> None:
        if name in self._selectors:
            raise PathError(f"selector {name!r} already registered")
        self._selectors[name] = fn

    def apply(self, selector: Selector, value: object) -> object:
        try:
            fn = self._selectors[selector.name]
        except KeyError:
            raise PathError(f"unknown selector {selector.name!r}") from None
        return fn(value, selector.args)

    def apply_chain(self, selectors: Sequence[Selector], value: object) -> object:
        for selector in selectors:
            value = self.apply(selector, value)
        return value

    def names(self) -> Sequence[str]:
        return tuple(sorted(self._selectors))
