"""Properties — the meta-data discretizing the design space (paper Sec 4).

The paper classifies the properties attached to a class of design objects
(CDO) into three kinds:

* **behavioral and structural descriptions** — define the structure or
  intended behaviour of design objects at some level of abstraction;
* **design requirements** — target performance/area/power plus other
  "problem givens" (word size, precision, whether the modulo is odd, ...);
* **design decisions** (*design issues*) — the areas of design decision
  that discriminate alternative implementations, e.g. "implementation
  style" or "radix".

A *generalized* design issue partitions the design space: each of its
options spawns a child CDO.  A CDO may carry at most one generalized
issue (enforced in :mod:`repro.core.cdo`).

Properties are schema objects: values entered by the designer during
conceptual design live in an :class:`~repro.core.session.ExplorationSession`,
and values characterizing a concrete reusable core live in a
:class:`~repro.core.designobject.DesignObject`.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.core.values import AnyDomain, Context, Domain, EnumDomain
from repro.errors import DomainError, PropertyError


class PropertyKind(enum.Enum):
    """The paper's three-way classification, plus the decomposition
    construct of Sec 5.1.6 which references other CDOs."""

    DESCRIPTION = "description"
    REQUIREMENT = "requirement"
    DESIGN_ISSUE = "design_issue"
    DECOMPOSITION = "decomposition"


class RequirementSense(enum.Enum):
    """How a designer-entered requirement value constrains candidates.

    ``MAX``: the entered value is an upper bound (``Latency <= 8 us``);
    ``MIN``: a lower bound; ``EXACT``: must match; ``AT_LEAST_SUPPORT``:
    a capability a core must cover (e.g. a core supporting EOL 1024 also
    satisfies a 768-bit requirement).
    """

    MAX = "max"
    MIN = "min"
    EXACT = "exact"
    AT_LEAST_SUPPORT = "at_least_support"


_NAME_FORBIDDEN = set("@*.{}()，, \t\n")


def _check_name(name: str) -> str:
    if not name:
        raise PropertyError("property name must be non-empty")
    bad = set(name) & _NAME_FORBIDDEN
    if bad:
        raise PropertyError(
            f"property name {name!r} contains reserved characters {sorted(bad)!r}")
    return name


class Property:
    """Base class for all property schemata.

    Parameters
    ----------
    name:
        Identifier used in property paths (``Radix@*.Hardware``); must be
        free of path meta-characters.
    domain:
        The legal set of values (the paper's ``SetOfValues``).
    doc:
        Self-documentation string; the paper stresses that layers must be
        self-documented, so an empty doc is rejected.
    """

    kind: PropertyKind = PropertyKind.DESCRIPTION

    def __init__(self, name: str, domain: Optional[Domain] = None, doc: str = ""):
        self.name = _check_name(name)
        self.domain = domain if domain is not None else AnyDomain()
        if not doc:
            raise PropertyError(f"property {name!r} needs a documentation string")
        self.doc = doc

    def validate(self, value: object, context: Optional[Context] = None) -> object:
        """Validate a candidate value against the domain."""
        try:
            return self.domain.validate(value, context)
        except DomainError as exc:
            raise DomainError(f"property {self.name!r}: {exc}") from exc

    def describe(self) -> str:
        return f"{self.name}: {self.domain.describe()} -- {self.doc}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Requirement(Property):
    """A design requirement / problem given (paper Fig 8).

    ``sense`` states how an entered value filters reusable designs, and
    ``unit`` documents the expected physical unit.
    """

    kind = PropertyKind.REQUIREMENT

    def __init__(self, name: str, domain: Domain, doc: str,
                 sense: RequirementSense = RequirementSense.EXACT,
                 unit: str = ""):
        super().__init__(name, domain, doc)
        self.sense = sense
        self.unit = unit

    def satisfied_by(self, core_value: object, required: object) -> bool:
        """Whether a core exposing ``core_value`` meets the designer's
        entered value ``required``.

        Cores that do not document the property at all are handled by the
        pruning policy, not here.
        """
        if self.sense is RequirementSense.EXACT:
            return core_value == required
        if not isinstance(core_value, (int, float)) or isinstance(core_value, bool):
            return core_value == required
        if not isinstance(required, (int, float)) or isinstance(required, bool):
            return core_value == required
        if self.sense is RequirementSense.MAX:
            return core_value <= required
        if self.sense is RequirementSense.MIN:
            return core_value >= required
        # AT_LEAST_SUPPORT: core capability must cover the requirement.
        return core_value >= required

    def describe(self) -> str:
        op = {RequirementSense.MAX: "<=", RequirementSense.MIN: ">=",
              RequirementSense.EXACT: "=",
              RequirementSense.AT_LEAST_SUPPORT: "supports"}[self.sense]
        unit = f" [{self.unit}]" if self.unit else ""
        return f"{self.name} {op} value in {self.domain.describe()}{unit} -- {self.doc}"


class DesignIssue(Property):
    """An area of design decision (paper Fig 11).

    ``generalized=True`` marks the issue as partitioning the design space
    (Sec 2.2): committing to one of its options specializes the current
    CDO into the corresponding child class.  Generalized issues must have
    finite enumerable domains, since each option names a child CDO.
    """

    kind = PropertyKind.DESIGN_ISSUE

    def __init__(self, name: str, domain: Domain, doc: str,
                 generalized: bool = False, default: object = None):
        super().__init__(name, domain, doc)
        self.generalized = generalized
        if generalized and not domain.is_finite():
            raise PropertyError(
                f"generalized design issue {name!r} needs a finite option set")
        if default is not None:
            self.validate(default)
        self.default = default

    def options(self, context: Optional[Context] = None,
                limit: int = 32) -> Sequence[object]:
        """Enumerate (a sample of) the issue's options."""
        if isinstance(self.domain, EnumDomain):
            return self.domain.options
        return self.domain.sample(limit, context)

    def describe(self) -> str:
        tag = "Generalized " if self.generalized else ""
        dflt = f" Default: {self.default}" if self.default is not None else ""
        return f"{tag}Design Issue {self.name}: {self.domain.describe()}{dflt} -- {self.doc}"


class BehavioralDescription(Property):
    """A behavioral/structural description property (paper Sec 5.1.6).

    ``description`` is typically a :class:`repro.behavior.ir.Behavior`;
    the core layer treats it opaquely — estimation tools and operator
    selectors in property paths interpret it.
    """

    kind = PropertyKind.DESCRIPTION

    def __init__(self, name: str, doc: str, description: object = None,
                 level: str = "algorithm"):
        super().__init__(name, AnyDomain(), doc)
        self.description = description
        self.level = level

    def describe(self) -> str:
        return f"Behavioral description {self.name} ({self.level} level) -- {self.doc}"


class BehavioralDecomposition(Property):
    """The decomposition construct of DI7 (paper Fig 11).

    Declares that the operators appearing in a behavioral description are
    themselves designed by exploring other CDOs in the layer.  ``source``
    is a property path string locating the behavioral description(s), and
    ``restrict_pattern`` optionally forces the operator CDOs considered
    (the paper forces ``Hardware`` realizations with ``BD@*.Hardware``).
    """

    kind = PropertyKind.DECOMPOSITION

    def __init__(self, name: str, doc: str, source: str,
                 restrict_pattern: str = ""):
        super().__init__(name, AnyDomain(), doc)
        self.source = source
        self.restrict_pattern = restrict_pattern

    def describe(self) -> str:
        restrict = f" restricted to {self.restrict_pattern}" if self.restrict_pattern else ""
        return f"Behavioral decomposition {self.name} over {self.source}{restrict} -- {self.doc}"
