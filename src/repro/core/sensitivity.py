"""Requirement sensitivity analysis.

Early exploration's central question is "how hard is my spec?" — which
requirement values open or close the design space.  This module sweeps
a requirement across candidate values and records, for each value, how
many cores survive and what the best achievable figures of merit are.
The resulting curve shows the designer exactly where the spec's cliffs
are (e.g. the latency bound below which only hardware — then only
radix-4 hardware — then nothing — survives).

The sweep never mutates the caller's session: each point runs on a
disposable clone built from the same layer, with the same decisions
re-applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.session import ExplorationSession
from repro.errors import ReproError


@dataclass
class SweepPoint:
    """One value of the swept requirement."""

    value: object
    candidates: int
    #: metric -> best (minimum) value among survivors documenting it.
    best: Dict[str, float] = field(default_factory=dict)
    #: The decision sequence failed at this value (e.g. a consistency
    #: constraint rejected it); candidates is then 0.
    infeasible: bool = False


@dataclass
class SensitivityReport:
    """The full sweep of one requirement."""

    requirement: str
    points: List[SweepPoint]

    def cliff_values(self) -> List[object]:
        """Values at which the candidate count changes — the spec's
        cliffs, sorted in sweep order."""
        cliffs: List[object] = []
        previous: Optional[int] = None
        for point in self.points:
            if previous is not None and point.candidates != previous:
                cliffs.append(point.value)
            previous = point.candidates
        return cliffs

    def feasible_range(self) -> Tuple[Optional[object], Optional[object]]:
        """First and last swept values with at least one candidate."""
        feasible = [p.value for p in self.points if p.candidates > 0]
        if not feasible:
            return None, None
        return feasible[0], feasible[-1]

    def describe(self) -> str:
        lines = [f"sensitivity of {self.requirement!r}:"]
        for point in self.points:
            best = ", ".join(f"{k}={v:g}"
                             for k, v in sorted(point.best.items()))
            note = " (infeasible)" if point.infeasible else ""
            lines.append(f"  {point.value!r}: {point.candidates} "
                         f"candidates{note}"
                         + (f" [best {best}]" if best else ""))
        return "\n".join(lines)


def sweep_requirement(session: ExplorationSession, requirement: str,
                      values: Sequence[object],
                      metrics: Optional[Sequence[str]] = None
                      ) -> SensitivityReport:
    """Sweep ``requirement`` over ``values`` around the given session.

    The session's other requirement values and its decision sequence
    are replayed for every point; the session itself is untouched.
    """
    if not values:
        raise ReproError("sweep needs at least one value")
    metrics = tuple(metrics if metrics is not None
                    else session.merit_metrics)
    base_requirements = dict(session.requirement_values)
    base_requirements.pop(requirement, None)
    decisions = _decision_sequence(session)
    points: List[SweepPoint] = []
    for value in values:
        clone = ExplorationSession(session.layer, _session_start(session),
                                   merit_metrics=metrics,
                                   missing_policy=session.missing_policy)
        try:
            clone.set_requirement(requirement, value)
            for name, bound in base_requirements.items():
                clone.set_requirement(name, bound)
            for name, option in decisions:
                clone.decide(name, option)
        except ReproError:
            points.append(SweepPoint(value, 0, infeasible=True))
            continue
        survivors = clone.candidates()
        best: Dict[str, float] = {}
        for metric in metrics:
            documented = [core.merit(metric) for core in survivors
                          if core.has_merit(metric)]
            if documented:
                best[metric] = min(documented)
        points.append(SweepPoint(value, len(survivors), best))
    return SensitivityReport(requirement, points)


def _session_start(session: ExplorationSession) -> str:
    """The CDO the session's replay must start from: strip the
    generalized descents off the current position."""
    node = session.current_cdo
    while node.parent is not None and \
            node.parent.generalized_issue is not None and \
            node.parent.generalized_issue.name in session.decisions:
        node = node.parent
    return node.qualified_name


def _decision_sequence(session: ExplorationSession
                       ) -> List[Tuple[str, object]]:
    """The session's decisions in replayable order (from the log, so
    generalized descents come before the issues they expose)."""
    order: List[Tuple[str, object]] = []
    decided = session.decisions
    for entry in session.log:
        if entry.startswith("decision "):
            name = entry.split(" ", 2)[1]
            if name in decided and all(name != n for n, _v in order):
                order.append((name, decided[name]))
    # Decisions re-applied after undo may be missing from the trimmed
    # log; append any leftovers in dictionary order.
    for name, option in decided.items():
        if all(name != n for n, _v in order):
            order.append((name, option))
    return order
