"""The evaluation space (paper Figs 2(c), 3(b), 9, 12).

Cores map to points in an *evaluation space* spanned by figures of merit
(area, delay, power, ...).  The paper uses this space to argue where
generalization boundaries should fall (clusters with similar achievable
ranges) and to compare algorithm families (Montgomery vs Brickell in
Fig 9).  This module provides the point-set abstraction, Pareto-dominance
analysis and range queries; clustering lives in
:mod:`repro.core.clustering`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.designobject import DesignObject
from repro.errors import ReproError


@dataclass(frozen=True)
class EvaluationPoint:
    """One design's coordinates in the evaluation space."""

    name: str
    coords: Tuple[float, ...]
    design: Optional[DesignObject] = None

    def distance_to(self, other: "EvaluationPoint",
                    scales: Optional[Sequence[float]] = None) -> float:
        """Euclidean distance, optionally per-axis normalized."""
        if len(self.coords) != len(other.coords):
            raise ReproError("points live in different evaluation spaces")
        total = 0.0
        for i, (a, b) in enumerate(zip(self.coords, other.coords)):
            scale = scales[i] if scales is not None else 1.0
            if scale == 0:
                scale = 1.0
            total += ((a - b) / scale) ** 2
        return math.sqrt(total)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good as ``b`` on every axis and
    strictly better on at least one (all axes minimized)."""
    if len(a) != len(b):
        raise ReproError("cannot compare points of different dimension")
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


class EvaluationSpace:
    """A point set over named metrics, all treated as minimized.

    Metrics whose larger values are better (e.g. throughput) should be
    negated by the caller before constructing the space; the layer's
    conventional figures of merit (area, latency, power) are all
    cost-like.
    """

    def __init__(self, metrics: Sequence[str],
                 points: Iterable[EvaluationPoint] = ()):
        if not metrics:
            raise ReproError("an evaluation space needs at least one metric")
        self.metrics = tuple(metrics)
        self._points: List[EvaluationPoint] = []
        for point in points:
            self.add(point)

    @classmethod
    def from_designs(cls, designs: Iterable[DesignObject],
                     metrics: Sequence[str],
                     skip_missing: bool = False) -> "EvaluationSpace":
        """Build the space from design objects' figures of merit.

        With ``skip_missing`` designs lacking a metric are silently left
        out (the paper's libraries may hold partially characterized
        cores); otherwise they raise.
        """
        space = cls(metrics)
        for design in designs:
            if skip_missing and not all(design.has_merit(m) for m in metrics):
                continue
            space.add(EvaluationPoint(design.name,
                                      design.evaluation_point(metrics),
                                      design))
        return space

    def add(self, point: EvaluationPoint) -> None:
        if len(point.coords) != len(self.metrics):
            raise ReproError(
                f"point {point.name!r} has {len(point.coords)} coords; "
                f"space has metrics {self.metrics}")
        self._points.append(point)

    @property
    def points(self) -> Sequence[EvaluationPoint]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[EvaluationPoint]:
        return iter(self._points)

    def point(self, name: str) -> EvaluationPoint:
        for p in self._points:
            if p.name == name:
                return p
        raise ReproError(f"no point named {name!r} in evaluation space")

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def ranges(self) -> Dict[str, Tuple[float, float]]:
        """Per-metric (min, max) over all points."""
        out: Dict[str, Tuple[float, float]] = {}
        for i, metric in enumerate(self.metrics):
            values = [p.coords[i] for p in self._points]
            if values:
                out[metric] = (min(values), max(values))
        return out

    def scales(self) -> Tuple[float, ...]:
        """Per-axis spans used for normalized distances (0 span -> 1)."""
        spans = []
        for i in range(len(self.metrics)):
            values = [p.coords[i] for p in self._points]
            span = (max(values) - min(values)) if values else 1.0
            spans.append(span if span > 0 else 1.0)
        return tuple(spans)

    def pareto_frontier(self) -> List[EvaluationPoint]:
        """Non-dominated points, sorted by the first metric.

        Ties (identical coordinates) all survive: they are genuinely
        interchangeable alternatives the designer should see.
        """
        frontier = [p for p in self._points
                    if not any(dominates(q.coords, p.coords)
                               for q in self._points if q is not p)]
        return sorted(frontier, key=lambda p: p.coords)

    def dominated_points(self) -> List[EvaluationPoint]:
        frontier_names = {p.name for p in self.pareto_frontier()}
        return [p for p in self._points if p.name not in frontier_names]

    def best(self, metric: str) -> EvaluationPoint:
        """The point minimizing one metric."""
        index = self._metric_index(metric)
        if not self._points:
            raise ReproError("evaluation space is empty")
        return min(self._points, key=lambda p: p.coords[index])

    def within(self, bounds: Mapping[str, Tuple[Optional[float], Optional[float]]]
               ) -> List[EvaluationPoint]:
        """Points inside per-metric [lo, hi] windows (None = unbounded)."""
        indexed = {self._metric_index(m): (lo, hi)
                   for m, (lo, hi) in bounds.items()}
        out = []
        for point in self._points:
            ok = True
            for i, (lo, hi) in indexed.items():
                if lo is not None and point.coords[i] < lo:
                    ok = False
                    break
                if hi is not None and point.coords[i] > hi:
                    ok = False
                    break
            if ok:
                out.append(point)
        return out

    def _metric_index(self, metric: str) -> int:
        try:
            return self.metrics.index(metric)
        except ValueError:
            raise ReproError(
                f"metric {metric!r} not in space {self.metrics}") from None

    def describe(self) -> str:
        header = " / ".join(self.metrics)
        lines = [f"Evaluation space ({header}), {len(self)} points:"]
        frontier = {p.name for p in self.pareto_frontier()}
        for point in sorted(self._points, key=lambda p: p.coords):
            star = " *" if point.name in frontier else ""
            coords = ", ".join(f"{c:g}" for c in point.coords)
            lines.append(f"  {point.name}: ({coords}){star}")
        lines.append("  (* = Pareto-optimal)")
        return "\n".join(lines)
