"""Value domains — the ``SetOfValues`` of the paper's properties.

Every property in the design space layer (Fig 8 / Fig 11 of the paper)
declares its set of legal values.  Some sets are finite enumerations
(``{Hardware, Software}``), some are symbolic infinite sets
(``{2^i | i in Z+}``), and some depend on the value of *another* property
(``{i in Z+ | EOL mod i == 0}`` — the "Number of Slices" issue depends on
the Effective Operand Length requirement).  This module models all three.

Domains are schema objects: they validate candidate values and, where
possible, enumerate representative members for front-ends and tests.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import DomainError

#: Type of the context passed to dependent domains: resolved property
#: values by property name (e.g. ``{"EffectiveOperandLength": 768}``).
Context = Mapping[str, object]


class Domain:
    """Abstract set of legal values for a property."""

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        """Return whether ``value`` is a member of the domain.

        ``context`` supplies values of other properties for dependent
        domains; independent domains ignore it.
        """
        raise NotImplementedError

    def validate(self, value: object, context: Optional[Context] = None) -> object:
        """Return ``value`` if legal, raise :class:`DomainError` otherwise."""
        if not self.contains(value, context):
            raise DomainError(f"{value!r} is not in {self.describe()}")
        return value

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        """Return up to ``limit`` representative members (may be empty for
        domains that cannot be enumerated)."""
        return ()

    def describe(self) -> str:
        """Human-readable rendition of the set, close to the paper's
        ``SetOfValues`` notation."""
        raise NotImplementedError

    def is_finite(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class EnumDomain(Domain):
    """A finite, ordered set of named options.

    The order is meaningful: front-ends present options in declaration
    order, and the first option is the conventional position for the
    paper's ``Default`` annotation (the default itself is stored on the
    design issue, not here).
    """

    def __init__(self, options: Iterable[object]):
        self.options = tuple(options)
        if not self.options:
            raise DomainError("an enumerated domain needs at least one option")
        if len(set(self.options)) != len(self.options):
            raise DomainError(f"duplicate options in {self.options!r}")

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        return value in self.options

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        return self.options[:limit]

    def describe(self) -> str:
        return "{" + ", ".join(str(o) for o in self.options) + "}"

    def is_finite(self) -> bool:
        return True

    def __iter__(self) -> Iterator[object]:
        return iter(self.options)

    def __len__(self) -> int:
        return len(self.options)


class BoolDomain(EnumDomain):
    """Convenience two-option domain for yes/no design issues."""

    def __init__(self) -> None:
        super().__init__((True, False))

    def describe(self) -> str:
        return "{True, False}"


class RealRange(Domain):
    """An interval of the reals, optionally half-open.

    ``RealRange(lo=0)`` is the paper's ``R+`` (used for latency
    requirements); bounds are inclusive when given.
    """

    def __init__(self, lo: Optional[float] = None, hi: Optional[float] = None,
                 unit: str = ""):
        if lo is not None and hi is not None and lo > hi:
            raise DomainError(f"empty real range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.unit = unit

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        lo = self.lo if self.lo is not None else 0.0
        hi = self.hi if self.hi is not None else lo + 100.0
        if limit == 1:
            return (lo,)
        step = (hi - lo) / (limit - 1)
        return tuple(lo + i * step for i in range(limit))

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        suffix = f" {self.unit}" if self.unit else ""
        return f"[{lo}, {hi}]{suffix}"


class IntRange(Domain):
    """An interval of the integers (inclusive bounds when given)."""

    def __init__(self, lo: Optional[int] = None, hi: Optional[int] = None):
        if lo is not None and hi is not None and lo > hi:
            raise DomainError(f"empty integer range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        lo = self.lo if self.lo is not None else 0
        hi = self.hi if self.hi is not None else lo + limit - 1
        return tuple(range(lo, min(hi, lo + limit - 1) + 1))

    def is_finite(self) -> bool:
        return self.lo is not None and self.hi is not None

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"{{i in Z | {lo} <= i <= {hi}}}"


class PowerOfTwoDomain(Domain):
    """``{2^i | i in Z+}``, optionally bounded above.

    The bound may be a number or the *name of a property* whose resolved
    value caps the set — the paper's Radix issue is
    ``{2^i | i in Z+, 2^i <= val(EOL)}``.
    """

    def __init__(self, max_value: Optional[object] = None, min_value: int = 2):
        if min_value < 1 or (min_value & (min_value - 1)) != 0:
            raise DomainError(f"min_value must be a power of two, got {min_value}")
        self.max_value = max_value
        self.min_value = min_value

    def _resolved_max(self, context: Optional[Context]) -> Optional[int]:
        if self.max_value is None:
            return None
        if isinstance(self.max_value, str):
            if context is None or self.max_value not in context:
                return None  # unbound: treat as unlimited until resolved
            bound = context[self.max_value]
        else:
            bound = self.max_value
        if not isinstance(bound, (int, float)):
            raise DomainError(f"bound {self.max_value!r} resolved to non-number {bound!r}")
        return int(bound)

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        if isinstance(value, bool) or not isinstance(value, int) or value < self.min_value:
            return False
        if value & (value - 1):
            return False
        bound = self._resolved_max(context)
        return bound is None or value <= bound

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        bound = self._resolved_max(context)
        out = []
        v = self.min_value
        while len(out) < limit and (bound is None or v <= bound):
            out.append(v)
            v *= 2
        return tuple(out)

    def describe(self) -> str:
        cap = ""
        if self.max_value is not None:
            cap = f", 2^i <= val({self.max_value})" if isinstance(self.max_value, str) \
                else f", 2^i <= {self.max_value}"
        return f"{{2^i | i in Z+, 2^i >= {self.min_value}{cap}}}"


class DivisorDomain(Domain):
    """``{i in Z+ | N mod i == 0}`` where ``N`` is a number or the name of
    a property (the paper's "Number of Slices" issue divides the EOL)."""

    def __init__(self, of: object):
        self.of = of

    def _resolved(self, context: Optional[Context]) -> Optional[int]:
        if isinstance(self.of, str):
            if context is None or self.of not in context:
                return None
            value = context[self.of]
        else:
            value = self.of
        if not isinstance(value, (int, float)) or int(value) <= 0:
            raise DomainError(f"divisor base {self.of!r} resolved to {value!r}")
        return int(value)

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            return False
        base = self._resolved(context)
        return base is None or base % value == 0

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        base = self._resolved(context)
        if base is None:
            return tuple(range(1, limit + 1))
        divisors = sorted(
            d for i in range(1, int(math.isqrt(base)) + 1) if base % i == 0
            for d in {i, base // i}
        )
        return tuple(divisors[:limit])

    def describe(self) -> str:
        base = f"val({self.of})" if isinstance(self.of, str) else str(self.of)
        return f"{{i in Z+ | {base} mod i == 0}}"


class PredicateDomain(Domain):
    """Escape hatch: membership decided by an arbitrary predicate.

    Used by domain layers for sets the stock domains cannot express; the
    mandatory ``description`` keeps the layer self-documenting.
    """

    def __init__(self, predicate: Callable[[object, Optional[Context]], bool],
                 description: str,
                 samples: Sequence[object] = ()):
        self.predicate = predicate
        self.description = description
        self.samples = tuple(samples)

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        return bool(self.predicate(value, context))

    def sample(self, limit: int = 8, context: Optional[Context] = None) -> Sequence[object]:
        return self.samples[:limit]

    def describe(self) -> str:
        return self.description


class AnyDomain(Domain):
    """The universal set — used for free-form properties such as attached
    behavioral descriptions, where structure is enforced elsewhere."""

    def contains(self, value: object, context: Optional[Context] = None) -> bool:
        return True

    def describe(self) -> str:
        return "{any}"
