"""Terminal outcomes and the Pareto frontier of an exploration run.

An automated search walks the decision tree; every terminal position
yields :class:`Outcome` records — one per surviving core, or one
estimated outcome when the surviving set is empty and the problem
carries an estimator (the paper's conceptual-design path).  The
:class:`ParetoFrontier` collects them and keeps only the non-dominated
set, plus weighted-sum and lexicographic rankings for multi-criteria
comparison (DAVOS-style MCDM).

All metrics are treated as minimized, matching
:mod:`repro.core.evaluation`; outcomes missing a metric sit at ``inf``
on that axis, so a fully characterized outcome can dominate them but
they are never silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.evaluation import dominates

#: Core name used for outcomes produced by an estimator instead of a
#: surviving reusable core.
ESTIMATED = "(estimated)"


def _render_value(value: object) -> str:
    return repr(value) if isinstance(value, str) else str(value)


@dataclass(frozen=True)
class Outcome:
    """One terminal point of the search: a decision path and its merits.

    ``decisions`` is the full (name, option) assignment sorted by issue
    name — the canonical form, independent of the order a strategy
    happened to address the issues in.  ``merits`` carries only the
    problem's metrics the core documents.
    """

    decisions: Tuple[Tuple[str, object], ...]
    cdo: str
    core: str
    merits: Tuple[Tuple[str, float], ...]
    estimated: bool = False

    @property
    def path_key(self) -> str:
        """Canonical rendering of the decision assignment."""
        return ", ".join(f"{name}={_render_value(option)}"
                         for name, option in self.decisions)

    @property
    def key(self) -> Tuple[str, str]:
        """Dedup key: the same core reached via the same assignment is
        one outcome no matter how many times a strategy revisits it."""
        return (self.path_key, self.core)

    def merit_map(self) -> Dict[str, float]:
        return dict(self.merits)

    def coords(self, metrics: Sequence[str]) -> Tuple[float, ...]:
        """Coordinates in the (minimized) evaluation space; metrics this
        outcome does not document sit at ``inf`` (worst)."""
        merits = dict(self.merits)
        return tuple(merits.get(m, math.inf) for m in metrics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "decisions": [[name, option] for name, option in self.decisions],
            "cdo": self.cdo,
            "core": self.core,
            "merits": {name: value for name, value in self.merits},
            "estimated": self.estimated,
        }

    def describe(self) -> str:
        merits = " ".join(f"{name}={value:g}" for name, value in self.merits)
        tag = " [estimated]" if self.estimated else ""
        return f"{self.core}{tag}: {merits or 'no merits'} <- {self.path_key}"


def weighted_sum(coords: Sequence[float],
                 weights: Optional[Sequence[float]] = None) -> float:
    """Scalarize a coordinate vector; ``inf`` coordinates stay ``inf``."""
    total = 0.0
    for i, value in enumerate(coords):
        weight = weights[i] if weights is not None else 1.0
        if math.isinf(value):
            return math.inf
        total += weight * value
    return total


class ParetoFrontier:
    """The non-dominated set of outcomes over fixed metrics.

    Ties are kept: an outcome is rejected only when an existing member
    *strictly* dominates it (better somewhere, no worse anywhere), and
    members are evicted only when the newcomer strictly dominates them.
    That matches :meth:`EvaluationSpace.pareto_frontier` and is what
    makes branch-and-bound provably return the same frontier as
    exhaustive enumeration.
    """

    def __init__(self, metrics: Sequence[str]):
        if not metrics:
            raise ValueError("a frontier needs at least one metric")
        self.metrics: Tuple[str, ...] = tuple(metrics)
        self._members: Dict[Tuple[str, str], Tuple[Tuple[float, ...], Outcome]] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, outcome: Outcome) -> bool:
        return outcome.key in self._members

    def add(self, outcome: Outcome) -> bool:
        """Offer an outcome; True when it joined the frontier.

        Duplicates (same decision assignment and core) are ignored;
        dominated newcomers are rejected; members the newcomer strictly
        dominates are evicted.
        """
        key = outcome.key
        if key in self._members:
            return False
        coords = outcome.coords(self.metrics)
        for existing_coords, _ in self._members.values():
            if dominates(existing_coords, coords):
                return False
        evict = [k for k, (existing_coords, _) in self._members.items()
                 if dominates(coords, existing_coords)]
        for k in evict:
            del self._members[k]
        self._members[key] = (coords, outcome)
        return True

    def dominates_bound(self, bound: Sequence[float]) -> bool:
        """True when some member strictly dominates an *optimistic* bound
        vector — every terminal outcome under the bounded region is then
        strictly dominated too, so the region can be pruned without
        losing any frontier member (ties included)."""
        bound = tuple(bound)
        return any(dominates(coords, bound)
                   for coords, _ in self._members.values())

    def outcomes(self) -> List[Outcome]:
        """Members in a canonical, insertion-order-independent order:
        sorted by coordinates, then core name, then decision path."""
        return [outcome for _, outcome in sorted(
            self._members.values(),
            key=lambda pair: (pair[0], pair[1].core, pair[1].path_key))]

    # ------------------------------------------------------------------
    # rankings
    # ------------------------------------------------------------------
    def weighted_ranking(self, weights: Optional[Mapping[str, float]] = None
                         ) -> List[Tuple[float, Outcome]]:
        """Members scored by a weighted sum (ascending; all minimized).

        ``weights`` maps metric name to weight; missing metrics weigh 1.
        """
        vector = tuple((weights or {}).get(m, 1.0) for m in self.metrics)
        scored = [(weighted_sum(coords, vector), coords, outcome)
                  for coords, outcome in self._members.values()]
        scored.sort(key=lambda item: (item[0], item[1], item[2].core,
                                      item[2].path_key))
        return [(score, outcome) for score, _, outcome in scored]

    def lexicographic_ranking(self, order: Optional[Sequence[str]] = None
                              ) -> List[Outcome]:
        """Members ordered by one metric, ties broken by the next.

        ``order`` lists metric names by priority (default: the
        frontier's metric order).  Unknown metrics raise ``KeyError``.
        """
        priorities = tuple(order) if order is not None else self.metrics
        for metric in priorities:
            if metric not in self.metrics:
                raise KeyError(f"unknown metric {metric!r}; frontier tracks "
                               f"{list(self.metrics)}")
        def sort_key(pair: Tuple[Tuple[float, ...], Outcome]):
            merits = pair[1].merit_map()
            return (tuple(merits.get(m, math.inf) for m in priorities),
                    pair[1].core, pair[1].path_key)
        return [outcome for _, outcome in
                sorted(self._members.values(), key=sort_key)]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "metrics": list(self.metrics),
            "outcomes": [o.to_dict() for o in self.outcomes()],
        }

    def digest(self) -> str:
        """Order-independent fingerprint of the frontier: identical
        digests mean byte-identical frontiers (used by the determinism
        tests and the parallel-merge benchmark)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, default=repr)
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]

    def render_text(self, limit: int = 10) -> str:
        lines = [f"Pareto frontier over ({', '.join(self.metrics)}): "
                 f"{len(self)} non-dominated outcome(s)"]
        members = self.outcomes()
        for outcome in members[:limit]:
            lines.append(f"  {outcome.describe()}")
        if len(members) > limit:
            lines.append(f"  ... {len(members) - limit} more")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ParetoFrontier {len(self)} over {self.metrics}>"
