"""Parallel branch evaluation for the exploration engine.

The unit of distribution is a :class:`BranchTask` — one problem/strategy
pair, usually one branch of the root issue's fan-out.  A
:class:`WorkerPool` runs tasks through a persistent ``concurrent.futures``
executor and returns :class:`BranchResult` records **in task order**, so
the engine's merge is deterministic no matter how workers were scheduled.

Three things make the pool fast where the naive one-branch-per-submit,
one-pool-per-call evaluator was not:

* **Snapshot hydration** — process workers hydrate their layer **once**,
  at pool startup, from a compact :class:`~repro.core.serialize.LayerSnapshot`
  shipped through the pool initializer, instead of re-running
  ``layer_factory`` per dispatch.  Hydrated layers live in a small
  per-process LRU (:data:`LAYER_CACHE_SIZE`) keyed by snapshot digest or
  factory identity, so repeated explorations and multiple problems reuse
  them without leaking.
* **Persistence** — the pool (and its warmed workers) outlives
  individual ``explore()`` calls: create it once, pass it to the engine
  (or use ``keep_pool=True``), and close it explicitly or via the
  context-manager protocol.
* **Chunked work stealing** — tasks are batched into chunks of
  ``len(tasks) / (jobs * CHUNK_OVERSUBSCRIBE)`` and submitted
  individually; idle workers pull the next pending chunk from the
  executor's shared queue (stealing work from slower peers) instead of
  being handed a fixed ``executor.map`` slice.  Results are re-sorted by
  task index before merging, so frontier digests stay byte-identical to
  serial runs.

A fourth backend, ``async``, drives every branch as an awaitable over a
shared thread executor inside one event loop — useful for
estimator-bound problems whose estimation tools block on I/O or external
processes, where the overlap is real even under the GIL.

Tracing crosses the pool boundary without sharing a recorder: when the
problem carries a sampled :class:`~repro.core.obs.context.TraceContext`,
each branch evaluation fills a bounded, plain-data
:class:`~repro.core.obs.context.WorkerTraceBuffer` (a ``worker_task``
span wrapping hydration and strategy events) that travels back inside
:class:`BranchResult` for the engine to merge deterministically.
Workers still prefer an *untraced* layer (hydrated or factory-built) so
the shared-nothing fast path stays allocation-free, but the thread and
async backends may share the problem's own traced layer directly —
:class:`~repro.core.obs.recorder.TraceRecorder` is thread-safe — at the
cost of nondeterministic interleaving of session events in the parent
trace.
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.core.explore.engine import ExplorationStats, SearchContext
from repro.core.explore.outcome import Outcome, ParetoFrontier
from repro.core.explore.problem import ExplorationProblem
from repro.core.explore.strategies import make_strategy
from repro.core.layer import DesignSpaceLayer
from repro.core.obs import events as ev
from repro.core.obs.context import TraceContext, WorkerTraceBuffer
from repro.core.serialize import LayerSnapshot
from repro.errors import ConstraintViolation, ExplorationError, SessionError

BACKENDS = ("thread", "process", "async")

#: Per-process worker layer cache capacity.  Small on purpose: a worker
#: serves one or two problems at a time, and a 50k-core layer is tens of
#: megabytes — unbounded growth across distinct factories/snapshots was
#: a leak.
LAYER_CACHE_SIZE = 4

#: Oversubscription factor K for chunk sizing: tasks are batched into
#: roughly ``jobs * K`` chunks, so the fastest worker can steal up to
#: K-1 extra chunks from a slow peer before the dispatch drains.
CHUNK_OVERSUBSCRIBE = 4


@dataclass
class BranchTask:
    """One unit of parallel work: search a problem with a strategy."""

    problem: ExplorationProblem
    strategy: str
    options: Dict[str, object] = field(default_factory=dict)
    label: str = ""


@dataclass
class BranchResult:
    """What one worker brought back (picklable: plain data only)."""

    label: str
    outcomes: List[Outcome] = field(default_factory=list)
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    error: Optional[str] = None
    #: Seconds this task spent building/hydrating a worker layer
    #: (0.0 on a cache hit).
    hydrate_s: float = 0.0
    #: The task hydrated/built a fresh layer into the worker cache.
    hydrated: bool = False
    #: The task rebuilt the layer *without* caching it — the unkeyable
    #: factory fallback the pool surfaces as a warning (see
    #: ``dsl_worker_layer_rebuilds_total``).
    rebuilt: bool = False
    #: Drained :class:`~repro.core.obs.context.WorkerTraceBuffer`
    #: records (plain dicts) when the branch was sampled for tracing.
    trace: List[Dict[str, object]] = field(default_factory=list)
    #: Events the buffer dropped once full (see
    #: ``dsl_trace_events_dropped_total``).
    trace_dropped: int = 0


def _factory_key(factory: Callable[[], DesignSpaceLayer]
                 ) -> Optional[Tuple[object, ...]]:
    """Hashable identity of a layer factory, for the per-process cache.

    ``functools.partial`` objects hash by instance, which differs in
    every worker dispatch; key them structurally instead.  Unkeyable
    factories (unhashable args, callables without a qualified name)
    return None — the worker then rebuilds per task, which is correct,
    just slow; the pool counts those rebuilds and the engine emits a
    ``worker_layer_rebuild`` warning event so the regression is visible
    rather than silent.
    """
    try:
        if isinstance(factory, functools.partial):
            key: Tuple[object, ...] = (
                "partial", factory.func.__module__,
                factory.func.__qualname__, factory.args,
                tuple(sorted(factory.keywords.items())))
        else:
            key = ("callable", factory.__module__, factory.__qualname__)
        hash(key)  # unhashable args poison the cache lookup
        return key
    except (AttributeError, TypeError):
        return None


class _LayerCache:
    """A tiny per-process LRU of worker layers.

    Keys are snapshot digests (``("snapshot", digest)``) or structural
    factory identities (:func:`_factory_key`).  Bounded so a worker that
    serves many distinct problems does not accumulate every layer it
    ever built (each can be tens of MB).
    """

    def __init__(self, capacity: int = LAYER_CACHE_SIZE):
        if capacity < 1:
            raise ValueError("layer cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[object, ...], DesignSpaceLayer]" \
            = OrderedDict()
        # The thread backend shares this cache across workers; the LRU
        # bookkeeping (get's move_to_end, put's eviction loop) is a
        # multi-step read-modify-write that corrupts the OrderedDict or
        # raises KeyError when interleaved, so all three ops take the
        # lock.
        self._lock = threading.Lock()

    def get(self, key: Tuple[object, ...]) -> Optional[DesignSpaceLayer]:
        with self._lock:
            layer = self._entries.get(key)
            if layer is not None:
                self._entries.move_to_end(key)
            return layer

    def put(self, key: Tuple[object, ...], layer: DesignSpaceLayer) -> None:
        with self._lock:
            self._entries[key] = layer
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class _HydrationLog:
    """Initializer hydration timings, drained by the first chunk each
    worker returns (the parent cannot observe initializer work).

    The old module-level list was appended and drained with a bare
    ``len``/``sum``/``del`` sequence — under the thread backend two
    workers draining at once could double-count or drop timings.  The
    log owns a lock so :meth:`drain` is a single atomic take-all.
    """

    def __init__(self) -> None:
        self._timings: List[float] = []
        self._lock = threading.Lock()

    def record(self, elapsed: float) -> None:
        with self._lock:
            self._timings.append(elapsed)

    def drain(self) -> Tuple[int, float]:
        """Atomically take (count, total seconds) and reset."""
        with self._lock:
            count = len(self._timings)
            total = sum(self._timings)
            del self._timings[:]
            return count, total


class _InitTraceLog:
    """Plain-data trace records written by the pool initializer and
    drained by the first *sampled* task each worker runs.

    The initializer has no buffer to write into (it runs before any
    task exists) and the parent cannot observe it, so startup hydration
    spans park here until a traced branch carries them home.  Shared by
    every worker thread under the thread backend, hence the lock.
    """

    def __init__(self) -> None:
        self._rows: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def record(self, row: Dict[str, object]) -> None:
        with self._lock:
            self._rows.append(row)

    def drain(self) -> List[Dict[str, object]]:
        """Atomically take every parked record."""
        with self._lock:
            rows = list(self._rows)
            del self._rows[:]
            return rows


#: Per-process cache of worker layers: a worker process serves many
#: tasks and must not rebuild a 50k-core layer for each.
_LAYER_CACHE = _LayerCache()

#: Hydration timings recorded by the pool initializer.
_INIT_HYDRATIONS = _HydrationLog()

#: Initializer hydration *trace records*, parked for the next sampled
#: branch buffer (tracing counterpart of :data:`_INIT_HYDRATIONS`).
_INIT_TRACE = _InitTraceLog()


def _snapshot_key(snapshot: LayerSnapshot) -> Tuple[object, ...]:
    return ("snapshot", snapshot.digest)


def _hydrate_snapshot(snapshot: LayerSnapshot) -> Tuple[DesignSpaceLayer,
                                                        float, bool]:
    """Resolve a snapshot through the cache; returns (layer, secs, fresh)."""
    key = _snapshot_key(snapshot)
    layer = _LAYER_CACHE.get(key)
    if layer is not None:
        return layer, 0.0, False
    t0 = time.perf_counter()
    layer = snapshot.hydrate()
    elapsed = time.perf_counter() - t0
    # Cached layers are shared by every task this worker runs (and, on
    # the thread backend, by all workers): seal before publishing so the
    # sanitizer turns any in-worker mutation into a hard error.
    _sanitizer.seal(layer)
    _LAYER_CACHE.put(key, layer)
    return layer, elapsed, True


def _pool_initializer(snapshot: Optional[LayerSnapshot],
                      trace: Optional[TraceContext] = None) -> None:
    """Runs once per worker process: hydrate the pool's snapshot so no
    task ever pays the layer build.

    When the pool was started under a sampled :class:`TraceContext`,
    the hydration is also parked as a trace record in
    :data:`_INIT_TRACE` so the merged trace attributes process startup
    cost to the run that caused it.
    """
    if snapshot is not None:
        _, elapsed, fresh = _hydrate_snapshot(snapshot)
        if fresh:
            _INIT_HYDRATIONS.record(elapsed)
            if trace is not None and trace.sampled:
                _INIT_TRACE.record({
                    "kind": ev.WORKER_HYDRATE,
                    "duration_s": elapsed,
                    "payload": {"source": "snapshot", "init": True,
                                "worker": str(os.getpid())},
                })


def _worker_layer(problem: ExplorationProblem
                  ) -> Tuple[DesignSpaceLayer, float, bool, bool]:
    """Resolve the layer a worker should search.

    Returns ``(layer, hydrate_s, hydrated, rebuilt)``.  Preference
    order: the problem's own untraced layer (thread backend sharing);
    the problem's snapshot through the per-process cache; the factory
    through the cache; the factory per task when it cannot be keyed;
    finally the problem's own *traced* layer — the recorder is
    thread-safe, so thread/async workers may emit into it directly,
    though session events then interleave nondeterministically (prefer
    a snapshot when trace byte-stability matters).
    """
    if problem.layer is not None and not problem.layer.observer.enabled:
        return problem.layer, 0.0, False, False
    if problem.snapshot is not None:
        layer, elapsed, fresh = _hydrate_snapshot(problem.snapshot)
        return layer, elapsed, fresh, False
    factory = problem.layer_factory
    if factory is None:
        if problem.layer is not None:
            return problem.layer, 0.0, False, False
        raise ExplorationError(
            "worker has neither a layer, a snapshot, nor a layer_factory")
    key = _factory_key(factory)
    if key is None:
        t0 = time.perf_counter()
        layer = factory()
        return layer, time.perf_counter() - t0, False, True
    layer = _LAYER_CACHE.get(key)
    if layer is None:
        t0 = time.perf_counter()
        layer = factory()
        elapsed = time.perf_counter() - t0
        # Same sharing contract as the snapshot path: once cached, the
        # factory-built layer belongs to every task, so it is sealed.
        _sanitizer.seal(layer)
        _LAYER_CACHE.put(key, layer)
        return layer, elapsed, True, False
    return layer, 0.0, False, False


def _search_branch(task: BranchTask,
                   buffer: Optional[WorkerTraceBuffer]) -> BranchResult:
    """The branch search proper; strategy events route to ``buffer``."""
    layer, hydrate_s, hydrated, rebuilt = _worker_layer(task.problem)
    if buffer is not None and (hydrated or rebuilt):
        buffer.emit_timed(
            ev.WORKER_REBUILD if rebuilt else ev.WORKER_HYDRATE,
            hydrate_s,
            source="snapshot" if task.problem.snapshot is not None
            else "factory",
            worker=f"{os.getpid()}:{threading.get_ident()}")
    problem = replace(task.problem, layer=layer, _built=None)
    strategy = make_strategy(task.strategy, **task.options)
    stats = ExplorationStats()
    try:
        session = problem.open_session(layer)
    except (ConstraintViolation, SessionError):
        # The branch prefix itself is infeasible: a pruned branch,
        # not an error.
        stats.prune("constraint")
        if buffer is not None:
            buffer.emit(ev.BRANCH_PRUNED, reason="constraint",
                        branch=task.label)
        return BranchResult(label=task.label, stats=stats,
                            hydrate_s=hydrate_s, hydrated=hydrated,
                            rebuilt=rebuilt)
    ctx = SearchContext(problem, session,
                        ParetoFrontier(problem.metrics), stats,
                        recorder=buffer)
    strategy.search(ctx)
    return BranchResult(label=task.label,
                        outcomes=ctx.frontier.outcomes(), stats=stats,
                        hydrate_s=hydrate_s, hydrated=hydrated,
                        rebuilt=rebuilt)


def evaluate_branch(task: BranchTask) -> BranchResult:
    """Search one branch; module-level so the process backend can
    pickle it by reference.

    When the problem carries a sampled
    :class:`~repro.core.obs.context.TraceContext`, the whole evaluation
    runs inside a ``worker_task`` span in a fresh
    :class:`~repro.core.obs.context.WorkerTraceBuffer`; the drained
    plain-data records travel back on ``BranchResult.trace`` for the
    engine's deterministic merge.
    """
    try:
        trace = task.problem.trace
        if trace is None or not trace.sampled:
            return _search_branch(task, None)
        buffer = WorkerTraceBuffer(trace)
        with buffer.span(ev.WORKER_TASK, branch=task.label,
                         task=trace.task_index,
                         worker=f"{os.getpid()}:{threading.get_ident()}"
                         ) as span:
            buffer.absorb_init(_INIT_TRACE.drain())
            result = _search_branch(task, buffer)
            span.note(outcomes=len(result.outcomes),
                      events=len(buffer.records), dropped=buffer.dropped)
        result.trace, result.trace_dropped = buffer.drain()
        return result
    except ExplorationError:
        raise
    except Exception as exc:  # pragma: no cover - worker diagnostics
        return BranchResult(label=task.label,
                            error=f"{type(exc).__name__}: {exc}")


@dataclass
class _ChunkResult:
    """One chunk's worth of results, plus worker accounting."""

    results: List[Tuple[int, BranchResult]]
    worker: str
    elapsed_s: float = 0.0
    #: Initializer hydrations this worker had not yet reported.
    init_hydrates: int = 0
    init_hydrate_s: float = 0.0


def evaluate_chunk(chunk: Sequence[Tuple[int, BranchTask]]) -> _ChunkResult:
    """Evaluate one chunk of indexed tasks sequentially in this worker."""
    t0 = time.perf_counter()
    results = [(index, evaluate_branch(task)) for index, task in chunk]
    init_hydrates, init_hydrate_s = _INIT_HYDRATIONS.drain()
    return _ChunkResult(
        results=results,
        worker=f"{os.getpid()}:{threading.get_ident()}",
        elapsed_s=time.perf_counter() - t0,
        init_hydrates=init_hydrates,
        init_hydrate_s=init_hydrate_s)


@dataclass
class DispatchStats:
    """Accounting for one ``map()`` dispatch (and, summed, a pool life)."""

    tasks: int = 0
    chunks: int = 0
    chunk_size: int = 0
    steals: int = 0
    hydrates: int = 0
    hydrate_s: float = 0.0
    rebuilds: int = 0
    #: Busy worker-seconds over (workers * dispatch wall time); 0 when
    #: not measured (serial/async dispatches).
    utilization: float = 0.0

    def absorb(self, other: "DispatchStats") -> None:
        self.tasks += other.tasks
        self.chunks += other.chunks
        self.chunk_size = other.chunk_size or self.chunk_size
        self.steals += other.steals
        self.hydrates += other.hydrates
        self.hydrate_s += other.hydrate_s
        self.rebuilds += other.rebuilds
        self.utilization = other.utilization or self.utilization

    def to_dict(self) -> Dict[str, object]:
        return {
            "tasks": self.tasks,
            "chunks": self.chunks,
            "chunk_size": self.chunk_size,
            "steals": self.steals,
            "hydrates": self.hydrates,
            "hydrate_ms": round(self.hydrate_s * 1e3, 3),
            "rebuilds": self.rebuilds,
            "utilization": round(self.utilization, 4),
        }


@dataclass
class PoolStats(DispatchStats):
    """Lifetime accounting of a :class:`WorkerPool`."""

    workers: int = 0
    backend: str = "thread"
    dispatches: int = 0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "workers": self.workers,
            "backend": self.backend,
            "dispatches": self.dispatches,
        }
        out.update(DispatchStats.to_dict(self))
        return out


def chunk_count(tasks: int, jobs: int, chunk_size: Optional[int] = None
                ) -> Tuple[int, int]:
    """(chunk size, number of chunks) for a dispatch.

    The default sizes chunks at ``tasks // (jobs * K)`` (at least 1), so
    a dispatch yields about ``jobs * K`` chunks: enough slack for idle
    workers to steal from slow peers, coarse enough that per-chunk
    submit/pickle overhead stays negligible.
    """
    if tasks <= 0:
        return 0, 0
    size = chunk_size if chunk_size is not None \
        else max(1, tasks // (max(1, jobs) * CHUNK_OVERSUBSCRIBE))
    if size < 1:
        raise ExplorationError(f"chunk size must be >= 1, got {size}")
    return size, -(-tasks // size)


class WorkerPool:
    """A persistent, snapshot-hydrated branch-evaluation pool.

    Unlike a per-call ``with ProcessPoolExecutor(...)`` block, a
    ``WorkerPool`` keeps its workers — and the layers they hydrated —
    alive across ``explore()`` calls, strategies, and problems.  Process
    workers hydrate the pool's snapshot exactly once, in the pool
    initializer, so no task ever pays the layer build.  Close the pool
    explicitly (:meth:`close`) or use it as a context manager::

        with WorkerPool(jobs=4, backend="process", snapshot=snap) as pool:
            explore(problem, jobs=4, backend="process", pool=pool)
            explore(problem, strategy="bnb", jobs=4, pool=pool)

    ``map()`` is order-preserving and deterministic: chunks complete in
    arbitrary order, results are re-sorted by task index.
    """

    def __init__(self, jobs: int = 1, backend: str = "thread",
                 snapshot: Optional[LayerSnapshot] = None,
                 chunk_size: Optional[int] = None,
                 trace: Optional[TraceContext] = None):
        if backend not in BACKENDS:
            raise ExplorationError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        if jobs < 1:
            raise ExplorationError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ExplorationError(
                f"chunk size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.backend = backend
        self.snapshot = snapshot
        self.chunk_size = chunk_size
        #: Base trace context shipped to the process-pool initializer so
        #: startup hydration lands in the merged trace.
        self.trace = trace
        self.stats = PoolStats(workers=jobs, backend=backend)
        self.last_dispatch = DispatchStats()
        self._executor: Optional[Executor] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        """True once worker processes/threads exist (first dispatch or
        :meth:`warm`)."""
        return self._executor is not None

    def warm(self) -> "WorkerPool":
        """Start the workers (and snapshot hydration) now instead of on
        the first dispatch — useful to keep hydration out of timed runs."""
        self._ensure_executor()
        return self

    def _ensure_executor(self) -> Executor:
        if self._closed:
            raise ExplorationError("worker pool is closed")
        if self._executor is None:
            if self.backend == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_pool_initializer,
                    initargs=(self.snapshot, self.trace))
            else:
                # thread and async backends share a thread executor.
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="dsl-worker")
        return self._executor

    def close(self) -> None:
        """Shut the workers down; idempotent.  Further dispatches raise."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def map(self, tasks: Sequence[BranchTask]) -> List[BranchResult]:
        """Evaluate every task; results come back in task order.

        A worker returning an error result raises here — a crashed
        branch must not be silently dropped from the frontier.
        """
        if self._closed:
            raise ExplorationError("worker pool is closed")
        tasks = list(tasks)
        dispatch = DispatchStats(tasks=len(tasks))
        started = time.perf_counter()
        if self.jobs == 1 or len(tasks) <= 1:
            results = [evaluate_branch(task) for task in tasks]
            self._absorb_results(dispatch, results)
        elif self.backend == "async":
            self._check_shippable(tasks)
            results = self._map_async(tasks)
            self._absorb_results(dispatch, results)
        else:
            self._check_shippable(tasks)
            results = self._map_chunked(tasks, dispatch, started)
        self.last_dispatch = dispatch
        self.stats.dispatches += 1
        self.stats.absorb(dispatch)
        for result in results:
            if result.error is not None:
                raise ExplorationError(
                    f"branch {result.label!r} failed: {result.error}")
        return results

    def _map_chunked(self, tasks: List[BranchTask],
                     dispatch: DispatchStats,
                     started: float) -> List[BranchResult]:
        size, n_chunks = chunk_count(len(tasks), self.jobs, self.chunk_size)
        indexed = list(enumerate(tasks))
        chunks = [indexed[i:i + size] for i in range(0, len(indexed), size)]
        executor = self._ensure_executor()
        # One future per chunk: the executor's shared queue IS the
        # work-stealing deque — a worker that drains its chunk pulls the
        # next pending one, however slow its peers are.
        futures = [executor.submit(evaluate_chunk, chunk)
                   for chunk in chunks]
        out: List[Optional[BranchResult]] = [None] * len(tasks)
        per_worker: Dict[str, int] = {}
        busy_s = 0.0
        for future in as_completed(futures):
            chunk_result = future.result()
            per_worker[chunk_result.worker] = \
                per_worker.get(chunk_result.worker, 0) + 1
            busy_s += chunk_result.elapsed_s
            dispatch.hydrates += chunk_result.init_hydrates
            dispatch.hydrate_s += chunk_result.init_hydrate_s
            for index, result in chunk_result.results:
                out[index] = result
        elapsed = time.perf_counter() - started
        results = [result for result in out if result is not None]
        # Deterministic merge: `out` is indexed by task position, so the
        # arbitrary completion order above cannot reorder outcomes.
        self._absorb_results(dispatch, results)
        dispatch.chunks = len(chunks)
        dispatch.chunk_size = size
        # A worker's first chunk is its fair share; every further chunk
        # it completed was stolen from the shared queue.
        dispatch.steals = sum(n - 1 for n in per_worker.values() if n > 1)
        if elapsed > 0 and self.jobs > 0:
            dispatch.utilization = min(
                1.0, busy_s / (elapsed * self.jobs))
        return results

    def _map_async(self, tasks: List[BranchTask]) -> List[BranchResult]:
        """Asyncio dispatch for estimator-bound problems.

        Every branch evaluation becomes an awaitable over the pool's
        thread executor; blocking estimation-tool calls (I/O, external
        processes) overlap while the event loop coordinates.  Task
        granularity stays at one branch — chunking would serialize the
        overlap this backend exists for.
        """
        executor = self._ensure_executor()

        async def drive() -> List[BranchResult]:
            loop = asyncio.get_running_loop()
            futures = [loop.run_in_executor(executor, evaluate_branch, task)
                       for task in tasks]
            return list(await asyncio.gather(*futures))

        return asyncio.run(drive())

    @staticmethod
    def _absorb_results(dispatch: DispatchStats,
                        results: Sequence[BranchResult]) -> None:
        for result in results:
            dispatch.hydrate_s += result.hydrate_s
            if result.hydrated:
                dispatch.hydrates += 1
            if result.rebuilt:
                dispatch.rebuilds += 1

    def _check_shippable(self, tasks: Sequence[BranchTask]) -> None:
        if self.backend != "process":
            return
        for task in tasks:
            if task.problem.layer_factory is None \
                    and task.problem.snapshot is None:
                raise ExplorationError(
                    "the process backend needs a picklable layer_factory "
                    "or a LayerSnapshot on the problem (a live "
                    "DesignSpaceLayer cannot cross process boundaries)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "warm" if self.started else "cold")
        return (f"<WorkerPool jobs={self.jobs} backend={self.backend} "
                f"{state} dispatches={self.stats.dispatches}>")


class BranchEvaluator:
    """Compatibility facade: an ephemeral pool per ``map()`` call.

    Prefer a :class:`WorkerPool` (persistent workers, snapshot
    hydration) — this class keeps the original one-shot surface for
    callers that evaluate a single batch and exposes the same stats.
    """

    def __init__(self, jobs: int = 1, backend: str = "thread",
                 snapshot: Optional[LayerSnapshot] = None,
                 chunk_size: Optional[int] = None):
        # Validate eagerly through the pool's constructor.
        pool = WorkerPool(jobs=jobs, backend=backend, snapshot=snapshot,
                          chunk_size=chunk_size)
        pool.close()
        self.jobs = jobs
        self.backend = backend
        self.snapshot = snapshot
        self.chunk_size = chunk_size
        self.last_dispatch = DispatchStats()

    def map(self, tasks: Sequence[BranchTask]) -> List[BranchResult]:
        with WorkerPool(jobs=self.jobs, backend=self.backend,
                        snapshot=self.snapshot,
                        chunk_size=self.chunk_size) as pool:
            results = pool.map(tasks)
            self.last_dispatch = pool.last_dispatch
            return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BranchEvaluator jobs={self.jobs} backend={self.backend}>"
