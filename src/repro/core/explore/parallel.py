"""Parallel branch evaluation for the exploration engine.

A :class:`BranchEvaluator` runs :class:`BranchTask` items through a
``concurrent.futures`` pool — thread- or process-backed — and returns
:class:`BranchResult` records **in task order** (``executor.map``), so
the engine's merge is deterministic no matter how workers were
scheduled.

Each worker evaluates one branch on its own session opened from the
task's problem (the problem's decision prefix selects the branch).
Workers never share a trace recorder — :class:`TraceRecorder` is
deliberately not thread-safe — so a branch runs untraced, on either a
layer built from the problem's ``layer_factory`` (cached per process,
and inherited copy-on-write under the ``fork`` start method when the
factory closes over a prebuilt module-global layer) or, for the thread
backend, the problem's own layer when its observer is disabled.
"""

from __future__ import annotations

import functools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.explore.engine import ExplorationStats, SearchContext
from repro.core.explore.outcome import Outcome, ParetoFrontier
from repro.core.explore.problem import ExplorationProblem
from repro.core.explore.strategies import make_strategy
from repro.core.layer import DesignSpaceLayer
from repro.errors import ConstraintViolation, ExplorationError, SessionError

BACKENDS = ("thread", "process")


@dataclass
class BranchTask:
    """One unit of parallel work: search a problem with a strategy."""

    problem: ExplorationProblem
    strategy: str
    options: Dict[str, object] = field(default_factory=dict)
    label: str = ""


@dataclass
class BranchResult:
    """What one worker brought back (picklable: plain data only)."""

    label: str
    outcomes: List[Outcome] = field(default_factory=list)
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    error: Optional[str] = None


def _factory_key(factory: Callable[[], DesignSpaceLayer]
                 ) -> Optional[Tuple[object, ...]]:
    """Hashable identity of a layer factory, for the per-process cache.

    ``functools.partial`` objects hash by instance, which differs in
    every worker dispatch; key them structurally instead.  Unkeyable
    factories (unhashable args) return None — the worker then rebuilds
    per task, which is correct, just slower.
    """
    try:
        if isinstance(factory, functools.partial):
            return ("partial", factory.func.__module__,
                    factory.func.__qualname__, factory.args,
                    tuple(sorted(factory.keywords.items())))
        return ("callable", factory.__module__, factory.__qualname__)
    except (AttributeError, TypeError):
        return None


#: Per-process cache of factory-built layers: a worker process serves
#: many tasks and must not rebuild a 50k-core layer for each.
_LAYER_CACHE: Dict[Tuple[object, ...], DesignSpaceLayer] = {}


def _worker_layer(problem: ExplorationProblem) -> DesignSpaceLayer:
    """Resolve the layer a worker should search.

    Prefers the problem's own layer when it carries one with tracing
    off (thread backend sharing an untraced layer); otherwise builds
    from the factory through the per-process cache.  A traced layer
    without a factory is refused: the recorder is not thread-safe.
    """
    if problem.layer is not None and not problem.layer.observer.enabled:
        return problem.layer
    factory = problem.layer_factory
    if factory is None:
        if problem.layer is not None:
            raise ExplorationError(
                "parallel exploration over a traced layer needs a "
                "layer_factory (workers cannot share a TraceRecorder); "
                "disable tracing or provide one")
        raise ExplorationError(
            "worker has neither a layer nor a layer_factory")
    key = _factory_key(factory)
    if key is None:
        return factory()
    layer = _LAYER_CACHE.get(key)
    if layer is None:
        layer = factory()
        _LAYER_CACHE[key] = layer
    return layer


def evaluate_branch(task: BranchTask) -> BranchResult:
    """Search one branch; module-level so the process backend can
    pickle it by reference."""
    try:
        layer = _worker_layer(task.problem)
        problem = replace(task.problem, layer=layer, _built=None)
        strategy = make_strategy(task.strategy, **task.options)
        stats = ExplorationStats()
        try:
            session = problem.open_session(layer)
        except (ConstraintViolation, SessionError):
            # The branch prefix itself is infeasible: a pruned branch,
            # not an error.
            stats.prune("constraint")
            return BranchResult(label=task.label, stats=stats)
        ctx = SearchContext(problem, session,
                            ParetoFrontier(problem.metrics), stats)
        strategy.search(ctx)
        return BranchResult(label=task.label,
                            outcomes=ctx.frontier.outcomes(), stats=stats)
    except ExplorationError:
        raise
    except Exception as exc:  # pragma: no cover - worker diagnostics
        return BranchResult(label=task.label,
                            error=f"{type(exc).__name__}: {exc}")


class BranchEvaluator:
    """A sized worker pool mapping tasks to results, order-preserving."""

    def __init__(self, jobs: int = 1, backend: str = "thread"):
        if backend not in BACKENDS:
            raise ExplorationError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        if jobs < 1:
            raise ExplorationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.backend = backend

    def map(self, tasks: Sequence[BranchTask]) -> List[BranchResult]:
        """Evaluate every task; results come back in task order.

        A worker returning an error result raises here — a crashed
        branch must not be silently dropped from the frontier.
        """
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            results = [evaluate_branch(task) for task in tasks]
        else:
            if self.backend == "process":
                self._check_picklable(tasks)
                pool_cls = ProcessPoolExecutor
            else:
                pool_cls = ThreadPoolExecutor
            workers = min(self.jobs, len(tasks))
            with pool_cls(max_workers=workers) as pool:
                results = list(pool.map(evaluate_branch, tasks))
        for result in results:
            if result.error is not None:
                raise ExplorationError(
                    f"branch {result.label!r} failed: {result.error}")
        return results

    @staticmethod
    def _check_picklable(tasks: Sequence[BranchTask]) -> None:
        for task in tasks:
            if task.problem.layer_factory is None:
                raise ExplorationError(
                    "the process backend needs a picklable layer_factory "
                    "on the problem (a live DesignSpaceLayer cannot cross "
                    "process boundaries)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BranchEvaluator jobs={self.jobs} backend={self.backend}>"
