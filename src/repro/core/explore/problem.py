"""Exploration problems: what to search, over which layer.

An :class:`ExplorationProblem` is the declarative input to the
:class:`~repro.core.explore.engine.ExplorationEngine`: a start position,
the metrics to optimize, requirement values from the system
specification, an optional pre-applied decision prefix, and either a
layer instance or a picklable ``layer_factory`` (the process-backed
worker pool ships the problem to workers, which rebuild — or inherit —
the layer there; a live :class:`DesignSpaceLayer` is not picklable).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.layer import DesignSpaceLayer
from repro.core.obs.context import TraceContext
from repro.core.pruning import MissingPolicy
from repro.core.serialize import LayerSnapshot
from repro.core.session import ExplorationSession
from repro.errors import ExplorationError

#: An estimator maps a terminal session (empty surviving set) to
#: estimated figures of merit — the paper's fallback of invoking early
#: estimation tools on the conceptual design when no reusable core fits.
Estimator = Callable[[ExplorationSession], Mapping[str, float]]

Bindings = Union[Mapping[str, object], Sequence[Tuple[str, object]]]


def _pairs(bindings: Bindings) -> Tuple[Tuple[str, object], ...]:
    if isinstance(bindings, Mapping):
        return tuple(bindings.items())
    return tuple((str(name), value) for name, value in bindings)


@dataclass
class ExplorationProblem:
    """Declarative description of one automated search.

    ``issues`` optionally fixes which design issues to address, in
    order; without it every addressable issue is explored.  ``decisions``
    is a prefix applied before the search starts (the parallel engine
    uses it to hand each worker one branch of the root issue).
    """

    start: str
    metrics: Tuple[str, ...] = ("area", "latency_ns")
    requirements: Bindings = ()
    decisions: Bindings = ()
    issues: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    option_limit: int = 16
    missing_policy: MissingPolicy = MissingPolicy.EXCLUDE
    layer: Optional[DesignSpaceLayer] = None
    layer_factory: Optional[Callable[[], DesignSpaceLayer]] = None
    #: Compact serialized layer capture (:meth:`DesignSpaceLayer.snapshot`)
    #: process workers hydrate **once** per pool instead of re-running
    #: ``layer_factory``; cheap to pickle (bytes + names).
    snapshot: Optional[LayerSnapshot] = None
    estimator: Optional[Estimator] = None
    #: Verifier pre-pruning mask: ``(cdo_qualified_name, issue, repr(option))``
    #: triples proved dead by :meth:`DesignSpaceLayer.verify` (see
    #: :meth:`~repro.core.verify.engine.VerifyAnalysis.prune_mask`).
    #: Strategies skip masked options without opening a branch; because
    #: the proofs are sound, the frontier is unchanged.
    dead_mask: Optional[frozenset] = None
    #: Distributed-tracing identity (picklable) the engine threads into
    #: every branch task and the pool initializer; workers whose
    #: deterministic sampling decision fires fill a
    #: :class:`~repro.core.obs.context.WorkerTraceBuffer` that the
    #: engine merges back into the parent trace.  Normally
    #: engine-assigned; set it explicitly to pin the trace id or the
    #: sampling rate.
    trace: Optional[TraceContext] = None
    _built: Optional[DesignSpaceLayer] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.metrics = tuple(self.metrics)
        self.requirements = _pairs(self.requirements)
        self.decisions = _pairs(self.decisions)
        if self.issues is not None:
            self.issues = tuple(self.issues)
        if self.dead_mask is not None:
            self.dead_mask = frozenset(self.dead_mask)

    # ------------------------------------------------------------------
    def resolve_layer(self) -> DesignSpaceLayer:
        """The layer to search: the given instance, or the factory's
        product (built once and cached on this problem)."""
        if self.layer is not None:
            return self.layer
        if self._built is not None:
            return self._built
        if self.layer_factory is not None:
            self._built = self.layer_factory()
        elif self.snapshot is not None:
            self._built = self.snapshot.hydrate()
        else:
            raise ExplorationError(
                "exploration problem needs a layer, a layer_factory, "
                "or a snapshot")
        return self._built

    def open_session(self, layer: Optional[DesignSpaceLayer] = None
                     ) -> ExplorationSession:
        """A fresh session at ``start`` with the problem's requirement
        values entered and the decision prefix applied.

        Raises whatever :meth:`ExplorationSession.decide` raises when the
        prefix is infeasible (``ConstraintViolation`` / ``SessionError``)
        — callers treat that as a pruned branch.
        """
        if layer is None:
            layer = self.resolve_layer()
        session = ExplorationSession(
            layer, self.start, merit_metrics=self.metrics,
            missing_policy=self.missing_policy)
        for name, value in self.requirements:
            session.set_requirement(name, value)
        for name, option in self.decisions:
            session.decide(name, option)
        return session

    def with_prefix(self, *extra: Tuple[str, object]) -> "ExplorationProblem":
        """A copy whose decision prefix is extended by ``extra`` — one
        branch of this problem, ready to dispatch to a worker."""
        return replace(self, decisions=self.decisions + tuple(extra),
                       _built=None)

    # ------------------------------------------------------------------
    # pickling (process-backed parallelism)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        if self.layer_factory is not None or self.snapshot is not None:
            # Workers rebuild (or inherit, under fork) the layer from the
            # factory or hydrate it from the snapshot; a live layer full
            # of closures does not pickle.
            state["layer"] = None
            state["_built"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
