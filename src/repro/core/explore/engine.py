"""The exploration engine: automated search over a design space layer.

The engine turns an :class:`~repro.core.explore.problem.ExplorationProblem`
into a driven :class:`~repro.core.session.ExplorationSession` walk.  A
:class:`SearchContext` mediates between strategy and session — opening
branches, deciding/undoing, collecting terminal outcomes into a
:class:`~repro.core.explore.outcome.ParetoFrontier`, and emitting obs
trace events (``explore_start``, ``branch_open``, ``branch_pruned``,
``frontier_update``) along the way.

With ``jobs > 1`` the engine fans the root issue's branches out to a
:class:`~repro.core.explore.parallel.WorkerPool`; each worker searches
its branch on its own session and the results are merged in dispatch
order, so the frontier is deterministic and independent of worker
scheduling.  Strategies whose ``parallel_mode`` is ``"islands"`` (the
evolutionary one) parallelize as ``jobs`` independent populations seeded
``seed .. seed+jobs-1`` instead.  Pass a pre-built pool — or set
``keep_pool=True`` — to reuse warmed workers and their hydrated layers
across ``run()`` calls; otherwise the engine spins up an ephemeral pool
per run and closes it afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.explore.outcome import (
    ESTIMATED,
    Outcome,
    ParetoFrontier,
)
from repro.core.explore.problem import ExplorationProblem
from repro.core.explore.strategies import (
    SearchStrategy,
    make_strategy,
)
from repro.core.layer import DesignSpaceLayer
from repro.core.obs import events as _ev
from repro.core.obs.context import TraceContext
from repro.core.obs.events import TraceEvent
from repro.core.properties import DesignIssue
from repro.core.pruning import merit_bounds
from repro.core.session import ExplorationSession, OptionInfo
from repro.errors import (
    ConstraintViolation,
    ExplorationError,
    PropertyError,
    SessionError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.explore.parallel import WorkerPool

#: Checkpoint tag marking the context's root position (problem prefix
#: applied, nothing decided by the strategy yet).
ROOT_TAG = "__explore_root__"


@dataclass
class ExplorationStats:
    """Work accounting for one search (mergeable across workers)."""

    #: Branches considered (one per issue option looked at).
    opened: int = 0
    #: Branches cut without descending, by reason
    #: (``eliminated`` / ``empty`` / ``constraint`` / ``bound`` /
    #: ``beam`` / ``proved-dead``).
    pruned: Dict[str, int] = field(default_factory=dict)
    #: Successful decide() descents.
    expanded: int = 0
    #: Terminal positions reached.
    terminals: int = 0
    #: Outcomes offered to the frontier (before dominance filtering).
    outcomes: int = 0
    #: Estimator / genome evaluations.
    evaluations: int = 0

    @property
    def pruned_total(self) -> int:
        return sum(self.pruned.values())

    def prune(self, reason: str) -> None:
        self.pruned[reason] = self.pruned.get(reason, 0) + 1

    def merge(self, other: "ExplorationStats") -> None:
        self.opened += other.opened
        for reason, count in other.pruned.items():
            self.pruned[reason] = self.pruned.get(reason, 0) + count
        self.expanded += other.expanded
        self.terminals += other.terminals
        self.outcomes += other.outcomes
        self.evaluations += other.evaluations

    def to_dict(self) -> Dict[str, object]:
        return {
            "opened": self.opened,
            "pruned": dict(sorted(self.pruned.items())),
            "expanded": self.expanded,
            "terminals": self.terminals,
            "outcomes": self.outcomes,
            "evaluations": self.evaluations,
        }

    def describe(self) -> str:
        pruned = ", ".join(f"{reason}={count}" for reason, count
                           in sorted(self.pruned.items())) or "none"
        return (f"opened={self.opened} expanded={self.expanded} "
                f"pruned[{pruned}] terminals={self.terminals} "
                f"outcomes={self.outcomes} evaluations={self.evaluations}")


class SearchContext:
    """What a strategy sees: one session plus frontier, stats and trace.

    The context checkpoints its root position; :meth:`goto` restores it
    and replays a decision path, so restart-style strategies (beam,
    evolutionary) and recursive ones (exhaustive, branch-and-bound)
    share the same facade.
    """

    def __init__(self, problem: ExplorationProblem,
                 session: ExplorationSession,
                 frontier: Optional[ParetoFrontier] = None,
                 stats: Optional[ExplorationStats] = None,
                 recorder: Optional[object] = None):
        self.problem = problem
        self.session = session
        self.metrics: Tuple[str, ...] = tuple(problem.metrics)
        self.frontier = frontier if frontier is not None \
            else ParetoFrontier(self.metrics)
        self.stats = stats if stats is not None else ExplorationStats()
        #: Recorder override for strategy events.  Pool workers pass a
        #: :class:`~repro.core.obs.context.WorkerTraceBuffer` here: the
        #: worker's hydrated layer is untraced (and shared/sealed), but
        #: the branch's own search events still need somewhere to go.
        self._recorder = recorder
        session.checkpoint(ROOT_TAG)

    @property
    def _obs(self):
        if self._recorder is not None:
            return self._recorder
        return self.session.layer.observer

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def next_issue(self, depth: int = 0) -> Optional[DesignIssue]:
        """The issue to address next, or None at a terminal position.

        Honors ``problem.issues`` (ordered subset) when given, otherwise
        takes the first addressable issue; ``problem.max_depth`` bounds
        the path length.
        """
        problem = self.problem
        if problem.max_depth is not None and depth >= problem.max_depth:
            return None
        addressable = self.session.addressable_issues()
        if problem.issues:
            decided = self.session.decisions
            by_name = {issue.name: issue for issue in addressable}
            for name in problem.issues:
                if name in decided:
                    continue
                if name in by_name:
                    return by_name[name]
            return None
        return addressable[0] if addressable else None

    def options(self, issue: DesignIssue) -> List[OptionInfo]:
        return self.session.available_options(
            issue.name, limit=self.problem.option_limit)

    def bound(self, info: OptionInfo) -> Tuple[float, ...]:
        """Optimistic per-metric bound vector of one option's region."""
        return merit_bounds(info.ranges, self.metrics)

    def masked(self, issue: DesignIssue, info: OptionInfo) -> bool:
        """True when the problem's verifier dead mask proves this option
        cannot contribute an outcome at the current position.

        The mask (:meth:`VerifyAnalysis.prune_mask`) holds
        ``(cdo, issue, repr(option))`` triples whose subtree was proved
        outcome-free by abstract interpretation; skipping them cannot
        change the frontier.  With an estimator configured the proofs no
        longer cover estimated outcomes, so the mask is ignored.
        """
        mask = self.problem.dead_mask
        if not mask or self.problem.estimator is not None:
            return False
        return (self.session.current_cdo.qualified_name, issue.name,
                repr(info.option)) in mask

    def decide(self, issue: DesignIssue, option: object) -> bool:
        """Commit one decision; False when constraints reject it (the
        session is left unchanged in that case)."""
        name = issue.name if isinstance(issue, DesignIssue) else str(issue)
        try:
            self.session.decide(name, option)
        except (ConstraintViolation, SessionError):
            return False
        self.stats.expanded += 1
        return True

    def undo(self) -> None:
        self.session.undo()

    def goto(self, path: Sequence[Tuple[str, object]]) -> bool:
        """Return to the root checkpoint and replay a decision path."""
        self.session.restore(ROOT_TAG)
        for name, option in path:
            try:
                self.session.decide(name, option)
            except (ConstraintViolation, SessionError):
                return False
        return True

    # ------------------------------------------------------------------
    # accounting / tracing
    # ------------------------------------------------------------------
    def branch_open(self, issue: DesignIssue, info: OptionInfo,
                    anchor: bool = False) -> Optional[TraceEvent]:
        """Record one opened branch.

        ``anchor=True`` (parallel fan-out only) emits the event through
        :meth:`TraceRecorder.emit_anchor
        <repro.core.obs.recorder.TraceRecorder.emit_anchor>` so it owns
        a span id the engine can reparent the branch's absorbed worker
        trace under.  Returns the emitted event when tracing is on.
        """
        self.stats.opened += 1
        obs = self._obs
        if obs.enabled:
            emit = obs.emit_anchor if anchor else obs.emit
            return emit(_ev.BRANCH_OPEN, issue=issue.name,
                        option=info.option,
                        candidates=info.candidate_count)
        return None

    def branch_pruned(self, issue: DesignIssue, info: OptionInfo,
                      reason: str) -> None:
        self.stats.prune(reason)
        obs = self._obs
        if obs.enabled:
            obs.emit(_ev.BRANCH_PRUNED, issue=issue.name,
                     option=info.option, reason=reason)

    def prune_path(self, path: Sequence[Tuple[str, object]],
                   reason: str) -> None:
        """Record the cut of an already-opened branch (beam overflow)."""
        self.stats.prune(reason)
        obs = self._obs
        if obs.enabled:
            name, option = path[-1]
            obs.emit(_ev.BRANCH_PRUNED, issue=name, option=option,
                     reason=reason)

    # ------------------------------------------------------------------
    # terminals
    # ------------------------------------------------------------------
    def terminal(self) -> List[Outcome]:
        """Collect the current position's outcomes into the frontier.

        One outcome per surviving core; when the surviving set is empty
        and the problem has an estimator, one estimated outcome (the
        paper's conceptual-design fallback).  Returns the outcomes that
        joined the frontier.
        """
        session = self.session
        self.stats.terminals += 1
        decisions = tuple(sorted(session.decisions.items(),
                                 key=lambda item: item[0]))
        cdo = session.current_cdo.qualified_name
        added: List[Outcome] = []
        report = session.prune_report()
        if report.survivors:
            for core in report.survivors:
                merits = tuple((m, float(core.merit(m)))
                               for m in self.metrics if core.has_merit(m))
                outcome = Outcome(decisions, cdo, core.name, merits)
                self.stats.outcomes += 1
                if self.frontier.add(outcome):
                    added.append(outcome)
        elif self.problem.estimator is not None:
            self.stats.evaluations += 1
            estimates = dict(self.problem.estimator(session))
            merits = tuple((m, float(estimates[m]))
                           for m in self.metrics if m in estimates)
            outcome = Outcome(decisions, cdo, ESTIMATED, merits,
                              estimated=True)
            self.stats.outcomes += 1
            if self.frontier.add(outcome):
                added.append(outcome)
        obs = self._obs
        if added and obs.enabled:
            obs.emit(_ev.FRONTIER_UPDATE, size=len(self.frontier),
                     added=len(added))
        return added


@dataclass
class ExplorationResult:
    """What one engine run produced."""

    strategy: str
    frontier: ParetoFrontier
    stats: ExplorationStats
    jobs: int = 1
    backend: str = "thread"
    elapsed_s: float = 0.0
    #: Parallel dispatch accounting (chunks, steals, hydrations, worker
    #: utilization) from the pool's last dispatch; None on serial runs.
    pool: Optional[Dict[str, object]] = None

    def to_dict(self, include_timing: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "strategy": self.strategy,
            "jobs": self.jobs,
            "backend": self.backend,
            "stats": self.stats.to_dict(),
            "frontier": self.frontier.to_dict(),
            "digest": self.frontier.digest(),
        }
        if self.pool is not None:
            out["pool"] = dict(self.pool)
        if include_timing:
            out["elapsed_s"] = self.elapsed_s
        return out

    def render_text(self, limit: int = 10) -> str:
        """Report; deterministic (no wall-clock times) for serial runs.

        Parallel runs append a pool footer whose steal / hydration
        figures depend on worker scheduling.
        """
        lines = [f"Exploration [{self.strategy}] "
                 f"jobs={self.jobs} ({self.backend})",
                 f"  {self.stats.describe()}",
                 "  " + self.frontier.render_text(limit).replace(
                     "\n", "\n  ")]
        ranking = self.frontier.weighted_ranking()
        if ranking:
            score, best = ranking[0]
            if score != float("inf"):
                lines.append(f"  best (weighted): {best.describe()} "
                             f"[score {score:g}]")
            else:
                lines.append(f"  best (weighted): {best.describe()}")
        if self.pool is not None:
            p = self.pool

            def num(key: str) -> float:
                value = p.get(key, 0)
                return float(value) if isinstance(value, (int, float)) \
                    else 0.0

            bits = [f"pool: workers={p.get('workers', self.jobs)}",
                    f"chunks={p.get('chunks', 0)}"
                    f"(x{p.get('chunk_size', 0)})",
                    f"steals={p.get('steals', 0)}",
                    f"hydrates={p.get('hydrates', 0)}"
                    f" ({p.get('hydrate_ms', 0)} ms)"]
            if num("utilization"):
                bits.append(f"utilization={num('utilization'):.0%}")
            lines.append("  " + " ".join(bits))
            rebuilds = int(num("rebuilds"))
            if rebuilds:
                lines.append(
                    f"  warning: {rebuilds} per-task layer rebuild(s) — "
                    "the layer_factory is not cacheable; attach a "
                    "LayerSnapshot to the problem")
        return "\n".join(lines)


class ExplorationEngine:
    """Drives one problem with one strategy, optionally in parallel.

    ``pool`` lends the engine a caller-owned
    :class:`~repro.core.explore.parallel.WorkerPool` (never closed by
    the engine); ``keep_pool=True`` makes the engine build its own on
    the first parallel run and keep it warm until :meth:`close` (the
    engine is a context manager for exactly this).  Without either, each
    parallel ``run()`` uses an ephemeral pool.
    """

    def __init__(self, problem: ExplorationProblem,
                 strategy: str = "exhaustive", jobs: int = 1,
                 backend: str = "thread",
                 strategy_options: Optional[Mapping[str, object]] = None,
                 chunk_size: Optional[int] = None,
                 pool: Optional["WorkerPool"] = None,
                 keep_pool: bool = False,
                 trace_sample_rate: Optional[float] = None):
        from repro.core.explore.parallel import BACKENDS

        if jobs < 1:
            raise ExplorationError(f"jobs must be >= 1, got {jobs}")
        if backend not in BACKENDS:
            raise ExplorationError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        if chunk_size is not None and chunk_size < 1:
            raise ExplorationError(
                f"chunk size must be >= 1, got {chunk_size}")
        if trace_sample_rate is not None \
                and not 0.0 <= trace_sample_rate <= 1.0:
            raise ExplorationError(
                "trace_sample_rate must be in [0, 1], got "
                f"{trace_sample_rate}")
        self.problem = problem
        self.strategy_name = strategy
        self.strategy_options: Dict[str, object] = dict(strategy_options or {})
        # Validate eagerly: a typo'd strategy or option should fail at
        # construction, not inside a worker.
        self._strategy: SearchStrategy = make_strategy(
            strategy, **self.strategy_options)
        if pool is not None:
            # A lent pool defines the parallelism shape; adopting its
            # jobs/backend keeps the result record honest.
            jobs, backend = pool.jobs, pool.backend
        self.jobs = jobs
        self.backend = backend
        self.chunk_size = chunk_size
        self.keep_pool = keep_pool
        #: Per-branch trace sampling rate for parallel runs; None means
        #: the adaptive default (full tracing up to 16 tasks, decaying
        #: beyond — see :func:`repro.core.obs.context.adaptive_sample_rate`).
        self.trace_sample_rate = trace_sample_rate
        self._lent_pool = pool
        self._own_pool: Optional["WorkerPool"] = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the engine-owned kept pool (lent pools stay open)."""
        if self._own_pool is not None:
            self._own_pool.close()
            self._own_pool = None

    def __enter__(self) -> "ExplorationEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _acquire_pool(self, trace: Optional[TraceContext] = None
                      ) -> Tuple["WorkerPool", bool]:
        """The pool to dispatch on, plus whether to close it after.

        ``trace`` reaches the process-pool initializer of pools this
        call creates; lent / already-started pools keep their own.
        """
        from repro.core.explore.parallel import WorkerPool

        if self._lent_pool is not None:
            return self._lent_pool, False
        if self._own_pool is not None:
            return self._own_pool, False
        pool = WorkerPool(jobs=self.jobs, backend=self.backend,
                          snapshot=self.problem.snapshot,
                          chunk_size=self.chunk_size, trace=trace)
        if self.keep_pool:
            self._own_pool = pool
            return pool, False
        return pool, True

    # ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        layer = self.problem.resolve_layer()
        obs = layer.observer
        if obs.enabled:
            obs.emit(_ev.EXPLORE_START, strategy=self.strategy_name,
                     start=self.problem.start,
                     metrics=list(self.problem.metrics),
                     jobs=self.jobs)
        # dsa: allow[DSA040] -- elapsed_s telemetry only; never digested
        started = time.perf_counter()
        pool_stats: Optional[Dict[str, object]] = None
        if self.jobs > 1:
            frontier, stats, pool_stats = self._run_parallel(layer)
        else:
            frontier, stats = self._run_serial(layer)
        # dsa: allow[DSA040] -- elapsed_s is telemetry; digests exclude it
        elapsed = time.perf_counter() - started
        return ExplorationResult(
            strategy=self._strategy.describe(), frontier=frontier,
            stats=stats, jobs=self.jobs, backend=self.backend,
            elapsed_s=elapsed, pool=pool_stats)

    def _run_serial(self, layer: DesignSpaceLayer
                    ) -> Tuple[ParetoFrontier, ExplorationStats]:
        frontier = ParetoFrontier(self.problem.metrics)
        stats = ExplorationStats()
        try:
            session = self.problem.open_session(layer)
        except (ConstraintViolation, PropertyError, SessionError) as exc:
            raise ExplorationError(
                f"problem prefix is infeasible: {exc}") from exc
        ctx = SearchContext(self.problem, session, frontier, stats)
        self._strategy.search(ctx)
        return frontier, stats

    # ------------------------------------------------------------------
    # parallel orchestration
    # ------------------------------------------------------------------
    def _run_parallel(self, layer: DesignSpaceLayer
                      ) -> Tuple[ParetoFrontier, ExplorationStats,
                                 Dict[str, object]]:
        from repro.core.explore.parallel import BranchTask

        frontier = ParetoFrontier(self.problem.metrics)
        stats = ExplorationStats()
        obs = layer.observer
        tasks: List[BranchTask] = []
        #: Per-task ``branch_open`` anchor events (parallel to ``tasks``);
        #: absorbed worker spans reparent under them.
        anchors: List[Optional[TraceEvent]] = []

        if self._strategy.parallel_mode == "islands":
            # Island model: independent populations, derived seeds.
            base_seed = int(self.strategy_options.get("seed", 0))
            for island in range(self.jobs):
                options = dict(self.strategy_options)
                options["seed"] = base_seed + island
                tasks.append(BranchTask(
                    problem=self.problem, strategy=self.strategy_name,
                    options=options, label=f"island-{island}"))
                anchors.append(None)
        else:
            # Root fan-out: one task per viable option of the first issue.
            try:
                session = self.problem.open_session(layer)
            except (ConstraintViolation, PropertyError, SessionError) as exc:
                raise ExplorationError(
                    f"problem prefix is infeasible: {exc}") from exc
            probe = SearchContext(self.problem, session, frontier, stats)
            if obs.enabled:
                # One explicit pruning checkpoint at the fan-out root, so
                # replaying the merged trace has survivors to verify.
                session.prune_report()
            issue = probe.next_issue(0)
            if issue is None:
                probe.terminal()
                return frontier, stats, {}
            for info in probe.options(issue):
                opened = probe.branch_open(issue, info, anchor=obs.enabled)
                if probe.masked(issue, info):
                    probe.branch_pruned(issue, info, "proved-dead")
                    continue
                if info.eliminated:
                    probe.branch_pruned(issue, info, "eliminated")
                    continue
                if info.candidate_count == 0 \
                        and self.problem.estimator is None:
                    probe.branch_pruned(issue, info, "empty")
                    continue
                branch = self.problem.with_prefix((issue.name, info.option))
                tasks.append(BranchTask(
                    problem=branch, strategy=self.strategy_name,
                    options=dict(self.strategy_options),
                    label=f"{issue.name}={info.option!r}"))
                anchors.append(opened)

        trace_base: Optional[TraceContext] = None
        if obs.enabled and tasks:
            trace_base = self.problem.trace
            if trace_base is None:
                trace_base = TraceContext.derive(
                    self.problem.start, self.problem.metrics,
                    self.problem.requirements, self.problem.decisions,
                    self.strategy_name,
                    sample_rate=self.trace_sample_rate, tasks=len(tasks))
            elif self.trace_sample_rate is not None:
                trace_base = replace(trace_base,
                                     sample_rate=self.trace_sample_rate)
            metrics = getattr(obs, "metrics", None)
            if metrics is not None:
                metrics.gauge(
                    "dsl_trace_sample_rate",
                    "per-branch sampling rate of the last traced "
                    "parallel dispatch").set(trace_base.sample_rate)
            for index, task in enumerate(tasks):
                anchor = anchors[index]
                task.problem = replace(
                    task.problem,
                    trace=trace_base.for_task(
                        index,
                        anchor.span if anchor is not None else None))

        pool, ephemeral = self._acquire_pool(trace_base)
        try:
            results = pool.map(tasks)
        finally:
            if ephemeral:
                pool.close()
        absorb = getattr(obs, "absorb", None)
        for index, result in enumerate(results):
            stats.merge(result.stats)
            if absorb is not None \
                    and (result.trace or result.trace_dropped):
                anchor = anchors[index] if index < len(anchors) else None
                absorb(result.trace,
                       parent=anchor.span if anchor is not None else None,
                       offset_s=(anchor.elapsed_s
                                 if anchor is not None else 0.0),
                       dropped=result.trace_dropped)
            added = sum(1 for outcome in result.outcomes
                        if frontier.add(outcome))
            if added and obs.enabled:
                obs.emit(_ev.FRONTIER_UPDATE, size=len(frontier),
                         added=added, branch=result.label)
        dispatch = pool.last_dispatch
        if obs.enabled:
            if dispatch.hydrates:
                obs.emit(_ev.WORKER_HYDRATE, count=dispatch.hydrates,
                         seconds=dispatch.hydrate_s,
                         source="snapshot" if self.problem.snapshot
                         is not None else "factory")
            if dispatch.rebuilds:
                obs.emit(_ev.WORKER_REBUILD, count=dispatch.rebuilds)
            if dispatch.chunks:
                obs.emit(_ev.CHUNK_DISPATCH, tasks=dispatch.tasks,
                         chunks=dispatch.chunks,
                         chunk_size=dispatch.chunk_size,
                         workers=pool.jobs, backend=pool.backend,
                         utilization=round(dispatch.utilization, 4))
            if dispatch.steals:
                obs.emit(_ev.CHUNK_STEAL, count=dispatch.steals)
        pool_stats: Dict[str, object] = {
            "workers": pool.jobs, "backend": pool.backend}
        pool_stats.update(dispatch.to_dict())
        return frontier, stats, pool_stats


def explore(problem: ExplorationProblem, strategy: str = "exhaustive",
            jobs: int = 1, backend: str = "thread",
            chunk_size: Optional[int] = None,
            pool: Optional["WorkerPool"] = None,
            trace_sample_rate: Optional[float] = None,
            **strategy_options: object) -> ExplorationResult:
    """One-call convenience wrapper around :class:`ExplorationEngine`.

    Pass ``pool`` to dispatch on a caller-owned persistent
    :class:`~repro.core.explore.parallel.WorkerPool` (its jobs/backend
    take precedence); otherwise an ephemeral pool lives for this call.
    ``trace_sample_rate`` overrides the adaptive per-branch sampling
    rate of traced parallel runs (see ``docs/observability.md``).
    """
    engine = ExplorationEngine(problem, strategy=strategy, jobs=jobs,
                               backend=backend,
                               strategy_options=strategy_options,
                               chunk_size=chunk_size, pool=pool,
                               trace_sample_rate=trace_sample_rate)
    return engine.run()
