"""Automated exploration over the design space layer.

The paper's layer reports, after every manual decision, which cores
survive and what figure-of-merit ranges remain — this package closes the
loop and drives those decisions automatically: pluggable search
strategies (exhaustive, branch-and-bound, beam, evolutionary) walk
:class:`~repro.core.session.ExplorationSession` objects, terminal
outcomes accumulate on a :class:`ParetoFrontier`, and independent
branches can be evaluated in parallel by a persistent, snapshot-hydrated
:class:`WorkerPool` with chunked work stealing.  See
``docs/exploration.md`` for the strategy catalogue and the parallelism
model.
"""

from repro.core.explore.engine import (
    ExplorationEngine,
    ExplorationResult,
    ExplorationStats,
    SearchContext,
    explore,
)
from repro.core.explore.outcome import (
    ESTIMATED,
    Outcome,
    ParetoFrontier,
    weighted_sum,
)
from repro.core.explore.parallel import (
    BACKENDS,
    BranchEvaluator,
    BranchResult,
    BranchTask,
    DispatchStats,
    PoolStats,
    WorkerPool,
    chunk_count,
    evaluate_branch,
    evaluate_chunk,
)
from repro.core.explore.problem import ExplorationProblem
from repro.core.explore.strategies import (
    STRATEGIES,
    BeamStrategy,
    BranchAndBoundStrategy,
    EvolutionaryStrategy,
    ExhaustiveStrategy,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "BACKENDS",
    "ESTIMATED",
    "BeamStrategy",
    "BranchAndBoundStrategy",
    "BranchEvaluator",
    "BranchResult",
    "BranchTask",
    "DispatchStats",
    "EvolutionaryStrategy",
    "ExhaustiveStrategy",
    "ExplorationEngine",
    "ExplorationProblem",
    "ExplorationResult",
    "ExplorationStats",
    "Outcome",
    "ParetoFrontier",
    "PoolStats",
    "STRATEGIES",
    "SearchContext",
    "SearchStrategy",
    "WorkerPool",
    "chunk_count",
    "evaluate_branch",
    "evaluate_chunk",
    "explore",
    "make_strategy",
    "weighted_sum",
]
