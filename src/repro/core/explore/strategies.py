"""Pluggable search strategies for the exploration engine.

Every strategy drives a :class:`~repro.core.explore.engine.SearchContext`
— a thin facade over one :class:`~repro.core.session.ExplorationSession`
— and leaves its results in the context's frontier and stats.  Four are
built in:

``exhaustive``
    Depth-first enumeration of every feasible decision path.
``bnb`` (branch-and-bound)
    Exhaustive plus bound pruning: a branch whose optimistic merit
    bounds (the per-metric minima over its surviving cores, shrinking
    monotonically along any path) are *strictly* dominated by a frontier
    member cannot contribute a frontier outcome — not even a tie — and
    is cut.  Returns exactly the exhaustive frontier, visiting fewer
    branches.
``beam``
    Level-synchronous heuristic: keep the ``width`` best-scoring open
    branches per level (weighted sum of the optimistic bounds).
``evolutionary``
    Seeded genetic search over decision vectors (DAVOS-style): a genome
    is a tuple of integers, decoded at each addressable issue as
    ``gene % len(viable options)``; selection is by tournament on the
    best scalarized outcome the genome reaches.

Strategies are registered in :data:`STRATEGIES`;
:func:`make_strategy` instantiates by name with keyword options.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Type

from repro.core.explore.outcome import weighted_sum
from repro.errors import ExplorationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.explore.engine import SearchContext
    from repro.core.session import OptionInfo

#: A decision path relative to the context's root: ((issue, option), ...).
Path = Tuple[Tuple[str, object], ...]


def _option_sort_key(option: object) -> Tuple[str, str]:
    return (type(option).__name__, repr(option))


class SearchStrategy:
    """Base class: a strategy is a callable policy over a SearchContext."""

    #: Registry key; subclasses override.
    name = "?"

    #: How the engine parallelizes this strategy: ``"fanout"`` dispatches
    #: one task per root-issue branch; ``"islands"`` runs ``jobs``
    #: independent full searches with derived seeds and merges frontiers.
    parallel_mode = "fanout"

    def search(self, ctx: "SearchContext") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class ExhaustiveStrategy(SearchStrategy):
    """Depth-first enumeration of every feasible decision path."""

    name = "exhaustive"

    def search(self, ctx: "SearchContext") -> None:
        self._descend(ctx, depth=0)

    def _descend(self, ctx: "SearchContext", depth: int) -> None:
        issue = ctx.next_issue(depth)
        if issue is None:
            ctx.terminal()
            return
        for info in ctx.options(issue):
            ctx.branch_open(issue, info)
            reason = self._screen(ctx, issue, info)
            if reason is not None:
                ctx.branch_pruned(issue, info, reason)
                continue
            if not ctx.decide(issue, info.option):
                ctx.branch_pruned(issue, info, "constraint")
                continue
            self._descend(ctx, depth + 1)
            ctx.undo()

    def _screen(self, ctx: "SearchContext", issue: object,
                info: "OptionInfo") -> Optional[str]:
        """Reason to cut the branch before deciding, or None."""
        if ctx.masked(issue, info):
            # Statically proved dead by the verifier; cut before any
            # runtime screening.
            return "proved-dead"
        if info.eliminated:
            return "eliminated"
        if info.candidate_count == 0 and ctx.problem.estimator is None:
            # Nothing survives down there and there is no estimation
            # fallback: the branch cannot produce an outcome.
            return "empty"
        return None


class BranchAndBoundStrategy(ExhaustiveStrategy):
    """Exhaustive search with merit-range bound pruning.

    Sound because merit ranges only shrink along a decision path (every
    decision prunes the surviving set), so the per-metric minima of a
    branch are optimistic bounds on every terminal outcome under it;
    and exact (ties preserved) because only *strict* dominance of the
    bound vector prunes.  With an estimator configured the bound no
    longer covers estimated outcomes, so bound pruning is disabled and
    the strategy degrades to exhaustive.
    """

    name = "bnb"

    def _screen(self, ctx: "SearchContext", issue: object,
                info: "OptionInfo") -> Optional[str]:
        reason = super()._screen(ctx, issue, info)
        if reason is not None:
            return reason
        if ctx.problem.estimator is None \
                and ctx.frontier.dominates_bound(ctx.bound(info)):
            return "bound"
        return None


class BeamStrategy(SearchStrategy):
    """Level-synchronous beam search with configurable width.

    At each level every open branch expands its next issue; children
    are scored by the weighted sum of their optimistic merit bounds and
    only the ``width`` best survive to the next level (ties broken
    deterministically by issue/option/path text).  A heuristic: the
    frontier it returns is a subset of the exhaustive one.
    """

    name = "beam"

    def __init__(self, width: int = 4,
                 weights: Optional[Mapping[str, float]] = None):
        if width < 1:
            raise ExplorationError(f"beam width must be >= 1, got {width}")
        self.width = width
        self.weights = dict(weights) if weights else {}

    def describe(self) -> str:
        return f"{self.name}(width={self.width})"

    def search(self, ctx: "SearchContext") -> None:
        vector = tuple(self.weights.get(m, 1.0) for m in ctx.metrics)
        beams: List[Path] = [()]
        depth = 0
        while beams:
            candidates: List[Tuple[float, str, Path]] = []
            for path in beams:
                if not ctx.goto(path):
                    continue  # prefix became infeasible (cannot happen
                    # for paths that decided cleanly, defensive only)
                issue = ctx.next_issue(depth)
                if issue is None:
                    ctx.terminal()
                    continue
                for info in ctx.options(issue):
                    ctx.branch_open(issue, info)
                    if ctx.masked(issue, info):
                        ctx.branch_pruned(issue, info, "proved-dead")
                        continue
                    if info.eliminated:
                        ctx.branch_pruned(issue, info, "eliminated")
                        continue
                    if info.candidate_count == 0 \
                            and ctx.problem.estimator is None:
                        ctx.branch_pruned(issue, info, "empty")
                        continue
                    score = weighted_sum(ctx.bound(info), vector)
                    child = path + ((issue.name, info.option),)
                    text = ", ".join(
                        f"{n}={r}" for n, r in
                        ((n, _option_sort_key(o)) for n, o in child))
                    candidates.append((score, text, child))
            candidates.sort(key=lambda item: (item[0], item[1]))
            beams = []
            for rank, (_, _, child) in enumerate(candidates):
                issue_name, option = child[-1]
                if rank >= self.width:
                    ctx.prune_path(child, "beam")
                    continue
                if ctx.goto(child):
                    ctx.stats.expanded += 1
                    beams.append(child)
                else:
                    ctx.prune_path(child, "constraint")
            depth += 1


class EvolutionaryStrategy(SearchStrategy):
    """Seeded genetic search over decision vectors.

    A genome is a fixed-length tuple of non-negative integers.  Decoding
    walks the addressable issues from the context root; at depth ``d``
    the gene ``genome[d % len(genome)]`` selects one of the issue's
    viable options by modulo.  Fitness is the best weighted-sum score
    among the outcomes the decoded terminal contributes (lower is
    better); infeasible genomes score ``inf``.  All randomness flows
    from ``random.Random(seed)``, so equal seeds give byte-identical
    frontiers.
    """

    name = "evolutionary"
    parallel_mode = "islands"

    def __init__(self, seed: int = 0, population: int = 16,
                 generations: int = 8, mutation_rate: float = 0.15,
                 genome_length: int = 8, elite: int = 2,
                 tournament: int = 3, gene_space: int = 64,
                 weights: Optional[Mapping[str, float]] = None):
        if population < 2:
            raise ExplorationError("population must be >= 2")
        if genome_length < 1:
            raise ExplorationError("genome_length must be >= 1")
        self.seed = seed
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.genome_length = genome_length
        self.elite = max(0, min(elite, population - 1))
        self.tournament = max(2, tournament)
        self.gene_space = max(2, gene_space)
        self.weights = dict(weights) if weights else {}

    def describe(self) -> str:
        return (f"{self.name}(seed={self.seed}, population="
                f"{self.population}, generations={self.generations})")

    # ------------------------------------------------------------------
    def _evaluate(self, ctx: "SearchContext",
                  genome: Tuple[int, ...],
                  vector: Tuple[float, ...],
                  memo: Dict[Tuple[int, ...], float]) -> float:
        if genome in memo:
            return memo[genome]
        score = math.inf
        if ctx.goto(()):
            depth = 0
            feasible = True
            while True:
                issue = ctx.next_issue(depth)
                if issue is None:
                    break
                viable = [info for info in ctx.options(issue)
                          if not info.eliminated
                          and (info.candidate_count > 0
                               or ctx.problem.estimator is not None)]
                if not viable:
                    feasible = False
                    break
                gene = genome[depth % len(genome)]
                info = viable[gene % len(viable)]
                if not ctx.decide(issue, info.option):
                    feasible = False
                    break
                depth += 1
            if feasible:
                added = ctx.terminal()
                ctx.stats.evaluations += 1
                scores = [weighted_sum(o.coords(ctx.metrics), vector)
                          for o in added]
                if scores:
                    score = min(scores)
        memo[genome] = score
        return score

    def search(self, ctx: "SearchContext") -> None:
        rng = random.Random(self.seed)
        vector = tuple(self.weights.get(m, 1.0) for m in ctx.metrics)
        memo: Dict[Tuple[int, ...], float] = {}

        def random_genome() -> Tuple[int, ...]:
            return tuple(rng.randrange(self.gene_space)
                         for _ in range(self.genome_length))

        population = [random_genome() for _ in range(self.population)]
        for generation in range(self.generations + 1):
            scored = [(self._evaluate(ctx, genome, vector, memo), genome)
                      for genome in population]
            scored.sort(key=lambda item: (item[0], item[1]))
            if generation == self.generations:
                break
            survivors = [genome for _, genome in scored]

            def pick() -> Tuple[int, ...]:
                entrants = [survivors[rng.randrange(len(survivors))]
                            for _ in range(self.tournament)]
                return min(entrants, key=lambda g: (memo[g], g))

            next_population = [genome for _, genome in scored[:self.elite]]
            while len(next_population) < self.population:
                mother, father = pick(), pick()
                cut = rng.randrange(1, self.genome_length) \
                    if self.genome_length > 1 else 0
                child = list(mother[:cut] + father[cut:])
                for i in range(len(child)):
                    if rng.random() < self.mutation_rate:
                        child[i] = rng.randrange(self.gene_space)
                next_population.append(tuple(child))
            population = next_population


#: Registry of built-in strategies; aliases included.
STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    "exhaustive": ExhaustiveStrategy,
    "bnb": BranchAndBoundStrategy,
    "branch-and-bound": BranchAndBoundStrategy,
    "beam": BeamStrategy,
    "evolutionary": EvolutionaryStrategy,
    "ga": EvolutionaryStrategy,
}


def make_strategy(name: str, **options: object) -> SearchStrategy:
    """Instantiate a registered strategy by name with keyword options."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        known = sorted(set(STRATEGIES))
        raise ExplorationError(
            f"unknown exploration strategy {name!r}; known: {known}"
        ) from None
    try:
        return cls(**options)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ExplorationError(
            f"strategy {name!r} rejected options {sorted(options)}: {exc}"
        ) from None
