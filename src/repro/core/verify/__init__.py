"""Semantic design-space verifier (the ``repro verify`` engine).

The static analysis tier between the structural linter and the runtime
exploration engine: abstract interpretation over the consistency
constraints computes a sound over-approximation of every CDO's feasible
region, and on top of it dead-branch proofs (``DSL100``/``DSL101``),
minimal unsat cores for infeasible requirement sets (``DSL103``) and a
constraint stratification report (``DSL102``).

Entry points:

* :func:`analyze_layer` — the raw, epoch-cached analysis;
* :func:`verify_layer` — analysis + DSL1xx diagnostics as a
  :class:`VerifyReport`;
* :meth:`DesignSpaceLayer.verify` — the same, as a layer method;
* ``python -m repro verify`` — the CLI surface (text or JSON output).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.layer import DesignSpaceLayer
    from repro.core.lint import LintConfig as _LintConfig

from repro.core.verify.domains import (
    TOP,
    AbstractValue,
    FiniteSet,
    Interval,
    abstract_of,
    finite_values,
    is_empty,
    join,
    meet,
)
from repro.core.verify.engine import (
    CdoRegion,
    DeadBranchProof,
    Stratum,
    UnsatCore,
    VerifyAnalysis,
    analyze_layer,
)
from repro.core.verify.report import VerifyReport


def verify_layer(layer: "DesignSpaceLayer",
                 requirements: Sequence[Tuple[str, object]] = (),
                 start: Optional[str] = None,
                 config: Optional["_LintConfig"] = None) -> VerifyReport:
    """Verify ``layer``: run the analysis, then render its findings as
    DSL1xx diagnostics through the lint pipeline.

    ``config`` may carry an existing
    :class:`~repro.core.lint.LintConfig` (severity overrides,
    disables); its rule options are augmented with the verifier opt-in.
    """
    from repro.core.lint import LintConfig, lint_layer

    analysis = analyze_layer(layer, requirements=requirements, start=start)
    verify_options: Dict[str, object] = {
        "enabled": True,
        "requirements": tuple(requirements),
        "start": start,
    }
    if config is None:
        config = LintConfig(select=("verify",),
                            rule_options={"verify": verify_options})
    else:
        if not isinstance(config, LintConfig):
            raise TypeError(
                f"config must be a LintConfig, got {type(config).__name__}")
        merged = dict(config.rule_options)
        verify_options.update(merged.get("verify", {}))
        verify_options["enabled"] = True
        merged["verify"] = verify_options
        config = LintConfig(
            select=config.select if config.select is not None else ("verify",),
            disable=config.disable,
            severity_overrides=config.severity_overrides,
            rule_options=merged)
    lint = lint_layer(layer, config=config)
    return VerifyReport(analysis=analysis, lint=lint)


__all__ = [
    "TOP",
    "AbstractValue",
    "CdoRegion",
    "DeadBranchProof",
    "FiniteSet",
    "Interval",
    "Stratum",
    "UnsatCore",
    "VerifyAnalysis",
    "VerifyReport",
    "abstract_of",
    "analyze_layer",
    "finite_values",
    "is_empty",
    "join",
    "meet",
    "verify_layer",
]
