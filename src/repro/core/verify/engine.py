"""Semantic design-space verifier: abstract interpretation over CCs.

The verifier statically computes, for every CDO in scope, a sound
over-approximation of its *feasible region* — which property values any
exploration session positioned there could still realize — by
propagating the abstract values of :mod:`repro.core.verify.domains`
through the layer's :class:`~repro.core.constraints.ConstraintSet`.
Three analyses are built on the fixpoint:

**Dead-branch proofs.**  A design-issue option is *proved dead* at a CDO
when every session reachable there (under the given requirement set)
would be rejected for choosing it.  The proof obligation is universal:
for each constraint alias the verifier computes the *guaranteed pool* —
the complete set of values the alias can bind to across all reachable
session states — and shows the relation fails on **every** combination.
Whenever a pool cannot be bounded (session-computed bindings, estimator
outputs, unresolved parametric domains, un-entered requirements), the
verifier *widens*: it makes no claim, so no proof is ever unsound.
Three proof kinds are emitted:

* ``rejected-decision`` — ``session.decide(issue, option)`` raises a
  :class:`~repro.errors.ConstraintViolation` in every reachable state;
* ``eliminated-option`` — an :class:`~repro.core.relations.EliminateOptions`
  relation eliminates the pair under every consistent binding;
* ``empty-region`` — no reusable core under the option satisfies the
  given requirements (index-based; only sound for pre-pruning under the
  ``EXCLUDE`` missing policy and in the absence of an estimator).

Because the first two kinds coincide exactly with decisions the
exploration engine itself would reject or prune, masking them preserves
the exhaustive frontier byte-for-byte (the property suite checks this).

**Unsat cores.**  When a requirement set is infeasible at a region —
no core survives, or some constraint is guaranteed to fail before any
decision is taken — a *minimal* conflicting subset of requirements and
constraints is extracted by deletion-based shrinking (the infeasibility
predicate is monotone in the element set, so single-pass deletion yields
a minimal core) and rendered with fix-it hints.

**Stratification.**  The independent→dependent property edges induce a
DAG of strata (SCC condensation, reusing the lint cycle machinery); a
stratum is *widening-unstable* when an estimator-derived property feeds
further constraints — its value is opaque to the abstract domain, so
everything downstream of it widens.

The analysis is pure (no sessions are opened, no estimators invoked —
:class:`~repro.core.relations.EstimatorInvocation` relations are always
widened, never evaluated) and cached per layer epoch, so repeated
verifies of an unchanged layer are near-free.

Soundness contract: relations must depend only on their declared
``requires`` aliases — the same contract :meth:`Relation._require`
enforces and the lint sampler (DSL014) assumes.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

from repro.core.cdo import ClassOfDesignObjects
from repro.core.constraints import ConsistencyConstraint, SessionBinding
from repro.core.path import PropertyPath
from repro.core.properties import (BehavioralDescription, DesignIssue,
                                   Requirement)
from repro.core.pruning import MissingPolicy
from repro.core.relations import (EliminateOptions, EstimatorInvocation,
                                  Formula, RelationResult)
from repro.core.verify.domains import (MAX_FINITE, TOP, AbstractValue,
                                       FiniteSet, Interval, abstract_of,
                                       describe, finite_values, is_empty,
                                       meet)
from repro.errors import HierarchyError, PropertyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.layer import DesignSpaceLayer

#: Above this many alias-value combinations a proof attempt widens.
MAX_COMBINATIONS = 512
#: Requirement domains larger than this are not probed for enterability.
MAX_REQUIREMENT_PROBE = 16

Given = Tuple[Tuple[str, object], ...]
_Ref = Union[PropertyPath, SessionBinding]


def _json_safe(value: object) -> object:
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DeadBranchProof:
    """A design-issue option proved unreachable/unrejectable at a CDO."""

    cdo: str
    issue: str
    option: object
    #: ``rejected-decision`` | ``eliminated-option`` | ``empty-region``
    kind: str
    constraint: str = ""
    explanation: str = ""

    def key(self) -> Tuple[str, str, str]:
        """The (cdo, issue, repr(option)) triple used in prune masks."""
        return (self.cdo, self.issue, repr(self.option))


@dataclass(frozen=True)
class CdoRegion:
    """Sound over-approximation of the feasible region at one CDO."""

    qname: str
    core_count: int
    merit_intervals: Mapping[str, Interval]
    properties: Mapping[str, AbstractValue]
    #: Property names whose abstract value is strictly tighter than the
    #: bare domain abstraction — i.e. the constraints taught us something.
    narrowed: Tuple[str, ...]
    #: Property names the analysis gave up on (estimator outputs,
    #: unboundable pools).
    widened: Tuple[str, ...]
    empty: bool


@dataclass(frozen=True)
class UnsatCore:
    """A minimal infeasible subset of requirements and constraints."""

    region: str
    requirements: Tuple[Tuple[str, object], ...]
    constraints: Tuple[str, ...]
    hints: Tuple[str, ...]


@dataclass(frozen=True)
class Stratum:
    """One level of the independent→dependent property ordering."""

    index: int
    properties: Tuple[str, ...]
    fan_out: int
    unstable: bool
    unstable_properties: Tuple[str, ...]


@dataclass(frozen=True)
class VerifyAnalysis:
    """Everything one verifier run proved about a layer."""

    layer_name: str
    epoch: int
    requirements: Given
    start: Optional[str]
    regions: Mapping[str, CdoRegion]
    proofs: Tuple[DeadBranchProof, ...]
    unsat_cores: Tuple[UnsatCore, ...]
    infeasible_regions: Tuple[str, ...]
    strata: Tuple[Stratum, ...]

    def proofs_at(self, qname: str) -> Tuple[DeadBranchProof, ...]:
        return tuple(p for p in self.proofs if p.cdo == qname)

    def prune_mask(self, missing_policy: MissingPolicy = MissingPolicy.EXCLUDE
                   ) -> FrozenSet[Tuple[str, str, str]]:
        """The proof keys an exploration may soundly skip.

        ``empty-region`` proofs quantify over *documented* core
        properties, so they only hold under the ``EXCLUDE`` missing
        policy; constraint-based proofs hold regardless.
        """
        keys: Set[Tuple[str, str, str]] = set()
        for proof in self.proofs:
            if (proof.kind == "empty-region"
                    and missing_policy is not MissingPolicy.EXCLUDE):
                continue
            keys.add(proof.key())
        return frozenset(keys)

    def to_dict(self) -> Dict[str, object]:
        return {
            "layer": self.layer_name,
            "epoch": self.epoch,
            "start": self.start,
            "requirements": [{"name": n, "value": _json_safe(v)}
                             for n, v in self.requirements],
            "regions": [
                {"cdo": r.qname,
                 "cores": r.core_count,
                 "empty": r.empty,
                 "merit_intervals": {m: [iv.lo, iv.hi]
                                     for m, iv in sorted(r.merit_intervals.items())},
                 "narrowed": {n: describe(r.properties[n]) for n in r.narrowed},
                 "widened": list(r.widened)}
                for r in (self.regions[q] for q in sorted(self.regions))],
            "dead_branches": [
                {"cdo": p.cdo, "issue": p.issue, "option": _json_safe(p.option),
                 "kind": p.kind, "constraint": p.constraint,
                 "explanation": p.explanation}
                for p in self.proofs],
            "unsat_cores": [
                {"region": c.region,
                 "requirements": [{"name": n, "value": _json_safe(v)}
                                  for n, v in c.requirements],
                 "constraints": list(c.constraints),
                 "hints": list(c.hints)}
                for c in self.unsat_cores],
            "infeasible_regions": list(self.infeasible_regions),
            "strata": [
                {"index": s.index, "properties": list(s.properties),
                 "fan_out": s.fan_out, "unstable": s.unstable,
                 "unstable_properties": list(s.unstable_properties)}
                for s in self.strata],
        }


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------

class _Analyzer:
    def __init__(self, layer: "DesignSpaceLayer", requirements: Given,
                 start: Optional[str]):
        self.layer = layer
        self.aliases: Dict[str, str] = dict(layer.aliases)
        self.given: Dict[str, object] = dict(requirements)
        self.start = start
        self.index = layer.libraries.index()
        self.constraints: List[ConsistencyConstraint] = list(layer.constraints)
        self.metrics: Tuple[str, ...] = tuple(sorted(self.index._with_merit))
        self.tools = dict(layer.tools)

    # -- shared helpers -------------------------------------------------
    def _visible_requirements(self, cdo: ClassOfDesignObjects,
                              given: Optional[Mapping[str, object]] = None
                              ) -> List[Tuple[Requirement, object]]:
        given = self.given if given is None else given
        out: List[Tuple[Requirement, object]] = []
        for name in sorted(given):
            try:
                prop = cdo.find_property(name)
            except PropertyError:
                continue
            if isinstance(prop, Requirement):
                out.append((prop, given[name]))
        return out

    def _sees_requirement(self, cdo: ClassOfDesignObjects, name: str) -> bool:
        try:
            return isinstance(cdo.find_property(name), Requirement)
        except PropertyError:
            return False

    def _pinned(self, cdo: ClassOfDesignObjects) -> Dict[str, object]:
        """Generalized options pinned by the path from the root."""
        out: Dict[str, object] = {}
        path = cdo.path_from_root()
        for parent, node in zip(path, path[1:]):
            issue = parent.generalized_issue
            if issue is not None:
                out[issue.name] = node.option_of_parent
        return out

    def _pinned_option(self, cdo: ClassOfDesignObjects,
                       owner: ClassOfDesignObjects) -> Optional[object]:
        path = cdo.path_from_root()
        for parent, node in zip(path, path[1:]):
            if parent is owner:
                return node.option_of_parent
        return None

    def _context(self, cdo: ClassOfDesignObjects,
                 given: Optional[Mapping[str, object]] = None
                 ) -> Dict[str, object]:
        """Concrete values every session at ``cdo`` agrees on: the given
        requirements plus the path-pinned generalized options."""
        ctx = dict(self.given if given is None else given)
        for name, option in self._pinned(cdo).items():
            ctx.setdefault(name, option)
        return ctx

    def _derived_targets(self,
                         constraints: Sequence[ConsistencyConstraint]
                         ) -> Set[str]:
        out: Set[str] = set()
        for c in constraints:
            rel = c.relation
            if isinstance(rel, (Formula, EstimatorInvocation)):
                ref = c.dependents.get(rel.target)
                if isinstance(ref, PropertyPath):
                    out.add(ref.property_name)
        return out

    # -- guaranteed pools ----------------------------------------------
    def _pool(self, cdo: ClassOfDesignObjects, ref: _Ref,
              decided: Mapping[str, object], derived_targets: Set[str],
              given: Mapping[str, object],
              env: Optional[Mapping[str, AbstractValue]] = None
              ) -> Optional[Tuple[object, ...]]:
        """The complete set of values ``ref`` can bind to across every
        session state at ``cdo`` consistent with ``decided``/``given`` —
        or ``None`` when it cannot be bounded (including 'may be
        UNBOUND', in which case the constraint might silently not fire).
        """
        if isinstance(ref, SessionBinding):
            return None
        name = ref.property_name
        if ref.selectors and name in decided:
            # A tentative decide() override is not visible through a
            # selector chain at the pre-commit refresh; stay conservative.
            return None
        base: Optional[Tuple[object, ...]]
        if name in decided:
            base = (decided[name],)
        elif name in given:
            try:
                prop = cdo.find_property(name)
            except PropertyError:
                return None
            if not isinstance(prop, Requirement):
                return None
            base = (given[name],)
        else:
            try:
                prop = cdo.find_property(name)
            except PropertyError:
                return None
            if name in derived_targets:
                narrowed = env.get(name) if env is not None else None
                if isinstance(narrowed, FiniteSet):
                    base = narrowed.values
                else:
                    return None
            elif isinstance(prop, Requirement):
                return None  # un-entered: may be UNBOUND
            elif isinstance(prop, BehavioralDescription):
                if prop.description is None:
                    return None
                base = (prop.description,)
            elif isinstance(prop, DesignIssue):
                if prop.default is None:
                    return None  # undecided sessions leave it UNBOUND
                if prop.generalized:
                    owner = cdo.find_property_owner(name)
                    pinned = (None if owner is None or owner is cdo
                              else self._pinned_option(cdo, owner))
                    if pinned is None or pinned == prop.default:
                        base = (prop.default,)
                    else:
                        # a session may have descended through ``pinned``
                        # or started below the owner with the default
                        base = (pinned, prop.default)
                else:
                    vals = finite_values(prop.domain, self._context(cdo, given))
                    if vals is None or len(vals) > MAX_FINITE:
                        return None
                    if not any(v == prop.default for v in vals):
                        vals = vals + (prop.default,)
                    base = vals
            else:
                return None
        if ref.selectors:
            out = []
            for value in base:
                try:
                    out.append(self.layer.selectors.apply_chain(
                        ref.selectors, value))
                except Exception:
                    return None
            base = tuple(out)
        return base

    def _guaranteed_results(self, cdo: ClassOfDesignObjects,
                            constraint: ConsistencyConstraint,
                            decided: Mapping[str, object],
                            derived_targets: Set[str],
                            given: Optional[Mapping[str, object]] = None,
                            env: Optional[Mapping[str, AbstractValue]] = None
                            ) -> Optional[List[RelationResult]]:
        """Evaluate ``constraint`` on every combination of its aliases'
        guaranteed pools, or ``None`` when any pool is unbounded, the
        product exceeds :data:`MAX_COMBINATIONS`, or evaluation raises.
        """
        given = self.given if given is None else given
        relation = constraint.relation
        if isinstance(relation, EstimatorInvocation):
            return None  # never invoke tools during static analysis
        aliases = sorted(set(constraint.independents)
                         | set(constraint.shorts)
                         | set(getattr(relation, "requires", ())))
        pools: List[Tuple[object, ...]] = []
        total = 1
        for alias in aliases:
            ref = (constraint.independents.get(alias)
                   or constraint.shorts.get(alias)
                   or constraint.dependents.get(alias))
            if ref is None:
                return None
            pool = self._pool(cdo, ref, decided, derived_targets, given, env)
            if not pool:
                return None
            total *= len(pool)
            if total > MAX_COMBINATIONS:
                return None
            pools.append(pool)
        results: List[RelationResult] = []
        for combo in itertools.product(*pools):
            try:
                results.append(relation.evaluate(dict(zip(aliases, combo)),
                                                 tools=self.tools))
            except Exception:
                return None  # not total on the pool: widen
        return results

    # -- dead-branch proofs --------------------------------------------
    def _issues_at(self, cdo: ClassOfDesignObjects) -> List[DesignIssue]:
        out = []
        for prop in cdo.all_properties():
            if not isinstance(prop, DesignIssue):
                continue
            if prop.generalized and cdo.find_property_owner(prop.name) is not cdo:
                continue  # addressable only at its owner
            out.append(prop)
        return out

    def _dead_proofs(self, cdo: ClassOfDesignObjects,
                     applicable: Sequence[ConsistencyConstraint]
                     ) -> List[DeadBranchProof]:
        proofs: List[DeadBranchProof] = []
        derived_targets = self._derived_targets(applicable)
        ctx = self._context(cdo)
        checkable = [c for c in applicable
                     if not isinstance(c.relation,
                                       (EstimatorInvocation, EliminateOptions))]
        eliminators = [c for c in applicable
                       if isinstance(c.relation, EliminateOptions)]
        reqs = self._visible_requirements(cdo)
        for issue in self._issues_at(cdo):
            options = finite_values(issue.domain, ctx)
            if options is None:
                continue  # cannot enumerate completely: widen
            for option in options:
                proof = self._prove_dead(cdo, issue, option, checkable,
                                         eliminators, derived_targets, reqs)
                if proof is not None:
                    proofs.append(proof)
        return proofs

    def _prove_dead(self, cdo: ClassOfDesignObjects, issue: DesignIssue,
                    option: object,
                    checkable: Sequence[ConsistencyConstraint],
                    eliminators: Sequence[ConsistencyConstraint],
                    derived_targets: Set[str],
                    reqs: Sequence[Tuple[Requirement, object]]
                    ) -> Optional[DeadBranchProof]:
        qname = cdo.qualified_name
        decided = {issue.name: option}
        for constraint in checkable:
            results = self._guaranteed_results(cdo, constraint, decided,
                                               derived_targets)
            if results and all(not r.ok for r in results):
                detail = next((r.explanation for r in results
                               if r.explanation), constraint.doc)
                return DeadBranchProof(
                    qname, issue.name, option, "rejected-decision",
                    constraint.name,
                    f"every reachable session state violates "
                    f"{constraint.name}: {detail}")
        pair = (issue.name, option)
        for constraint in eliminators:
            results = self._guaranteed_results(cdo, constraint, {},
                                               derived_targets)
            if results and all(any(p == pair for p in r.eliminated)
                               for r in results):
                return DeadBranchProof(
                    qname, issue.name, option, "eliminated-option",
                    constraint.name,
                    f"{constraint.name} eliminates this option under "
                    f"every reachable session state")
        if issue.generalized:
            try:
                child = cdo.child_for_option(option)
            except HierarchyError:
                return None  # unspecialized option: nothing to prove
            ids = self.index.prune_ids(
                self.index.subtree_ids(child.qualified_name), {},
                self._visible_requirements(child), MissingPolicy.EXCLUDE)
        else:
            ids = self.index.prune_ids(
                self.index.subtree_ids(qname), decided, reqs,
                MissingPolicy.EXCLUDE)
        if not ids:
            return DeadBranchProof(
                qname, issue.name, option, "empty-region", "",
                "no reusable core under this option satisfies the "
                "given requirements")
        return None

    # -- feasible regions ----------------------------------------------
    def _region(self, cdo: ClassOfDesignObjects,
                applicable: Sequence[ConsistencyConstraint],
                proofs: Sequence[DeadBranchProof]) -> CdoRegion:
        ctx = self._context(cdo)
        env: Dict[str, AbstractValue] = {}
        for prop in cdo.all_properties():
            if isinstance(prop, BehavioralDescription):
                continue
            domain = getattr(prop, "domain", None)
            if domain is None:
                continue
            env[prop.name] = abstract_of(domain, ctx)
        initial = dict(env)
        for name, value in ctx.items():
            if name in env:
                env[name] = meet(env[name], FiniteSet((value,)))
        widened: Set[str] = set()
        # proved-dead options leave the decidable/enterable set
        for proof in proofs:
            if proof.kind == "empty-region":
                continue  # index-based fact, not a value-lattice fact
            current = env.get(proof.issue)
            if isinstance(current, FiniteSet):
                env[proof.issue] = FiniteSet(tuple(
                    v for v in current.values if not v == proof.option))
        derived_targets = self._derived_targets(applicable)
        checkable = [c for c in applicable
                     if not isinstance(c.relation,
                                       (EstimatorInvocation, EliminateOptions))]
        formulas = [c for c in applicable if isinstance(c.relation, Formula)]
        for c in applicable:
            rel = c.relation
            if isinstance(rel, EstimatorInvocation):
                ref = c.dependents.get(rel.target)
                if isinstance(ref, PropertyPath):
                    widened.add(ref.property_name)
        # un-entered requirements: which values could still be entered?
        for prop in cdo.all_properties():
            if not isinstance(prop, Requirement) or prop.name in self.given:
                continue
            vals = finite_values(prop.domain, ctx)
            if vals is None or len(vals) > MAX_REQUIREMENT_PROBE:
                continue
            alive = []
            for value in vals:
                rejected = False
                for c in checkable:
                    results = self._guaranteed_results(
                        cdo, c, {prop.name: value}, derived_targets, env=env)
                    if results and all(not r.ok for r in results):
                        rejected = True
                        break
                if not rejected:
                    alive.append(value)
            if prop.name in env:
                env[prop.name] = meet(env[prop.name], FiniteSet(tuple(alive)))
        # exact narrowing through quantitative relations, to fixpoint
        rounds = 0
        changed = True
        while changed and rounds <= len(formulas) + 1:
            changed = False
            rounds += 1
            for c in formulas:
                rel = c.relation
                assert isinstance(rel, Formula)
                ref = c.dependents.get(rel.target)
                if not isinstance(ref, PropertyPath) or ref.selectors:
                    continue
                tname = ref.property_name
                results = self._guaranteed_results(cdo, c, {},
                                                   derived_targets, env=env)
                if results is None:
                    widened.add(tname)
                    continue
                derived = FiniteSet(tuple(r.derived.get(rel.target)
                                          for r in results if r.ok))
                new = meet(env.get(tname, TOP), derived)
                if new != env.get(tname, TOP):
                    env[tname] = new
                    changed = True
        survivors = self.index.prune_ids(
            self.index.subtree_ids(cdo.qualified_name), {},
            self._visible_requirements(cdo), MissingPolicy.EXCLUDE)
        merit_intervals = {
            metric: Interval(float(lo), float(hi))
            for metric, (lo, hi) in sorted(
                self.index.merit_ranges_for(survivors, self.metrics).items())}
        narrowed = tuple(sorted(
            n for n, v in env.items() if v != initial.get(n, TOP)))
        return CdoRegion(
            qname=cdo.qualified_name, core_count=len(survivors),
            merit_intervals=merit_intervals, properties=env,
            narrowed=narrowed, widened=tuple(sorted(widened)),
            empty=any(is_empty(v) for v in env.values()))

    # -- unsat cores ----------------------------------------------------
    _Element = Tuple[str, str, object]

    def _elements(self, region: ClassOfDesignObjects) -> List[_Element]:
        elements: List[_Analyzer._Element] = []
        for name in sorted(self.given):
            if self._sees_requirement(region, name):
                elements.append(("requirement", name, self.given[name]))
        for c in self.constraints:
            if (c.applies_to(region, self.aliases)
                    and not isinstance(c.relation, EstimatorInvocation)):
                elements.append(("constraint", c.name, c))
        return elements

    def _infeasible(self, region: ClassOfDesignObjects,
                    elements: Sequence[_Element],
                    derived_targets: Set[str]) -> bool:
        given = {e[1]: e[2] for e in elements if e[0] == "requirement"}
        survivors = self.index.prune_ids(
            self.index.subtree_ids(region.qualified_name), {},
            self._visible_requirements(region, given), MissingPolicy.EXCLUDE)
        if not survivors:
            return True
        for element in elements:
            if element[0] != "constraint":
                continue
            constraint = element[2]
            assert isinstance(constraint, ConsistencyConstraint)
            if isinstance(constraint.relation, EliminateOptions):
                continue  # eliminations never hard-fail
            results = self._guaranteed_results(region, constraint, {},
                                               derived_targets, given=given)
            if results and all(not r.ok for r in results):
                return True
        return False

    def _unsat_cores(self, origin: Optional[ClassOfDesignObjects]
                     ) -> Tuple[List[UnsatCore], List[str]]:
        if origin is not None:
            regions = [origin]
        else:
            regions = []
            for root in self.layer.roots:
                node = root
                if self.given:
                    node = next(
                        (c for c in root.walk()
                         if all(self._sees_requirement(c, n)
                                for n in self.given)), root)
                regions.append(node)
        cores: List[UnsatCore] = []
        infeasible: List[str] = []
        for region in regions:
            applicable = [c for c in self.constraints
                          if c.applies_to(region, self.aliases)]
            derived_targets = self._derived_targets(applicable)
            elements = self._elements(region)
            if not self._infeasible(region, elements, derived_targets):
                continue
            infeasible.append(region.qualified_name)
            core = list(elements)
            for element in list(core):
                trial = [e for e in core if e is not element]
                if self._infeasible(region, trial, derived_targets):
                    core = trial
            cores.append(self._render_core(region, core))
        return cores, infeasible

    def _render_core(self, region: ClassOfDesignObjects,
                     core: Sequence[_Element]) -> UnsatCore:
        req_items = tuple((e[1], e[2]) for e in core if e[0] == "requirement")
        con_items = tuple(e[1] for e in core if e[0] == "constraint")
        hints: List[str] = []
        for name, value in req_items:
            try:
                detail = region.find_property(name).describe()
            except PropertyError:  # pragma: no cover - defensive
                detail = name
            hints.append(f"relax or drop requirement {name}={value!r} "
                         f"({detail})")
        for name in con_items:
            constraint = self.layer.constraints.get(name)
            hints.append(f"constraint {name}: {constraint.doc}")
        if not hints:
            hints.append(f"no reusable cores are registered under "
                         f"{region.qualified_name}")
        return UnsatCore(region=region.qualified_name,
                         requirements=req_items, constraints=con_items,
                         hints=tuple(hints))

    # -- stratification -------------------------------------------------
    def _strata(self) -> Tuple[Stratum, ...]:
        from repro.core.lint.rules_constraints import _tarjan_sccs
        graph: Dict[str, Set[str]] = {}
        estimator_derived: Set[str] = set()
        for c in self.constraints:
            sources = c.independent_property_names()
            targets = c.dependent_property_names()
            if isinstance(c.relation, EstimatorInvocation):
                estimator_derived.update(targets)
            for name in sources + targets:
                graph.setdefault(name, set())
            for s in sources:
                graph[s].update(targets)
        if not graph:
            return ()
        sccs = _tarjan_sccs(graph)
        comp_of = {n: i for i, comp in enumerate(sccs) for n in comp}
        preds: Dict[int, Set[int]] = {i: set() for i in range(len(sccs))}
        for s, targets in graph.items():
            for t in targets:
                if comp_of[s] != comp_of[t]:
                    preds[comp_of[t]].add(comp_of[s])
        # Longest-path levels over the (acyclic) SCC condensation.
        level: Dict[int, int] = {}
        for _ in range(len(sccs)):
            stable = True
            for i in range(len(sccs)):
                new = 1 + max((level.get(p, 0) for p in preds[i]), default=0)
                if level.get(i) != new:
                    level[i] = new
                    stable = False
            if stable:
                break
        by_level: Dict[int, List[str]] = {}
        for i, comp in enumerate(sccs):
            by_level.setdefault(level[i], []).extend(comp)
        strata = []
        for lvl in sorted(by_level):
            names = tuple(sorted(by_level[lvl]))
            members = set(names)
            fan_out = sum(len([t for t in graph[n] if t not in members])
                          for n in names)
            unstable_props = tuple(sorted(
                n for n in names if n in estimator_derived and graph[n]))
            strata.append(Stratum(index=lvl, properties=names,
                                  fan_out=fan_out,
                                  unstable=bool(unstable_props),
                                  unstable_properties=unstable_props))
        return tuple(strata)

    # -- entry point ----------------------------------------------------
    def run(self) -> VerifyAnalysis:
        origin: Optional[ClassOfDesignObjects] = None
        if self.start:
            origin = self.layer.cdo(self.start)
            scope = list(origin.walk())
        else:
            scope = list(self.layer.all_cdos())
        regions: Dict[str, CdoRegion] = {}
        proofs: List[DeadBranchProof] = []
        for cdo in scope:
            applicable = [c for c in self.constraints
                          if c.applies_to(cdo, self.aliases)]
            cdo_proofs = self._dead_proofs(cdo, applicable)
            proofs.extend(cdo_proofs)
            regions[cdo.qualified_name] = self._region(cdo, applicable,
                                                       cdo_proofs)
        unsat_cores, infeasible = self._unsat_cores(origin)
        return VerifyAnalysis(
            layer_name=self.layer.name, epoch=self.layer.epoch,
            requirements=tuple(sorted(self.given.items(),
                                      key=lambda kv: kv[0])),
            start=self.start, regions=regions, proofs=tuple(proofs),
            unsat_cores=tuple(unsat_cores),
            infeasible_regions=tuple(infeasible),
            strata=self._strata())


# ----------------------------------------------------------------------
# Epoch-cached entry point
# ----------------------------------------------------------------------

_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def analyze_layer(layer: "DesignSpaceLayer",
                  requirements: Sequence[Tuple[str, object]] = (),
                  start: Optional[str] = None) -> VerifyAnalysis:
    """Run (or replay) the verifier for ``layer``.

    Results are cached per ``(layer.epoch, requirements, start)``; any
    mutation bumps the epoch, so a repeated verify of an unchanged layer
    is a dictionary lookup.  Unhashable requirement values simply skip
    the cache.
    """
    given: Given = tuple(sorted(dict(requirements).items(),
                                key=lambda kv: kv[0]))
    epoch = layer.epoch
    key = (epoch, given, start)
    per_layer = _CACHE.get(layer)
    if per_layer is not None:
        try:
            hit = per_layer.get(key)
        except TypeError:
            hit = None
        if hit is not None:
            return hit
    analysis = _Analyzer(layer, given, start).run()
    if per_layer is None:
        per_layer = _CACHE.setdefault(layer, {})
    for stale in [k for k in per_layer if k[0] != epoch]:
        del per_layer[stale]
    try:
        per_layer[key] = analysis
    except TypeError:
        pass
    return analysis
