"""Abstract value domains for the design-space verifier.

The verifier reasons about property values without enumerating cores or
opening sessions.  Its abstract values form a small lattice:

* :data:`TOP` — no information (``⊤``); any concrete value is possible.
* :class:`Interval` — a closed numeric range, possibly unbounded on
  either side (``±inf``).  Used for quantitative properties
  (:class:`~repro.core.values.IntRange`, ``RealRange``) where *exact
  narrowing* is possible through arithmetic relations.
* :class:`FiniteSet` — an explicit, ordered set of concrete values.
  Used for qualitative properties (:class:`~repro.core.values.EnumDomain`)
  and for resolved parametric domains (powers of two, divisors).

``meet`` refines (intersection of concretizations), ``join`` merges
(union, over-approximated).  Unresolvable domains — predicates, ``Any``,
parametric domains whose bound is still symbolic — abstract to
:data:`TOP`; that is the verifier's *widening* point: no claim is ever
made about them, so every proof built on the lattice stays sound.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.core import values as _values
from repro.errors import DomainError

#: Product/enumeration caps: above these the verifier widens instead of
#: enumerating.  Small on purpose — the analysis must stay near-free.
MAX_FINITE = 64


class _Top:
    """Singleton 'no information' element."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"

    def describe(self) -> str:
        return "any"


TOP = _Top()


def _is_number(value: object) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


@dataclass(frozen=True)
class Interval:
    """Closed numeric interval; ``lo > hi`` encodes the empty region."""

    lo: float
    hi: float

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    def contains(self, value: object) -> bool:
        return _is_number(value) and self.lo <= float(value) <= self.hi  # type: ignore[arg-type]

    def describe(self) -> str:
        if self.is_empty:
            return "empty"

        def side(v: float) -> str:
            if v == float("-inf"):
                return "-inf"
            if v == float("inf"):
                return "+inf"
            if float(v).is_integer():
                return str(int(v))
            return repr(v)

        return f"[{side(self.lo)}, {side(self.hi)}]"


@dataclass(frozen=True)
class FiniteSet:
    """An explicit set of concrete values, deduplicated and repr-sorted."""

    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        seen = []
        for v in self.values:
            if not any(v == s and type(v) is type(s) for s in seen):
                seen.append(v)
        seen.sort(key=repr)
        object.__setattr__(self, "values", tuple(seen))

    @property
    def is_empty(self) -> bool:
        return not self.values

    def contains(self, value: object) -> bool:
        return any(value == v for v in self.values)

    def describe(self) -> str:
        if self.is_empty:
            return "empty"
        return "{" + ", ".join(repr(v) for v in self.values) + "}"


AbstractValue = Union[_Top, Interval, FiniteSet]


def is_empty(value: AbstractValue) -> bool:
    """Whether the abstract value denotes the empty set of concretes."""
    if isinstance(value, (Interval, FiniteSet)):
        return value.is_empty
    return False


def describe(value: AbstractValue) -> str:
    return value.describe()


def meet(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Greatest lower bound: over-approximates the intersection."""
    if isinstance(a, _Top):
        return b
    if isinstance(b, _Top):
        return a
    if isinstance(a, Interval) and isinstance(b, Interval):
        return Interval(max(a.lo, b.lo), min(a.hi, b.hi))
    if isinstance(a, FiniteSet) and isinstance(b, FiniteSet):
        return FiniteSet(tuple(v for v in a.values if b.contains(v)))
    # Mixed: keep the finite-set members that fall inside the interval
    # (non-numeric members cannot be in a numeric interval).
    fset = a if isinstance(a, FiniteSet) else b
    ival = a if isinstance(a, Interval) else b
    assert isinstance(fset, FiniteSet) and isinstance(ival, Interval)
    return FiniteSet(tuple(v for v in fset.values if ival.contains(v)))


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: over-approximates the union."""
    if isinstance(a, _Top) or isinstance(b, _Top):
        return TOP
    if isinstance(a, Interval) and isinstance(b, Interval):
        if a.is_empty:
            return b
        if b.is_empty:
            return a
        return Interval(min(a.lo, b.lo), max(a.hi, b.hi))
    if isinstance(a, FiniteSet) and isinstance(b, FiniteSet):
        return FiniteSet(a.values + b.values)
    fset = a if isinstance(a, FiniteSet) else b
    ival = a if isinstance(a, Interval) else b
    assert isinstance(fset, FiniteSet) and isinstance(ival, Interval)
    if fset.is_empty:
        return ival
    if not all(_is_number(v) for v in fset.values):
        return TOP
    nums = [float(v) for v in fset.values]  # type: ignore[arg-type]
    if ival.is_empty:
        return Interval(min(nums), max(nums))
    return Interval(min(ival.lo, min(nums)), max(ival.hi, max(nums)))


# ----------------------------------------------------------------------
# Abstraction of the concrete value domains (repro.core.values)
# ----------------------------------------------------------------------

def _powers(domain: "_values.PowerOfTwoDomain",
            bound: Optional[int]) -> Optional[Tuple[int, ...]]:
    if bound is None:
        return None
    out = []
    v = domain.min_value
    while v <= bound:
        out.append(v)
        if len(out) > MAX_FINITE:
            return None
        v *= 2
    return tuple(out)


def _divisors(bound: Optional[int]) -> Optional[Tuple[int, ...]]:
    if bound is None or bound <= 0:
        return None
    out = [d for d in range(1, bound + 1) if bound % d == 0]
    if len(out) > MAX_FINITE:
        return None
    return tuple(out)


def abstract_of(domain: "_values.Domain",
                context: Optional[Mapping[str, object]] = None) -> AbstractValue:
    """Sound abstraction of a concrete domain.

    ``context`` supplies property values (given requirements, pinned
    generalized options) used to resolve parametric bounds.  Anything
    the lattice cannot represent exactly widens to :data:`TOP`.
    """
    if isinstance(domain, _values.EnumDomain):
        return FiniteSet(tuple(domain.options))
    if isinstance(domain, _values.IntRange):
        lo = float("-inf") if domain.lo is None else float(domain.lo)
        hi = float("inf") if domain.hi is None else float(domain.hi)
        return Interval(lo, hi)
    if isinstance(domain, _values.RealRange):
        lo = float("-inf") if domain.lo is None else float(domain.lo)
        hi = float("inf") if domain.hi is None else float(domain.hi)
        return Interval(lo, hi)
    if isinstance(domain, _values.PowerOfTwoDomain):
        try:
            bound = domain._resolved_max(context)
        except DomainError:
            return TOP
        powers = _powers(domain, bound)
        if powers is not None:
            return FiniteSet(powers)
        return Interval(float(domain.min_value), float("inf"))
    if isinstance(domain, _values.DivisorDomain):
        try:
            bound = domain._resolved(context)
        except DomainError:
            return TOP
        divisors = _divisors(bound)
        if divisors is not None:
            return FiniteSet(divisors)
        if bound is not None:
            return Interval(1.0, float(bound))
        return Interval(1.0, float("inf"))
    # PredicateDomain samples are examples, not an enumeration; AnyDomain
    # and unknown domain classes carry no static structure.  Widen.
    return TOP


def finite_values(domain: "_values.Domain",
                  context: Optional[Mapping[str, object]] = None
                  ) -> Optional[Tuple[object, ...]]:
    """The *complete* concrete enumeration of a domain, or ``None``.

    Unlike :meth:`Domain.sample` this never truncates: a returned tuple
    provably contains every value the domain admits under ``context``,
    which is what makes universally-quantified proofs over it sound.
    """
    if isinstance(domain, _values.EnumDomain):
        return tuple(domain.options)
    if isinstance(domain, _values.IntRange):
        if not domain.is_finite():
            return None
        assert domain.lo is not None and domain.hi is not None
        if domain.hi - domain.lo + 1 > MAX_FINITE:
            return None
        return tuple(range(domain.lo, domain.hi + 1))
    if isinstance(domain, _values.PowerOfTwoDomain):
        try:
            bound = domain._resolved_max(context)
        except DomainError:
            return None
        return _powers(domain, bound)
    if isinstance(domain, _values.DivisorDomain):
        try:
            bound = domain._resolved(context)
        except DomainError:
            return None
        return _divisors(bound)
    return None
