"""Rendering for verifier runs: analysis + diagnostics in one report."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.lint.diagnostics import LintReport, Severity
from repro.core.verify.domains import describe
from repro.core.verify.engine import VerifyAnalysis


class VerifyReport:
    """One verifier run: the raw :class:`VerifyAnalysis` plus the DSL1xx
    diagnostics rendered from it through the lint pipeline."""

    def __init__(self, analysis: VerifyAnalysis, lint: LintReport):
        self.analysis = analysis
        self.lint = lint

    @property
    def layer_name(self) -> str:
        return self.analysis.layer_name

    @property
    def diagnostics(self) -> LintReport:
        return self.lint

    def clean(self) -> bool:
        return self.lint.clean

    def has_at_least(self, threshold: Severity) -> bool:
        return self.lint.has_at_least(threshold)

    def summary(self) -> str:
        mask = len(self.analysis.prune_mask())
        return (f"{self.lint.summary()}; {len(self.analysis.proofs)} "
                f"dead-branch proof(s) ({mask} maskable), "
                f"{len(self.analysis.unsat_cores)} unsat core(s), "
                f"{len(self.analysis.strata)} stratum/strata")

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        a = self.analysis
        lines: List[str] = [f"verify report for layer {a.layer_name!r} "
                            f"(epoch {a.epoch})"]
        if a.start:
            lines.append(f"  start: {a.start}")
        if a.requirements:
            lines.append("  requirements: " + ", ".join(
                f"{n}={v!r}" for n, v in a.requirements))
        lines.append("")
        lines.append(self.lint.render_text())
        narrowing = [(q, r) for q, r in sorted(a.regions.items())
                     if r.narrowed or r.merit_intervals or r.empty]
        if narrowing:
            lines.append("")
            lines.append("feasible regions:")
            for qname, region in narrowing:
                tag = " EMPTY" if region.empty else ""
                lines.append(f"  {qname}: {region.core_count} core(s){tag}")
                for name in region.narrowed:
                    lines.append(f"    {name} in "
                                 f"{describe(region.properties[name])}")
                for metric, iv in sorted(region.merit_intervals.items()):
                    lines.append(f"    merit {metric} in {iv.describe()}")
                if region.widened:
                    lines.append("    widened: "
                                 + ", ".join(region.widened))
        if a.strata:
            lines.append("")
            lines.append("constraint strata (independent -> dependent):")
            for stratum in a.strata:
                flag = "  [widening-unstable]" if stratum.unstable else ""
                lines.append(f"  {stratum.index}: "
                             f"{', '.join(stratum.properties)} "
                             f"(fan-out {stratum.fan_out}){flag}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "analysis": self.analysis.to_dict(),
            "diagnostics": self.lint.to_dict(),
            "summary": self.summary(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VerifyReport {self.layer_name} {self.summary()}>"
