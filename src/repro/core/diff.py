"""Diffing design space layers.

The paper's layer is "open": it references "populations of cores which
are constantly increasing, or changing".  When an IP provider ships a
new library revision — or a design environment evolves its hierarchy —
the maintainers need to see what changed in design-space terms, not as
a text diff.  This module compares two layers structurally:

* hierarchy: CDOs added/removed, properties added/removed/redefined;
* libraries: cores added/removed, cores whose position (property
  values) or figures of merit moved, with per-metric deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.designobject import DesignObject
from repro.core.layer import DesignSpaceLayer
from repro.core.properties import Property


@dataclass
class MeritDelta:
    """One figure of merit that moved between revisions."""

    core: str
    metric: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / abs(self.before)

    def describe(self) -> str:
        return (f"{self.core}.{self.metric}: {self.before:g} -> "
                f"{self.after:g} ({self.relative:+.1%})")


@dataclass
class LayerDiff:
    """Structural difference between two layers."""

    added_cdos: List[str] = field(default_factory=list)
    removed_cdos: List[str] = field(default_factory=list)
    added_properties: List[str] = field(default_factory=list)
    removed_properties: List[str] = field(default_factory=list)
    added_cores: List[str] = field(default_factory=list)
    removed_cores: List[str] = field(default_factory=list)
    moved_cores: List[str] = field(default_factory=list)
    merit_deltas: List[MeritDelta] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not any((self.added_cdos, self.removed_cdos,
                        self.added_properties, self.removed_properties,
                        self.added_cores, self.removed_cores,
                        self.moved_cores, self.merit_deltas))

    def describe(self) -> str:
        if self.is_empty:
            return "layers are structurally identical"
        lines: List[str] = []
        for label, items in (
                ("CDOs added", self.added_cdos),
                ("CDOs removed", self.removed_cdos),
                ("properties added", self.added_properties),
                ("properties removed", self.removed_properties),
                ("cores added", self.added_cores),
                ("cores removed", self.removed_cores),
                ("cores repositioned", self.moved_cores)):
            if items:
                lines.append(f"{label}: {', '.join(sorted(items))}")
        if self.merit_deltas:
            lines.append("figures of merit moved:")
            lines += [f"  {delta.describe()}"
                      for delta in self.merit_deltas]
        return "\n".join(lines)


def _property_index(layer: DesignSpaceLayer) -> Dict[str, Property]:
    index: Dict[str, Property] = {}
    for cdo in layer.all_cdos():
        for prop in cdo.own_properties:
            index[f"{prop.name}@{cdo.qualified_name}"] = prop
    return index


def _core_index(layer: DesignSpaceLayer) -> Dict[str, DesignObject]:
    index: Dict[str, DesignObject] = {}
    for library in layer.libraries.libraries:
        for core in library:
            index[f"{library.name}/{core.name}"] = core
    return index


def diff_layers(old: DesignSpaceLayer, new: DesignSpaceLayer,
                merit_tolerance: float = 1e-9) -> LayerDiff:
    """Compare two layers structurally.

    ``merit_tolerance`` is the relative change below which a figure of
    merit counts as unchanged (re-characterization noise).
    """
    diff = LayerDiff()

    old_cdos = {c.qualified_name for c in old.all_cdos()}
    new_cdos = {c.qualified_name for c in new.all_cdos()}
    diff.added_cdos = sorted(new_cdos - old_cdos)
    diff.removed_cdos = sorted(old_cdos - new_cdos)

    old_props = _property_index(old)
    new_props = _property_index(new)
    diff.added_properties = sorted(set(new_props) - set(old_props))
    diff.removed_properties = sorted(set(old_props) - set(new_props))

    old_cores = _core_index(old)
    new_cores = _core_index(new)
    diff.added_cores = sorted(set(new_cores) - set(old_cores))
    diff.removed_cores = sorted(set(old_cores) - set(new_cores))

    for key in sorted(set(old_cores) & set(new_cores)):
        before, after = old_cores[key], new_cores[key]
        if before.cdo_name != after.cdo_name or \
                before.properties != after.properties:
            diff.moved_cores.append(key)
        metrics = set(before.merits) | set(after.merits)
        for metric in sorted(metrics):
            b = before.merit_or_none(metric)
            a = after.merit_or_none(metric)
            if b is None or a is None:
                if b != a:
                    diff.merit_deltas.append(
                        MeritDelta(key, metric, b or 0.0, a or 0.0))
                continue
            if b == 0 and a == 0:
                continue
            scale = max(abs(b), abs(a))
            if abs(a - b) / scale > merit_tolerance:
                diff.merit_deltas.append(MeritDelta(key, metric, b, a))
    return diff
