"""Span profiler: where did a traced run spend its time?

Aggregates any trace — serial or merged-parallel — into self/cumulative
time per *span site* (an event kind refined by its discriminating
payload field: ``prune``, ``constraint_fired[cc_area]``,
``worker_task[Family='f3']``, ...).  Two renderings:

* a **top-N table** of sites ordered by self time (time spent in the
  span itself, children subtracted) — the "what is hot" view;
* an indentation-nested **flame tree** that merges sibling spans with
  the same site, so a merged parallel trace collapses into one line per
  branch shape instead of one line per event — the "where does the time
  nest" view.  Both have text and JSON forms.

Self time is computed structurally (parent minus direct children), not
from timestamps, so absorbed worker spans — whose clocks started inside
the worker — profile correctly after the engine's deterministic merge.

Surfaces: :func:`profile_events` here, ``repro profile <trace.jsonl>``
on the CLI, and the shell's ``profile`` command.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.core.obs.events import TraceEvent

EventLike = Union[TraceEvent, Mapping[str, Any]]

#: Payload keys that refine an event kind into a profiling site, tried
#: in order (``prune`` stays ``prune``; ``constraint_fired`` becomes
#: ``constraint_fired[cc_area]``).
SITE_KEYS = ("constraint", "tool", "issue", "branch", "owner", "rule",
             "source", "name")


def _row(event: EventLike) -> Dict[str, Any]:
    if isinstance(event, TraceEvent):
        return event.to_dict()
    return dict(event)


def event_site(row: Mapping[str, Any]) -> str:
    """The profiling site label of one event row."""
    kind = str(row.get("kind", "?"))
    payload = row.get("payload") or {}
    for key in SITE_KEYS:
        if key in payload:
            return f"{kind}[{payload[key]}]"
    return kind


@dataclass
class SiteStats:
    """Aggregated timing of one site across a whole trace."""

    site: str
    kind: str
    count: int = 0
    #: Summed span durations (an instant event contributes 0).
    cum_s: float = 0.0
    #: Summed durations minus direct children — the time the site itself
    #: burned.
    self_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "count": self.count,
            "cum_ms": round(self.cum_s * 1e3, 3),
            "self_ms": round(self.self_s * 1e3, 3),
        }


class SpanProfile:
    """The aggregated profile of one trace (see :func:`profile_events`)."""

    def __init__(self, sites: List[SiteStats], flame: List[Dict[str, Any]],
                 events: int, spans: int, total_s: float):
        #: Per-site aggregates, ordered by self time descending.
        self.sites = sites
        #: Nested flame tree (site-merged; JSON-ready).
        self.flame = flame
        self.events = events
        self.spans = spans
        #: Summed root-span time — the profiled wall time.
        self.total_s = total_s

    # -- renderings ---------------------------------------------------
    def render_table(self, top: int = 20) -> str:
        """Top-N sites by self time, fixed-width text."""
        lines = [f"span profile: {self.events} events, {self.spans} spans,"
                 f" {self.total_s * 1e3:.3f} ms total",
                 f"{'site':<44} {'count':>6} {'cum ms':>10} {'self ms':>10}"]
        for stats in self.sites[:max(top, 0)]:
            lines.append(f"{stats.site[:44]:<44} {stats.count:>6} "
                         f"{stats.cum_s * 1e3:>10.3f} "
                         f"{stats.self_s * 1e3:>10.3f}")
        if len(self.sites) > top > 0:
            lines.append(f"... {len(self.sites) - top} more site(s)")
        return "\n".join(lines)

    def render_flame(self, max_depth: Optional[int] = None) -> str:
        """The indentation-nested flame tree as text."""
        lines: List[str] = []
        self._render_nodes(self.flame, 0, max_depth, lines)
        return "\n".join(lines) if lines else "(empty trace)"

    def _render_nodes(self, nodes: List[Dict[str, Any]], depth: int,
                      max_depth: Optional[int], lines: List[str]) -> None:
        if max_depth is not None and depth >= max_depth:
            return
        for node in nodes:
            indent = "  " * depth
            bits = [f"{indent}{node['site']}"]
            if node.get("cum_ms"):
                bits.append(f"{node['cum_ms']:.3f} ms")
                if node.get("self_ms") != node.get("cum_ms"):
                    bits.append(f"(self {node['self_ms']:.3f} ms)")
            if node.get("count", 1) != 1:
                bits.append(f"x{node['count']}")
            lines.append("  ".join(bits))
            self._render_nodes(node.get("children", []), depth + 1,
                               max_depth, lines)

    def to_dict(self, top: int = 0) -> Dict[str, Any]:
        """JSON form: summary + per-site table + nested flame tree."""
        sites = self.sites if top <= 0 else self.sites[:top]
        return {
            "events": self.events,
            "spans": self.spans,
            "total_ms": round(self.total_s * 1e3, 3),
            "sites": [stats.to_dict() for stats in sites],
            "flame": self.flame,
        }

    def site(self, label: str) -> Optional[SiteStats]:
        """Lookup one site's aggregate by exact label."""
        for stats in self.sites:
            if stats.site == label:
                return stats
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SpanProfile {self.events} events "
                f"{len(self.sites)} sites {self.total_s * 1e3:.3f} ms>")


def profile_events(events: Iterable[EventLike]) -> SpanProfile:
    """Aggregate a trace into a :class:`SpanProfile`.

    Accepts :class:`~repro.core.obs.events.TraceEvent` objects or the
    plain dicts of a JSONL trace file.  Events nest by span ``parent``
    ids; timeline order is ``(elapsed_s, seq)`` exactly as in the
    timeline exporter.
    """
    rows = sorted((_row(e) for e in events),
                  key=lambda r: (float(r.get("elapsed_s", 0.0)),
                                 int(r.get("seq", 0))))
    span_ids = {row["span"] for row in rows if row.get("span") is not None}
    children: Dict[Any, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for row in rows:
        parent = row.get("parent")
        if parent is not None and parent in span_ids:
            children.setdefault(parent, []).append(row)
        else:
            roots.append(row)

    def duration(row: Mapping[str, Any]) -> float:
        value = row.get("duration_s")
        return float(value) if value is not None else 0.0

    def self_time(row: Mapping[str, Any]) -> float:
        if row.get("duration_s") is None:
            return 0.0
        nested = sum(duration(child)
                     for child in children.get(row.get("span"), []))
        return max(duration(row) - nested, 0.0)

    # per-site aggregation over every event
    by_site: "OrderedDict[str, SiteStats]" = OrderedDict()
    spans = 0
    for row in rows:
        if row.get("duration_s") is not None:
            spans += 1
        label = event_site(row)
        stats = by_site.get(label)
        if stats is None:
            stats = SiteStats(site=label, kind=str(row.get("kind", "?")))
            by_site[label] = stats
        stats.count += 1
        stats.cum_s += duration(row)
        stats.self_s += self_time(row)
    sites = sorted(by_site.values(),
                   key=lambda s: (-s.self_s, -s.cum_s, s.site))

    def flame_nodes(level: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        groups: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        for row in level:
            groups.setdefault(event_site(row), []).append(row)
        nodes: List[Dict[str, Any]] = []
        for label, members in groups.items():
            nested: List[Dict[str, Any]] = []
            for member in members:
                if member.get("span") is not None:
                    nested.extend(children.get(member["span"], []))
            node: Dict[str, Any] = {
                "site": label,
                "kind": str(members[0].get("kind", "?")),
                "count": len(members),
                "cum_ms": round(sum(duration(m) for m in members) * 1e3, 3),
                "self_ms": round(sum(self_time(m) for m in members) * 1e3,
                                 3),
            }
            kids = flame_nodes(nested) if nested else []
            if kids:
                node["children"] = kids
            nodes.append(node)
        return nodes

    total_s = sum(duration(row) for row in roots)
    return SpanProfile(sites=sites, flame=flame_nodes(roots),
                       events=len(rows), spans=spans, total_s=total_s)
