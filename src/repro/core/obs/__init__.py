"""Observability for the design space layer.

``repro.core.obs`` is the instrumentation subsystem: a structured trace
of exploration events (:mod:`~repro.core.obs.events`), a metrics
registry (:mod:`~repro.core.obs.metrics`), the recorders hot paths talk
to (:mod:`~repro.core.obs.recorder`), distributed-tracing plumbing for
parallel exploration (:mod:`~repro.core.obs.context`), a span profiler
(:mod:`~repro.core.obs.profile`), exporters
(:mod:`~repro.core.obs.export`) and trace replay
(:mod:`~repro.core.obs.replay`).

Replay is intentionally *not* imported here: it needs
:class:`~repro.core.session.ExplorationSession`, which would make this
package circular with :mod:`repro.core.layer` (the layer imports the
recorder).  Import it as ``from repro.core.obs import replay`` — by the
time user code does that, the core modules are fully initialised.
"""

from repro.core.obs.context import (
    TraceContext,
    WorkerTraceBuffer,
    adaptive_sample_rate,
    canonical_trace_bytes,
    canonical_trace_digest,
    canonical_trace_events,
)
from repro.core.obs.events import (
    ACKNOWLEDGE,
    CACHE_HIT,
    CACHE_MISS,
    CHECKPOINT,
    CONSTRAINT_FIRED,
    DECIDE,
    ESTIMATE_INVOKED,
    EVENT_KINDS,
    INDEX_REBUILD,
    LINT_RUN,
    MUTATION_KINDS,
    PRUNE,
    REQUIRE,
    RESTORE,
    RETRACT,
    SESSION_OPEN,
    UNDO,
    WORKER_TASK,
    TraceEvent,
)
from repro.core.obs.export import (
    dumps_jsonl,
    read_jsonl,
    render_timeline,
    summarize,
    summarize_dict,
    write_jsonl,
)
from repro.core.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.core.obs.profile import (
    SiteStats,
    SpanProfile,
    profile_events,
)
from repro.core.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
)

__all__ = [
    "ACKNOWLEDGE",
    "CACHE_HIT",
    "CACHE_MISS",
    "CHECKPOINT",
    "CONSTRAINT_FIRED",
    "DECIDE",
    "DEFAULT_BUCKETS",
    "ESTIMATE_INVOKED",
    "EVENT_KINDS",
    "INDEX_REBUILD",
    "LINT_RUN",
    "MUTATION_KINDS",
    "NULL_RECORDER",
    "PRUNE",
    "REQUIRE",
    "RESTORE",
    "RETRACT",
    "SESSION_OPEN",
    "UNDO",
    "WORKER_TASK",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "SiteStats",
    "Span",
    "SpanProfile",
    "TraceContext",
    "TraceEvent",
    "TraceRecorder",
    "WorkerTraceBuffer",
    "adaptive_sample_rate",
    "canonical_trace_bytes",
    "canonical_trace_digest",
    "canonical_trace_events",
    "dumps_jsonl",
    "profile_events",
    "read_jsonl",
    "render_timeline",
    "summarize",
    "summarize_dict",
    "write_jsonl",
]
