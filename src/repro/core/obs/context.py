"""Distributed tracing plumbing for parallel exploration.

Parallel branch evaluation is shared-nothing by design: process workers
hydrate their own layers from a :class:`~repro.core.serialize.LayerSnapshot`
and never see the parent layer's :class:`~repro.core.obs.recorder.TraceRecorder`.
This module is the bridge that lets the *record of the exploration
process* survive that boundary anyway:

* :class:`TraceContext` — a small, picklable identity card (trace id,
  parent span id, per-branch sampling decision) the engine threads
  through :class:`~repro.core.explore.problem.ExplorationProblem` into
  every branch task and into the pool initializer.
* :class:`WorkerTraceBuffer` — a bounded, drop-counted buffer of
  plain-data events a worker fills while evaluating one branch.  The
  buffer travels back inside :class:`~repro.core.explore.parallel.BranchResult`
  as a list of dicts and the engine merges it deterministically
  (task-index order, seq renumbering, spans reparented under the
  corresponding ``branch_open`` anchor) via
  :meth:`TraceRecorder.absorb <repro.core.obs.recorder.TraceRecorder.absorb>`.
* :func:`canonical_trace_bytes` — the byte-stable serialization of a
  merged trace.  Raw events carry wall-clock timestamps, worker ids,
  and scheduling-dependent hydration/chunking records; the canonical
  form strips exactly those volatile parts so the remainder is
  byte-identical across backends, job counts, and chunk sizes — the
  trace-level analogue of the frontier digest.

Sampling is deterministic: the decision for branch *i* is a pure
function of ``(trace_id, i)``, and the adaptive default rate depends
only on the fan-out, never on scheduling — so the *set* of traced
branches is identical across all pool configurations.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.obs import events as ev
from repro.core.obs.events import TraceEvent

#: Default per-task event capacity of a :class:`WorkerTraceBuffer`.
DEFAULT_BUFFER_LIMIT = 2048

#: Fan-out size up to which every branch is traced by default.
FULL_TRACE_TASKS = 16

#: Adaptive sampling never drops below this rate.
MIN_SAMPLE_RATE = 0.02

#: Event kinds that depend on scheduling (which worker hydrated, how
#: chunks were cut/stolen) and are therefore excluded from the
#: canonical byte form of a trace.
VOLATILE_KINDS = frozenset({
    ev.WORKER_HYDRATE, ev.WORKER_REBUILD, ev.CHUNK_DISPATCH, ev.CHUNK_STEAL,
})

#: Payload keys whose values are timing- or placement-dependent
#: (``events``/``dropped`` counts include scheduling-dependent
#: initializer records drained by whichever sampled task ran first).
VOLATILE_PAYLOAD_KEYS = frozenset({
    "worker", "seconds", "utilization", "hydrate_s", "elapsed_ms",
    "events", "dropped", "jobs", "backend", "chunk_size",
})


def adaptive_sample_rate(tasks: int) -> float:
    """Default per-branch sampling rate for a fan-out of ``tasks``.

    Small fan-outs are traced in full; past :data:`FULL_TRACE_TASKS`
    the rate decays as ``FULL_TRACE_TASKS / tasks`` (floored at
    :data:`MIN_SAMPLE_RATE`) so the expected number of traced branches
    stays roughly constant and the overhead budget holds no matter how
    wide the root fan-out grows.  The result depends only on the task
    count — identical across job counts and backends.
    """
    if tasks <= FULL_TRACE_TASKS:
        return 1.0
    return max(FULL_TRACE_TASKS / float(tasks), MIN_SAMPLE_RATE)


@dataclass(frozen=True)
class TraceContext:
    """Picklable tracing identity threaded through parallel dispatch.

    The engine derives one base context per traced run
    (:meth:`derive`), stamps each branch task with
    :meth:`for_task`, and hands the base context to the pool
    initializer so even process startup hydration is attributable to
    the trace.  ``sampled`` is a pure function of
    ``(trace_id, task_index)`` — no randomness, no clock — so the set
    of traced branches is reproducible and scheduling-independent.
    """

    trace_id: str
    sample_rate: float = 1.0
    task_index: Optional[int] = None
    #: Span id of the parent-trace ``branch_open`` anchor this task's
    #: events will be reparented under (engine-assigned).
    parent_span: Optional[int] = None
    buffer_limit: int = DEFAULT_BUFFER_LIMIT

    @classmethod
    def derive(cls, *seed: Any, sample_rate: Optional[float] = None,
               tasks: int = 0, buffer_limit: int = DEFAULT_BUFFER_LIMIT,
               ) -> "TraceContext":
        """Build a context with a content-derived trace id.

        ``seed`` is any deterministic description of the run (the
        engine passes the problem's start/metrics/requirements/decision
        prefix plus the strategy name).  When ``sample_rate`` is None
        the adaptive default for ``tasks`` applies.
        """
        digest = hashlib.sha256(repr(seed).encode("utf-8")).hexdigest()
        rate = (adaptive_sample_rate(tasks)
                if sample_rate is None else float(sample_rate))
        rate = min(max(rate, 0.0), 1.0)
        return cls(trace_id=digest[:16], sample_rate=rate,
                   buffer_limit=int(buffer_limit))

    def for_task(self, index: int,
                 parent_span: Optional[int] = None) -> "TraceContext":
        """The per-branch context for task ``index``."""
        return replace(self, task_index=index, parent_span=parent_span)

    @property
    def sampled(self) -> bool:
        """Deterministic sampling decision for this task.

        A context without a task index (the base / initializer context)
        counts as sampled whenever the rate is non-zero, so process
        startup hydration is recorded iff any branch could be traced.
        """
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0 or self.task_index is None:
            return True
        token = f"{self.trace_id}:{self.task_index}".encode("utf-8")
        word = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
        return word / float(1 << 64) < self.sample_rate


class WorkerTraceBuffer:
    """Bounded per-task event buffer a worker fills while evaluating
    one branch.

    Exposes the recorder duck type (``enabled`` / :meth:`emit` /
    :meth:`span` / :meth:`wrap_tools` / :meth:`next_session`) so a
    :class:`~repro.core.explore.engine.SearchContext` can route its
    strategy events here without knowing it is running in a worker.
    Events are stored as plain dicts (the :meth:`TraceEvent.to_dict
    <repro.core.obs.events.TraceEvent.to_dict>` shape) so the drained
    buffer pickles across process boundaries without dragging clocks or
    locks along.  Once ``limit`` events are recorded further events are
    dropped and counted — a full buffer truncates the tail rather than
    growing without bound inside a worker.

    A buffer belongs to exactly one task on one thread; it is not (and
    need not be) thread-safe.
    """

    enabled = True

    def __init__(self, context: TraceContext,
                 clock: Callable[[], float] = time.perf_counter,
                 wall: Callable[[], float] = time.time):
        self.context = context
        self.limit = max(int(context.buffer_limit), 1)
        self.records: List[Dict[str, Any]] = []
        self.dropped = 0
        self._clock = clock
        self._wall = wall
        self._t0 = clock()
        self._seq = 0
        self._span_ids = 0
        self._span_stack: List[int] = []

    # -- recorder duck type -------------------------------------------
    def emit(self, kind: str, **payload: Any) -> Optional[Dict[str, Any]]:
        """Record one instantaneous event (dropped when full)."""
        return self._record(kind, payload, at=self._wall(),
                            elapsed_s=self._clock() - self._t0,
                            parent=self._current_span())

    def span(self, kind: str, **payload: Any) -> "_BufferSpan":
        return _BufferSpan(self, kind, payload)

    def emit_timed(self, kind: str, duration_s: float,
                   **payload: Any) -> Optional[Dict[str, Any]]:
        """Record an already-measured operation as a closed span."""
        return self._record(kind, payload, at=self._wall(),
                            elapsed_s=self._clock() - self._t0,
                            duration_s=float(duration_s),
                            span=self._next_span_id(),
                            parent=self._current_span())

    def wrap_tools(self, tools: Mapping[str, Callable]
                   ) -> Mapping[str, Callable]:
        """Estimation tools pass through — their spans belong to the
        worker layer's own recorder, not the branch buffer."""
        return tools

    def next_session(self) -> int:
        return 0

    # -- Span protocol (shared with TraceRecorder) --------------------
    def _next_span_id(self) -> int:
        self._span_ids += 1
        return self._span_ids

    def _current_span(self) -> Optional[int]:
        return self._span_stack[-1] if self._span_stack else None

    def _enter_span(self, span_id: int) -> Optional[int]:
        parent = self._current_span()
        self._span_stack.append(span_id)
        return parent

    def _finish_span(self, span: "_BufferSpan") -> None:
        end = self._clock()
        if self._span_stack and self._span_stack[-1] == span.span_id:
            self._span_stack.pop()
        else:  # pragma: no cover - defensive against misuse
            try:
                self._span_stack.remove(span.span_id)
            except ValueError:
                pass
        self._record(span.kind, span.payload, at=span._at,
                     elapsed_s=span._start - self._t0,
                     duration_s=end - span._start,
                     span=span.span_id, parent=span._parent)

    # -- internals ----------------------------------------------------
    def _record(self, kind: str, payload: Dict[str, Any], *, at: float,
                elapsed_s: float, duration_s: Optional[float] = None,
                span: Optional[int] = None, parent: Optional[int] = None,
                ) -> Optional[Dict[str, Any]]:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return None
        row: Dict[str, Any] = {
            "seq": self._seq,
            "kind": kind,
            "at": at,
            "elapsed_s": elapsed_s,
        }
        if duration_s is not None:
            row["duration_s"] = duration_s
        if span is not None:
            row["span"] = span
        if parent is not None:
            row["parent"] = parent
        if payload:
            row["payload"] = dict(payload)
        self._seq += 1
        self.records.append(row)
        return row

    def absorb_init(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Replay process-initializer records (startup hydration) into
        this buffer, nested under the current span."""
        for row in rows:
            self.emit_timed(str(row.get("kind", ev.WORKER_HYDRATE)),
                            float(row.get("duration_s", 0.0)),
                            **dict(row.get("payload") or {}))

    def drain(self) -> Tuple[List[Dict[str, Any]], int]:
        """The recorded plain-data events and the drop count."""
        return self.records, self.dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WorkerTraceBuffer {len(self.records)} events"
                f" dropped={self.dropped}>")


class _BufferSpan:
    """Span context manager over a :class:`WorkerTraceBuffer`.

    Mirrors :class:`repro.core.obs.recorder.Span` against the buffer's
    identical private protocol; kept separate so the buffer stays free
    of recorder imports and the record shape stays plain-data.
    """

    __slots__ = ("_buffer", "kind", "payload", "span_id", "_at",
                 "_start", "_parent")

    def __init__(self, buffer: WorkerTraceBuffer, kind: str,
                 payload: Dict[str, Any]):
        self._buffer = buffer
        self.kind = kind
        self.payload = payload
        self.span_id = buffer._next_span_id()
        self._at = 0.0
        self._start = 0.0
        self._parent: Optional[int] = None

    def __enter__(self) -> "_BufferSpan":
        buffer = self._buffer
        self._at = buffer._wall()
        self._start = buffer._clock()
        self._parent = buffer._enter_span(self.span_id)
        return self

    def note(self, **payload: Any) -> None:
        self.payload.update(payload)

    def __exit__(self, *exc: object) -> bool:
        self._buffer._finish_span(self)
        return False


# ----------------------------------------------------------------------
# canonical (byte-stable) trace form
# ----------------------------------------------------------------------
EventLike = Union[TraceEvent, Mapping[str, Any]]


def _event_row(event: EventLike) -> Dict[str, Any]:
    if isinstance(event, TraceEvent):
        return event.to_dict()
    return dict(event)


def canonical_trace_events(events: Iterable[EventLike]
                           ) -> List[Dict[str, Any]]:
    """The scheduling-independent projection of a trace.

    Drops timing fields (``at`` / ``elapsed_s`` / ``duration_s``),
    volatile payload keys (:data:`VOLATILE_PAYLOAD_KEYS`), and whole
    kinds that exist only because of scheduling
    (:data:`VOLATILE_KINDS`); renumbers ``seq`` densely and remaps
    span ids to their first-appearance order.  Two traces of the same
    exploration — any backend, any job count, any chunk size — project
    to the same list.
    """
    rows = sorted((_event_row(e) for e in events),
                  key=lambda r: int(r.get("seq", 0)))
    kept = [row for row in rows
            if str(row.get("kind", "?")) not in VOLATILE_KINDS]
    mapping: Dict[int, int] = {}
    for row in kept:
        for key in ("span", "parent"):
            sid = row.get(key)
            if sid is not None and sid not in mapping:
                mapping[sid] = len(mapping) + 1
    out: List[Dict[str, Any]] = []
    for index, row in enumerate(kept):
        item: Dict[str, Any] = {"seq": index,
                                "kind": str(row.get("kind", "?"))}
        if row.get("duration_s") is not None:
            item["timed"] = True
        if row.get("span") is not None:
            item["span"] = mapping[row["span"]]
        if row.get("parent") is not None:
            item["parent"] = mapping[row["parent"]]
        payload = {k: v for k, v in (row.get("payload") or {}).items()
                   if k not in VOLATILE_PAYLOAD_KEYS}
        if payload:
            item["payload"] = payload
        out.append(item)
    return out


def canonical_trace_bytes(events: Iterable[EventLike]) -> bytes:
    """Byte-stable serialization of :func:`canonical_trace_events`."""
    return json.dumps(canonical_trace_events(events), sort_keys=True,
                      separators=(",", ":"), default=repr).encode("utf-8")


def canonical_trace_digest(events: Iterable[EventLike]) -> str:
    """Short hex digest of the canonical byte form (for benchmarks)."""
    return hashlib.sha256(canonical_trace_bytes(events)).hexdigest()[:16]
