"""Recorders: the sink instrumented code talks to.

Two implementations share one duck-typed surface:

* :data:`NULL_RECORDER` (a :class:`NullRecorder`) — the default on every
  layer.  Every method is a constant-time no-op, so instrumented hot
  paths pay only an attribute load and a call; the 50k-core pruning
  benchmark measures the residue at well under the 3% budget.
* :class:`TraceRecorder` — appends :class:`~repro.core.obs.events.TraceEvent`
  records to an in-memory list, tracks span nesting, and feeds a
  :class:`~repro.core.obs.metrics.MetricsRegistry` as events arrive.

Instrumented code MUST guard any payload computation that is not free
behind ``recorder.enabled`` — the recorder cannot refuse work the caller
already did.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.obs import events as ev
from repro.core.obs.events import TraceEvent
from repro.core.obs.metrics import MetricsRegistry


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **payload: Any) -> None:
        """Attach payload to the span (no-op here)."""


NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: observes nothing, costs (almost) nothing."""

    enabled = False
    #: Empty, immutable event view (mirrors ``TraceRecorder.events``).
    events: tuple = ()

    def emit(self, kind: str, **payload: Any) -> None:
        return None

    def span(self, kind: str, **payload: Any) -> _NullSpan:
        return NULL_SPAN

    def wrap_tools(self, tools: Mapping[str, Callable]
                   ) -> Mapping[str, Callable]:
        """Estimation tools pass through untouched when disabled."""
        return tools

    def next_session(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRecorder>"


#: The shared disabled recorder every layer starts with.
NULL_RECORDER = NullRecorder()


class Span:
    """A timed region of the trace; a context manager.

    Entering pushes the span on the recorder's nesting stack (events
    emitted inside become its children); exiting emits one
    :class:`TraceEvent` carrying the measured ``duration_s``.  Use
    :meth:`note` inside the ``with`` block to attach result payload —
    after exit the event is frozen.
    """

    __slots__ = ("_recorder", "kind", "payload", "span_id", "_at",
                 "_start", "_parent")

    def __init__(self, recorder: "TraceRecorder", kind: str,
                 payload: Dict[str, Any]):
        self._recorder = recorder
        self.kind = kind
        self.payload = payload
        self.span_id = recorder._next_span_id()
        self._at = 0.0
        self._start = 0.0
        self._parent: Optional[int] = None

    def __enter__(self) -> "Span":
        recorder = self._recorder
        self._at = recorder._wall()
        self._start = recorder._clock()
        self._parent = recorder._current_span()
        recorder._push_span(self.span_id)
        return self

    def note(self, **payload: Any) -> None:
        """Merge payload into the span's event before it closes."""
        self.payload.update(payload)

    def __exit__(self, *exc: object) -> bool:
        self._recorder._finish_span(self)
        return False


class TraceRecorder:
    """Append-only event stream + derived metrics.

    The recorder is deliberately not thread-safe: a layer and its
    sessions are single-designer objects, and keeping ``emit`` to a list
    append is what makes the traced overhead budget hold.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 wall: Callable[[], float] = time.time):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: List[TraceEvent] = []
        self._clock = clock
        self._wall = wall
        self._t0 = clock()
        self._seq = 0
        self._span_ids = 0
        self._sessions = 0
        self._span_stack: List[int] = []

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _next_span_id(self) -> int:
        self._span_ids += 1
        return self._span_ids

    def _current_span(self) -> Optional[int]:
        return self._span_stack[-1] if self._span_stack else None

    def _push_span(self, span_id: int) -> None:
        self._span_stack.append(span_id)

    def next_session(self) -> int:
        """A fresh session id for a session announcing itself."""
        self._sessions += 1
        return self._sessions

    def clear(self) -> None:
        """Drop recorded events and start a fresh metrics registry."""
        self.events.clear()
        self.metrics = MetricsRegistry()
        self._span_stack.clear()
        self._t0 = self._clock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(self, kind: str, **payload: Any) -> TraceEvent:
        """Record one instantaneous event."""
        event = TraceEvent(
            seq=self._seq,
            kind=kind,
            at=self._wall(),
            elapsed_s=self._clock() - self._t0,
            payload=payload,
            parent=self._current_span(),
        )
        self._seq += 1
        self.events.append(event)
        self._update_metrics(event)
        return event

    def span(self, kind: str, **payload: Any) -> Span:
        """Open a timed span; the event is recorded when it closes."""
        return Span(self, kind, payload)

    def _finish_span(self, span: Span) -> None:
        end = self._clock()
        if self._span_stack and self._span_stack[-1] == span.span_id:
            self._span_stack.pop()
        else:  # pragma: no cover - defensive against misuse
            try:
                self._span_stack.remove(span.span_id)
            except ValueError:
                pass
        event = TraceEvent(
            seq=self._seq,
            kind=span.kind,
            at=span._at,
            elapsed_s=span._start - self._t0,
            payload=span.payload,
            duration_s=end - span._start,
            span=span.span_id,
            parent=span._parent,
        )
        self._seq += 1
        self.events.append(event)
        self._update_metrics(event)

    def wrap_tools(self, tools: Mapping[str, Callable]
                   ) -> Dict[str, Callable]:
        """Wrap estimation tools so each invocation records a span."""
        return {name: self._traced_tool(name, fn)
                for name, fn in tools.items()}

    def _traced_tool(self, name: str, fn: Callable) -> Callable:
        def invoke(bindings: Mapping[str, Any]) -> Any:
            with self.span(ev.ESTIMATE_INVOKED, tool=name) as span:
                value = fn(bindings)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    span.note(value=float(value))
            return value
        return invoke

    # ------------------------------------------------------------------
    # metrics derivation
    # ------------------------------------------------------------------
    def _update_metrics(self, event: TraceEvent) -> None:
        m = self.metrics
        kind = event.kind
        payload = event.payload
        m.counter("dsl_events_total", "trace events by kind",
                  kind=kind).inc()
        if kind == ev.PRUNE:
            if event.duration_s is not None:
                m.histogram("dsl_prune_seconds",
                            "wall time of actual pruning passes"
                            ).observe(event.duration_s)
            survivors = payload.get("survivors")
            if survivors is not None:
                m.gauge("dsl_surviving_cores",
                        "surviving-core count after the last prune"
                        ).set(survivors)
        elif kind in (ev.CACHE_HIT, ev.CACHE_MISS):
            result = "hit" if kind == ev.CACHE_HIT else "miss"
            m.counter("dsl_prune_cache_total",
                      "session prune-memo lookups", result=result).inc()
        elif kind == ev.CONSTRAINT_FIRED:
            m.counter("dsl_constraint_fired_total",
                      "consistency-constraint evaluations",
                      constraint=str(payload.get("constraint", "?"))).inc()
            if event.duration_s is not None:
                m.histogram("dsl_constraint_eval_seconds",
                            "wall time of CC relation evaluations"
                            ).observe(event.duration_s)
        elif kind == ev.ESTIMATE_INVOKED:
            m.counter("dsl_estimate_invocations_total",
                      "early estimation tool runs",
                      tool=str(payload.get("tool", "?"))).inc()
            if event.duration_s is not None:
                m.histogram("dsl_estimate_seconds",
                            "wall time of estimation tool runs"
                            ).observe(event.duration_s)
        elif kind == ev.INDEX_REBUILD:
            m.counter("dsl_index_rebuilds_total",
                      "core index (re)builds",
                      owner=str(payload.get("owner", "?"))).inc()
            if event.duration_s is not None:
                m.histogram("dsl_index_build_seconds",
                            "wall time of core index builds"
                            ).observe(event.duration_s)
            cores = payload.get("cores")
            if cores is not None:
                m.gauge("dsl_indexed_cores",
                        "cores in the most recently built index").set(cores)
        elif kind in (ev.REQUIRE, ev.DECIDE):
            stale = payload.get("stale")
            if stale is not None:
                m.histogram("dsl_reassessment_fanout",
                            "dependents marked stale per designer action",
                            buckets=(0, 1, 2, 4, 8, 16, 32)
                            ).observe(len(stale))
        elif kind == ev.LINT_RUN:
            if event.duration_s is not None:
                m.histogram("dsl_lint_seconds",
                            "wall time of lint runs"
                            ).observe(event.duration_s)
        elif kind == ev.EXPLORE_START:
            m.counter("dsl_explorations_total",
                      "automated exploration runs",
                      strategy=str(payload.get("strategy", "?"))).inc()
        elif kind == ev.BRANCH_OPEN:
            m.counter("dsl_explore_branches_total",
                      "decision branches considered by exploration",
                      result="opened").inc()
        elif kind == ev.BRANCH_PRUNED:
            m.counter("dsl_explore_branches_total",
                      "decision branches considered by exploration",
                      result="pruned",
                      reason=str(payload.get("reason", "?"))).inc()
        elif kind == ev.WORKER_HYDRATE:
            m.counter("dsl_worker_hydrates_total",
                      "worker layer hydrations / builds",
                      source=str(payload.get("source", "?"))
                      ).inc(int(payload.get("count", 1)))
            seconds = payload.get("seconds")
            if seconds is not None:
                m.histogram("dsl_worker_hydrate_seconds",
                            "wall time workers spent hydrating layers"
                            ).observe(float(seconds))
        elif kind == ev.WORKER_REBUILD:
            m.counter("dsl_worker_layer_rebuilds_total",
                      "per-task worker layer rebuilds (uncacheable factory)"
                      ).inc(int(payload.get("count", 1)))
        elif kind == ev.CHUNK_DISPATCH:
            m.counter("dsl_explore_chunks_total",
                      "chunks dispatched to parallel workers"
                      ).inc(int(payload.get("chunks", 1)))
            workers = payload.get("workers")
            if workers is not None:
                m.gauge("dsl_pool_workers",
                        "workers in the last parallel dispatch"
                        ).set(workers)
            utilization = payload.get("utilization")
            if utilization is not None:
                m.gauge("dsl_pool_utilization",
                        "busy worker-seconds over wall x workers of the "
                        "last dispatch").set(utilization)
        elif kind == ev.CHUNK_STEAL:
            m.counter("dsl_explore_steals_total",
                      "chunks stolen by idle workers"
                      ).inc(int(payload.get("count", 1)))
        elif kind == ev.FRONTIER_UPDATE:
            size = payload.get("size")
            if size is not None:
                m.gauge("dsl_frontier_size",
                        "non-dominated outcomes on the Pareto frontier"
                        ).set(size)
        elif kind == ev.VERIFY_RUN:
            if event.duration_s is not None:
                m.histogram("dsl_verify_seconds",
                            "wall time of semantic verifier runs"
                            ).observe(event.duration_s)
        elif kind == ev.DEAD_BRANCH_PROVED:
            m.counter("dsl_dead_branches_total",
                      "dead-branch proofs by proof kind",
                      kind=str(payload.get("proof_kind", "?"))).inc()
        elif kind == ev.UNSAT_CORE_FOUND:
            m.counter("dsl_unsat_cores_total",
                      "minimal unsat cores extracted").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecorder {len(self.events)} events>"
