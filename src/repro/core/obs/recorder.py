"""Recorders: the sink instrumented code talks to.

Two implementations share one duck-typed surface:

* :data:`NULL_RECORDER` (a :class:`NullRecorder`) — the default on every
  layer.  Every method is a constant-time no-op, so instrumented hot
  paths pay only an attribute load and a call; the 50k-core pruning
  benchmark measures the residue at well under the 3% budget.
* :class:`TraceRecorder` — appends :class:`~repro.core.obs.events.TraceEvent`
  records to an in-memory list, tracks span nesting, and feeds a
  :class:`~repro.core.obs.metrics.MetricsRegistry` as events arrive.

The trace recorder is safe under concurrent emitters: one lock guards
the sequence counter and event list, and span nesting stacks are kept
per thread, so sessions running on the thread/async exploration
backends can share the layer's recorder without corrupting the stream
(events interleave in emission order; per-thread parentage stays
correct).  Cross-*process* tracing instead travels through
:class:`~repro.core.obs.context.WorkerTraceBuffer` objects that the
engine merges deterministically via :meth:`TraceRecorder.absorb`.

Instrumented code MUST guard any payload computation that is not free
behind ``recorder.enabled`` — the recorder cannot refuse work the caller
already did.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.core.obs import events as ev
from repro.core.obs.events import TraceEvent
from repro.core.obs.metrics import MetricsRegistry


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **payload: Any) -> None:
        """Attach payload to the span (no-op here)."""


NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: observes nothing, costs (almost) nothing."""

    enabled = False
    #: Empty, immutable event view (mirrors ``TraceRecorder.events``).
    events: tuple = ()

    def emit(self, kind: str, **payload: Any) -> None:
        return None

    def span(self, kind: str, **payload: Any) -> _NullSpan:
        return NULL_SPAN

    def wrap_tools(self, tools: Mapping[str, Callable]
                   ) -> Mapping[str, Callable]:
        """Estimation tools pass through untouched when disabled."""
        return tools

    def next_session(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRecorder>"


#: The shared disabled recorder every layer starts with.
NULL_RECORDER = NullRecorder()


class Span:
    """A timed region of the trace; a context manager.

    Entering pushes the span on the recorder's nesting stack (events
    emitted inside become its children); exiting emits one
    :class:`TraceEvent` carrying the measured ``duration_s``.  Use
    :meth:`note` inside the ``with`` block to attach result payload —
    after exit the event is frozen.
    """

    __slots__ = ("_recorder", "kind", "payload", "span_id", "_at",
                 "_start", "_parent")

    def __init__(self, recorder: "TraceRecorder", kind: str,
                 payload: Dict[str, Any]):
        self._recorder = recorder
        self.kind = kind
        self.payload = payload
        self.span_id = recorder._next_span_id()
        self._at = 0.0
        self._start = 0.0
        self._parent: Optional[int] = None

    def __enter__(self) -> "Span":
        recorder = self._recorder
        self._at = recorder._wall()
        self._start = recorder._clock()
        self._parent = recorder._enter_span(self.span_id)
        return self

    def note(self, **payload: Any) -> None:
        """Merge payload into the span's event before it closes."""
        self.payload.update(payload)

    def __exit__(self, *exc: object) -> bool:
        self._recorder._finish_span(self)
        return False


class TraceRecorder:
    """Append-only event stream + derived metrics.

    Safe under concurrent emitters: ``_lock`` serializes sequence
    assignment and list appends, and span nesting is tracked per thread
    (keyed on ``threading.get_ident()``), so concurrent sessions on the
    thread/async backends interleave whole events without tearing and
    keep correct per-thread parentage.  The hot path stays one lock
    acquisition per event — the traced 50k-core walk holds its x1.10
    overhead budget (``benchmarks/test_bench_obs.py``).
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 wall: Callable[[], float] = time.time):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: List[TraceEvent] = []
        self._clock = clock
        self._wall = wall
        self._t0 = clock()
        self._seq = 0
        self._span_ids = 0
        self._sessions = 0
        self._lock = threading.Lock()
        #: Per-thread span nesting stacks, keyed by thread ident.
        self._span_stacks: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _next_span_id(self) -> int:
        with self._lock:
            self._span_ids += 1
            return self._span_ids

    def _current_span(self) -> Optional[int]:
        stack = self._span_stacks.get(threading.get_ident())
        return stack[-1] if stack else None

    def _enter_span(self, span_id: int) -> Optional[int]:
        """Push ``span_id`` on this thread's stack; return the parent."""
        with self._lock:
            stack = self._span_stacks.setdefault(threading.get_ident(), [])
            parent = stack[-1] if stack else None
            stack.append(span_id)
            return parent

    def next_session(self) -> int:
        """A fresh session id for a session announcing itself."""
        with self._lock:
            self._sessions += 1
            return self._sessions

    def clear(self) -> None:
        """Drop recorded events and start a fresh metrics registry."""
        with self._lock:
            self.events.clear()
            self.metrics = MetricsRegistry()
            self._span_stacks.clear()
            self._t0 = self._clock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(self, kind: str, **payload: Any) -> TraceEvent:
        """Record one instantaneous event."""
        at = self._wall()
        elapsed = self._clock() - self._t0
        with self._lock:
            stack = self._span_stacks.get(threading.get_ident())
            event = TraceEvent(
                seq=self._seq,
                kind=kind,
                at=at,
                elapsed_s=elapsed,
                payload=payload,
                parent=stack[-1] if stack else None,
            )
            self._seq += 1
            self.events.append(event)
        self._update_metrics(event)
        return event

    def emit_anchor(self, kind: str, **payload: Any) -> TraceEvent:
        """Record an instantaneous event that owns a span id.

        Anchors have no duration, but absorbed worker spans (and the
        timeline renderer) can parent under them — the engine anchors
        every parallel ``branch_open`` this way so each branch's worker
        trace nests under the decision that opened it.
        """
        at = self._wall()
        elapsed = self._clock() - self._t0
        with self._lock:
            self._span_ids += 1
            stack = self._span_stacks.get(threading.get_ident())
            event = TraceEvent(
                seq=self._seq,
                kind=kind,
                at=at,
                elapsed_s=elapsed,
                payload=payload,
                span=self._span_ids,
                parent=stack[-1] if stack else None,
            )
            self._seq += 1
            self.events.append(event)
        self._update_metrics(event)
        return event

    def span(self, kind: str, **payload: Any) -> Span:
        """Open a timed span; the event is recorded when it closes."""
        return Span(self, kind, payload)

    def _finish_span(self, span: Span) -> None:
        end = self._clock()
        with self._lock:
            stack = self._span_stacks.get(threading.get_ident())
            if stack and stack[-1] == span.span_id:
                stack.pop()
            elif stack:  # pragma: no cover - defensive against misuse
                try:
                    stack.remove(span.span_id)
                except ValueError:
                    pass
            event = TraceEvent(
                seq=self._seq,
                kind=span.kind,
                at=span._at,
                elapsed_s=span._start - self._t0,
                payload=span.payload,
                duration_s=end - span._start,
                span=span.span_id,
                parent=span._parent,
            )
            self._seq += 1
            self.events.append(event)
        self._update_metrics(event)

    def absorb(self, records: Iterable[Mapping[str, Any]],
               parent: Optional[int] = None, offset_s: float = 0.0,
               dropped: int = 0) -> List[TraceEvent]:
        """Merge worker-emitted plain-data events into this trace.

        ``records`` is a drained :class:`~repro.core.obs.context.WorkerTraceBuffer`
        payload.  Merging is deterministic: rows are sorted by their
        worker-local ``seq``, renumbered into this recorder's sequence,
        and worker-local span ids are remapped to fresh ids in
        first-appearance order.  Top-level rows (no worker-local
        parent) are reparented under ``parent`` — the branch's
        ``branch_open`` anchor.  ``offset_s`` shifts worker-local
        ``elapsed_s`` onto this recorder's timeline (callers pass the
        anchor's elapsed time); ``dropped`` feeds the
        ``dsl_trace_events_dropped_total`` counter.
        """
        rows = sorted((dict(row) for row in records),
                      key=lambda r: int(r.get("seq", 0)))
        absorbed: List[TraceEvent] = []
        with self._lock:
            mapping: Dict[int, int] = {}
            for row in rows:
                for key in ("span", "parent"):
                    sid = row.get(key)
                    if sid is not None and sid not in mapping:
                        self._span_ids += 1
                        mapping[sid] = self._span_ids
            for row in rows:
                local_parent = row.get("parent")
                event = TraceEvent(
                    seq=self._seq,
                    kind=str(row.get("kind", "?")),
                    at=float(row.get("at", 0.0)),
                    elapsed_s=float(row.get("elapsed_s", 0.0)) + offset_s,
                    payload=dict(row.get("payload") or {}),
                    duration_s=(float(row["duration_s"])
                                if row.get("duration_s") is not None
                                else None),
                    span=(mapping[row["span"]]
                          if row.get("span") is not None else None),
                    parent=(mapping[local_parent]
                            if local_parent is not None else parent),
                )
                self._seq += 1
                self.events.append(event)
                absorbed.append(event)
        for event in absorbed:
            self._update_metrics(event)
            self.metrics.counter(
                "dsl_worker_events_total",
                "worker-emitted trace events merged into the parent trace",
                kind=event.kind).inc()
        if dropped:
            self.metrics.counter(
                "dsl_trace_events_dropped_total",
                "worker trace events dropped by full buffers").inc(dropped)
        return absorbed

    def wrap_tools(self, tools: Mapping[str, Callable]
                   ) -> Dict[str, Callable]:
        """Wrap estimation tools so each invocation records a span."""
        return {name: self._traced_tool(name, fn)
                for name, fn in tools.items()}

    def _traced_tool(self, name: str, fn: Callable) -> Callable:
        def invoke(bindings: Mapping[str, Any]) -> Any:
            with self.span(ev.ESTIMATE_INVOKED, tool=name) as span:
                value = fn(bindings)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    span.note(value=float(value))
            return value
        return invoke

    # ------------------------------------------------------------------
    # metrics derivation
    # ------------------------------------------------------------------
    def _update_metrics(self, event: TraceEvent) -> None:
        m = self.metrics
        kind = event.kind
        payload = event.payload
        m.counter("dsl_events_total", "trace events by kind",
                  kind=kind).inc()
        if kind == ev.PRUNE:
            if event.duration_s is not None:
                m.histogram("dsl_prune_seconds",
                            "wall time of actual pruning passes"
                            ).observe(event.duration_s)
            survivors = payload.get("survivors")
            if survivors is not None:
                m.gauge("dsl_surviving_cores",
                        "surviving-core count after the last prune"
                        ).set(survivors)
        elif kind in (ev.CACHE_HIT, ev.CACHE_MISS):
            result = "hit" if kind == ev.CACHE_HIT else "miss"
            m.counter("dsl_prune_cache_total",
                      "session prune-memo lookups", result=result).inc()
        elif kind == ev.CONSTRAINT_FIRED:
            m.counter("dsl_constraint_fired_total",
                      "consistency-constraint evaluations",
                      constraint=str(payload.get("constraint", "?"))).inc()
            if event.duration_s is not None:
                m.histogram("dsl_constraint_eval_seconds",
                            "wall time of CC relation evaluations"
                            ).observe(event.duration_s)
        elif kind == ev.ESTIMATE_INVOKED:
            m.counter("dsl_estimate_invocations_total",
                      "early estimation tool runs",
                      tool=str(payload.get("tool", "?"))).inc()
            if event.duration_s is not None:
                m.histogram("dsl_estimate_seconds",
                            "wall time of estimation tool runs"
                            ).observe(event.duration_s)
        elif kind == ev.INDEX_REBUILD:
            m.counter("dsl_index_rebuilds_total",
                      "core index (re)builds",
                      owner=str(payload.get("owner", "?"))).inc()
            if event.duration_s is not None:
                m.histogram("dsl_index_build_seconds",
                            "wall time of core index builds"
                            ).observe(event.duration_s)
            cores = payload.get("cores")
            if cores is not None:
                m.gauge("dsl_indexed_cores",
                        "cores in the most recently built index").set(cores)
        elif kind in (ev.REQUIRE, ev.DECIDE):
            stale = payload.get("stale")
            if stale is not None:
                m.histogram("dsl_reassessment_fanout",
                            "dependents marked stale per designer action",
                            buckets=(0, 1, 2, 4, 8, 16, 32)
                            ).observe(len(stale))
        elif kind == ev.LINT_RUN:
            if event.duration_s is not None:
                m.histogram("dsl_lint_seconds",
                            "wall time of lint runs"
                            ).observe(event.duration_s)
        elif kind == ev.EXPLORE_START:
            m.counter("dsl_explorations_total",
                      "automated exploration runs",
                      strategy=str(payload.get("strategy", "?"))).inc()
        elif kind == ev.BRANCH_OPEN:
            m.counter("dsl_explore_branches_total",
                      "decision branches considered by exploration",
                      result="opened").inc()
        elif kind == ev.BRANCH_PRUNED:
            m.counter("dsl_explore_branches_total",
                      "decision branches considered by exploration",
                      result="pruned",
                      reason=str(payload.get("reason", "?"))).inc()
        elif kind == ev.WORKER_HYDRATE:
            m.counter("dsl_worker_hydrates_total",
                      "worker layer hydrations / builds",
                      source=str(payload.get("source", "?"))
                      ).inc(int(payload.get("count", 1)))
            seconds = payload.get("seconds")
            if seconds is not None:
                m.histogram("dsl_worker_hydrate_seconds",
                            "wall time workers spent hydrating layers"
                            ).observe(float(seconds))
        elif kind == ev.WORKER_REBUILD:
            m.counter("dsl_worker_layer_rebuilds_total",
                      "per-task worker layer rebuilds (uncacheable factory)"
                      ).inc(int(payload.get("count", 1)))
        elif kind == ev.CHUNK_DISPATCH:
            m.counter("dsl_explore_chunks_total",
                      "chunks dispatched to parallel workers"
                      ).inc(int(payload.get("chunks", 1)))
            workers = payload.get("workers")
            if workers is not None:
                m.gauge("dsl_pool_workers",
                        "workers in the last parallel dispatch"
                        ).set(workers)
            utilization = payload.get("utilization")
            if utilization is not None:
                m.gauge("dsl_pool_utilization",
                        "busy worker-seconds over wall x workers of the "
                        "last dispatch").set(utilization)
        elif kind == ev.CHUNK_STEAL:
            m.counter("dsl_explore_steals_total",
                      "chunks stolen by idle workers"
                      ).inc(int(payload.get("count", 1)))
        elif kind == ev.WORKER_TASK:
            if event.duration_s is not None:
                m.histogram("dsl_worker_task_seconds",
                            "wall time of traced worker branch evaluations"
                            ).observe(event.duration_s)
        elif kind == ev.FRONTIER_UPDATE:
            size = payload.get("size")
            if size is not None:
                m.gauge("dsl_frontier_size",
                        "non-dominated outcomes on the Pareto frontier"
                        ).set(size)
        elif kind == ev.VERIFY_RUN:
            if event.duration_s is not None:
                m.histogram("dsl_verify_seconds",
                            "wall time of semantic verifier runs"
                            ).observe(event.duration_s)
        elif kind == ev.DEAD_BRANCH_PROVED:
            m.counter("dsl_dead_branches_total",
                      "dead-branch proofs by proof kind",
                      kind=str(payload.get("proof_kind", "?"))).inc()
        elif kind == ev.UNSAT_CORE_FOUND:
            m.counter("dsl_unsat_cores_total",
                      "minimal unsat cores extracted").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecorder {len(self.events)} events>"
