"""Trace exporters: JSONL files, summaries, and a session timeline.

Three views of the same event stream:

* :func:`write_jsonl` / :func:`read_jsonl` — the durable interchange
  format (one JSON object per line) consumed by ``repro trace`` and
  :mod:`repro.core.obs.replay`;
* :func:`summarize` — aggregate counts and span-time totals per kind;
* :func:`render_timeline` — a human-readable, indentation-nested
  rendering of the exploration in start-time order.

The Prometheus text dump lives on
:meth:`~repro.core.obs.metrics.MetricsRegistry.render_prometheus`.
"""

from __future__ import annotations

import io
import json
import os
from typing import IO, Dict, List, Sequence, Union

from repro.core.obs import events as ev
from repro.core.obs.events import TraceEvent
from repro.errors import ObservabilityError

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _open_maybe(target: PathOrFile, mode: str):
    if isinstance(target, (str, os.PathLike)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_jsonl(events: Sequence[TraceEvent], target: PathOrFile) -> int:
    """Write events as JSON-lines; returns the number written.

    Non-JSON payload values degrade to their ``repr`` (the trace stays
    readable, but such steps cannot be replayed value-exactly).
    """
    fp, owned = _open_maybe(target, "w")
    try:
        for event in events:
            fp.write(json.dumps(event.to_dict(), sort_keys=True,
                                default=repr))
            fp.write("\n")
    finally:
        if owned:
            fp.close()
    return len(events)


def read_jsonl(source: PathOrFile) -> List[TraceEvent]:
    """Read a JSONL trace back into events (seq order preserved)."""
    fp, owned = _open_maybe(source, "r")
    try:
        out: List[TraceEvent] = []
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                out.append(TraceEvent.from_dict(data))
            except (ValueError, KeyError, TypeError) as exc:
                raise ObservabilityError(
                    f"trace line {lineno} is not a valid event: {exc}"
                ) from exc
        return out
    finally:
        if owned:
            fp.close()


def dumps_jsonl(events: Sequence[TraceEvent]) -> str:
    """The JSONL text for ``events`` (convenience for tests/shell)."""
    buffer = io.StringIO()
    write_jsonl(events, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
def summarize_dict(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Aggregates as plain data (the ``repro trace --json`` payload)."""
    counts: Dict[str, int] = {}
    span_time: Dict[str, float] = {}
    span_count: Dict[str, int] = {}
    sessions = set()
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.duration_s is not None:
            span_time[event.kind] = span_time.get(event.kind, 0.0) \
                + event.duration_s
            span_count[event.kind] = span_count.get(event.kind, 0) + 1
        sid = event.payload.get("session")
        if sid is not None:
            sessions.add(sid)
    wall_ms = 0.0
    if events:
        first = min(event.elapsed_s for event in events)
        last = max(event.elapsed_s + (event.duration_s or 0.0)
                   for event in events)
        wall_ms = (last - first) * 1e3
    spans = {kind: {"count": span_count[kind],
                    "total_ms": span_time[kind] * 1e3,
                    "mean_ms": span_time[kind] / span_count[kind] * 1e3}
             for kind in span_time}
    hits = counts.get(ev.CACHE_HIT, 0)
    misses = counts.get(ev.CACHE_MISS, 0)
    out: Dict[str, object] = {
        "events": len(events),
        "sessions": len(sessions),
        "wall_ms": wall_ms,
        "by_kind": dict(sorted(counts.items())),
        "spans": spans,
    }
    if hits or misses:
        out["prune_cache"] = {"hits": hits, "misses": misses,
                              "hit_rate": hits / (hits + misses)}
    return out


def summarize(events: Sequence[TraceEvent]) -> str:
    """Aggregate view: events per kind, span time per kind, cache rate."""
    if not events:
        return "(empty trace)"
    data = summarize_dict(events)
    lines = [f"trace: {data['events']} events, "
             f"{data['sessions']} session(s), "
             f"{data['wall_ms']:.3f} ms wall"]
    lines.append("  events by kind:")
    spans = data["spans"]
    for kind, count in data["by_kind"].items():
        line = f"    {kind:<18} {count:>6}"
        if kind in spans:
            line += (f"   total {spans[kind]['total_ms']:.3f} ms"
                     f"   mean {spans[kind]['mean_ms']:.3f} ms")
        lines.append(line)
    cache = data.get("prune_cache")
    if cache:
        lines.append(f"  prune cache: {cache['hits']} hits / "
                     f"{cache['misses']} misses "
                     f"({cache['hit_rate']:.0%} hit rate)")
    return "\n".join(lines)


def render_timeline(events: Sequence[TraceEvent]) -> str:
    """The session timeline: events in start order, spans indented.

    Span events are emitted when they *close*, so the raw stream orders
    children before parents; the timeline re-orders by start time and
    nests on the recorded parent ids.
    """
    if not events:
        return "(empty trace)"
    depth: Dict[int, int] = {}

    def depth_of(event: TraceEvent) -> int:
        if event.parent is None:
            return 0
        return depth.get(event.parent, 0) + 1

    ordered = sorted(events, key=lambda e: (e.elapsed_s, e.seq))
    for event in ordered:
        if event.span is not None:
            depth[event.span] = depth_of(event)
    lines = []
    for event in ordered:
        indent = "  " * depth_of(event)
        lines.append(f"[{event.elapsed_s * 1e3:10.3f} ms] "
                     f"{indent}{event.describe()}")
    return "\n".join(lines)
