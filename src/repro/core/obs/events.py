"""Typed trace events — the vocabulary of the observability layer.

A trace is an append-only stream of :class:`TraceEvent` records.  Each
event is one *observation* of the design space layer at work: a designer
action (``session_open``, ``require``, ``decide``, ``retract``, ...), a
machine reaction (``constraint_fired``, ``prune``, ``cache_hit``,
``index_rebuild``, ``estimate_invoked``), or a tool run (``lint_run``).

Events are flat and JSON-serializable by construction so they can be
written to JSONL files and replayed later (:mod:`repro.core.obs.replay`).
Timed operations are recorded as **spans**: a span is still a single
event, carrying ``duration_s`` and — when spans nest — the ``parent``
span id, so exporters can reconstruct the call tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# ----------------------------------------------------------------------
# event kinds
# ----------------------------------------------------------------------
#: A new :class:`~repro.core.session.ExplorationSession` announced itself
#: (payload carries the position, metrics, and any state accumulated
#: before tracing was switched on, so traces are replayable mid-session).
SESSION_OPEN = "session_open"
#: Designer entered a requirement value.
REQUIRE = "require"
#: Designer committed a design decision.
DECIDE = "decide"
#: Designer withdrew a decision or requirement.
RETRACT = "retract"
#: Linear undo of the last mutation.
UNDO = "undo"
#: Named checkpoint saved / restored (branched what-ifs).
CHECKPOINT = "checkpoint"
RESTORE = "restore"
#: Designer confirmed a stale dependent is still valid.
ACKNOWLEDGE = "acknowledge"
#: One consistency constraint was evaluated (span).
CONSTRAINT_FIRED = "constraint_fired"
#: One actual pruning pass over the core index (span).
PRUNE = "prune"
#: Session prune memo hit / miss.
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
#: An early estimation tool ran inside a CC relation (span).
ESTIMATE_INVOKED = "estimate_invoked"
#: A library / federation core index was (re)built (span).
INDEX_REBUILD = "index_rebuild"
#: The static-analysis rules ran over a layer (span).
LINT_RUN = "lint_run"
#: An automated exploration run started (payload: strategy, start, metrics).
EXPLORE_START = "explore_start"
#: The engine opened one decision branch for evaluation.
BRANCH_OPEN = "branch_open"
#: The engine discarded a branch without descending (payload: reason).
BRANCH_PRUNED = "branch_pruned"
#: The Pareto frontier absorbed a new non-dominated outcome.
FRONTIER_UPDATE = "frontier_update"
#: Worker(s) hydrated / built a layer for parallel evaluation (payload:
#: count, seconds, source = ``snapshot`` | ``factory``).
WORKER_HYDRATE = "worker_hydrate"
#: Workers rebuilt the layer per task because the layer factory could
#: not be cached (payload: count) — a performance warning.
WORKER_REBUILD = "worker_layer_rebuild"
#: One chunked parallel dispatch completed (payload: tasks, chunks,
#: chunk_size, workers, backend, utilization).
CHUNK_DISPATCH = "chunk_dispatch"
#: Idle workers stole pending chunks from slower peers (payload: count).
CHUNK_STEAL = "chunk_steal"
#: One sampled branch evaluation inside a pool worker (span; payload:
#: branch label, task index, worker id, buffered event / drop counts).
#: Emitted into a :class:`~repro.core.obs.context.WorkerTraceBuffer`
#: and merged into the parent trace under its ``branch_open`` anchor.
WORKER_TASK = "worker_task"
#: The semantic verifier ran over a layer (span).
VERIFY_RUN = "verify_run"
#: The verifier proved a design-issue option dead (payload: cdo, issue,
#: option, proof_kind, constraint).
DEAD_BRANCH_PROVED = "dead_branch_proved"
#: The verifier extracted a minimal unsat core for an infeasible
#: requirement set (payload: region, requirements, constraints).
UNSAT_CORE_FOUND = "unsat_core_found"

EVENT_KINDS = frozenset({
    SESSION_OPEN, REQUIRE, DECIDE, RETRACT, UNDO, CHECKPOINT, RESTORE,
    ACKNOWLEDGE, CONSTRAINT_FIRED, PRUNE, CACHE_HIT, CACHE_MISS,
    ESTIMATE_INVOKED, INDEX_REBUILD, LINT_RUN,
    EXPLORE_START, BRANCH_OPEN, BRANCH_PRUNED, FRONTIER_UPDATE,
    WORKER_HYDRATE, WORKER_REBUILD, CHUNK_DISPATCH, CHUNK_STEAL,
    WORKER_TASK, VERIFY_RUN, DEAD_BRANCH_PROVED, UNSAT_CORE_FOUND,
})

#: Kinds that mutate session state; a replay re-applies exactly these,
#: in recorded order.
MUTATION_KINDS = (REQUIRE, DECIDE, RETRACT, UNDO, CHECKPOINT, RESTORE,
                  ACKNOWLEDGE)


@dataclass(frozen=True)
class TraceEvent:
    """One observation in the trace stream.

    ``seq`` orders events by *emission*; a span's event is emitted when
    the span closes, so children may precede their parent in ``seq`` —
    order by ``elapsed_s`` (start time) to reconstruct the timeline.
    """

    seq: int
    kind: str
    #: Wall-clock timestamp (``time.time``) of the event / span start.
    at: float
    #: Monotonic offset from the recorder's creation, in seconds.
    elapsed_s: float
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Wall time of the operation; only spans carry one.
    duration_s: Optional[float] = None
    #: This event's own span id (spans only).
    span: Optional[int] = None
    #: Enclosing span id, when the event happened inside another span.
    parent: Optional[int] = None

    @property
    def is_span(self) -> bool:
        return self.duration_s is not None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "at": self.at,
            "elapsed_s": self.elapsed_s,
        }
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.span is not None:
            out["span"] = self.span
        if self.parent is not None:
            out["parent"] = self.parent
        if self.payload:
            out["payload"] = dict(self.payload)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            at=float(data["at"]),
            elapsed_s=float(data["elapsed_s"]),
            payload=dict(data.get("payload", {})),
            duration_s=(float(data["duration_s"])
                        if "duration_s" in data else None),
            span=(int(data["span"]) if "span" in data else None),
            parent=(int(data["parent"]) if "parent" in data else None),
        )

    def describe(self) -> str:
        """Compact one-line rendering (used by the timeline exporter)."""
        bits = [self.kind]
        for key, value in self.payload.items():
            if key == "session":
                continue
            if isinstance(value, dict):
                value = "{" + ",".join(f"{k}={v}" for k, v in value.items()) + "}"
            elif isinstance(value, list):
                value = "[" + ",".join(str(v) for v in value) + "]"
            bits.append(f"{key}={value}")
        if self.duration_s is not None:
            bits.append(f"({self.duration_s * 1e3:.3f} ms)")
        return " ".join(bits)
