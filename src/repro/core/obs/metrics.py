"""A small metrics registry: counters, gauges, and histograms.

The registry is the *aggregated* view of the trace: where the event
stream answers "what happened, in what order", the metrics answer "how
often and how long".  :class:`~repro.core.obs.recorder.TraceRecorder`
feeds it automatically from the events it records; instrumented code can
also update instruments directly.

Instruments are identified by a metric name plus a frozen label set
(Prometheus-style), and the whole registry renders either as a
Prometheus text-format dump (:meth:`MetricsRegistry.render_prometheus`)
or as a human-readable table (:meth:`MetricsRegistry.render_text`).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Log-spaced latency buckets (seconds); +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Text exposition format: label values escape backslash, the double
    # quote that delimits them, and line feeds (in that order, so the
    # escaping backslashes are not themselves re-escaped).
    return value.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")


def _escape_help(doc: str) -> str:
    # HELP text is unquoted: only backslash and line feed are escaped.
    return doc.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None
                   ) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count.

    ``+=`` on a float is not atomic under CPython (load/add/store can
    interleave and drop increments), so every update takes the
    per-instrument lock.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with min/max/sum/count summaries.

    ``observe`` updates six fields; the lock keeps them mutually
    consistent when several worker threads record latencies at once.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max",
                 "_lock")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[str, int]]:
        """(le-label, cumulative count) pairs, Prometheus semantics."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((f"{bound:g}", running))
        running += self.bucket_counts[-1]
        out.append(("+Inf", running))
        return out


class MetricsRegistry:
    """Name+labels -> instrument, with Prometheus/text/dict exports."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    # The lock makes get-or-create atomic: two threads racing to create
    # the same instrument would otherwise each build one and record into
    # different objects, losing whichever landed in the dict first.
    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
                if help:
                    self._help.setdefault(name, help)
        return instrument

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
                if help:
                    self._help.setdefault(name, help)
        return instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(buckets)
                if help:
                    self._help.setdefault(name, help)
        return instrument

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    # Exports snapshot the instrument tables under the registry lock so
    # a concurrent get-or-create cannot resize a dict mid-iteration.
    def _snapshot(self) -> Tuple[List[Tuple[Tuple[str, LabelKey], Counter]],
                                 List[Tuple[Tuple[str, LabelKey], Gauge]],
                                 List[Tuple[Tuple[str, LabelKey], Histogram]]]:
        with self._lock:
            return (sorted(self._counters.items()),
                    sorted(self._gauges.items()),
                    sorted(self._histograms.items()))

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Nested plain-data view: section -> rendered-name -> value(s)."""
        counter_items, gauge_items, histogram_items = self._snapshot()
        counters = {f"{name}{_render_labels(key)}": inst.value
                    for (name, key), inst in counter_items}
        gauges = {f"{name}{_render_labels(key)}": inst.value
                  for (name, key), inst in gauge_items}
        histograms = {}
        for (name, key), inst in histogram_items:
            histograms[f"{name}{_render_labels(key)}"] = {
                "count": inst.count,
                "sum": inst.total,
                "min": inst.min,
                "max": inst.max,
                "mean": inst.mean,
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one dump, no timestamps)."""
        lines: List[str] = []

        def header(name: str, kind: str) -> None:
            doc = self._help.get(name)
            if doc:
                lines.append(f"# HELP {name} {_escape_help(doc)}")
            lines.append(f"# TYPE {name} {kind}")

        counter_items, gauge_items, histogram_items = self._snapshot()
        seen: set = set()
        for (name, key), inst in counter_items:
            if name not in seen:
                seen.add(name)
                header(name, "counter")
            lines.append(f"{name}{_render_labels(key)} {inst.value:g}")
        seen.clear()
        for (name, key), inst in gauge_items:
            if name not in seen:
                seen.add(name)
                header(name, "gauge")
            lines.append(f"{name}{_render_labels(key)} {inst.value:g}")
        seen.clear()
        for (name, key), inst in histogram_items:
            if name not in seen:
                seen.add(name)
                header(name, "histogram")
            for le, cumulative in inst.cumulative():
                labels = _render_labels(key, ("le", le))
                lines.append(f"{name}_bucket{labels} {cumulative}")
            lines.append(f"{name}_sum{_render_labels(key)} {inst.total:g}")
            lines.append(f"{name}_count{_render_labels(key)} {inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_text(self) -> str:
        """Human-readable summary table."""
        lines: List[str] = []
        counter_items, gauge_items, histogram_items = self._snapshot()
        if counter_items:
            lines.append("counters:")
            for (name, key), inst in counter_items:
                lines.append(f"  {name}{_render_labels(key)}  {inst.value:g}")
        if gauge_items:
            lines.append("gauges:")
            for (name, key), inst in gauge_items:
                lines.append(f"  {name}{_render_labels(key)}  {inst.value:g}")
        if histogram_items:
            lines.append("histograms:")
            for (name, key), inst in histogram_items:
                if inst.count:
                    summary = (f"count={inst.count} mean={inst.mean * 1e3:.3f}ms "
                               f"min={(inst.min or 0) * 1e3:.3f}ms "
                               f"max={(inst.max or 0) * 1e3:.3f}ms "
                               f"total={inst.total * 1e3:.3f}ms")
                else:
                    summary = "count=0"
                lines.append(f"  {name}{_render_labels(key)}  {summary}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
