"""Replaying recorded traces against a design space layer.

A trace records the designer's exploration *path* — requirement entries,
decisions, retractions, undos, checkpoint hops — plus the surviving-core
digests the layer produced at every actual pruning pass.  Replay
re-executes the path on a (freshly built) layer and verifies that the
reproduced exploration yields the **identical surviving-core sets and
figure-of-merit ranges** at every recorded pruning step.

This is the paper's "revisit the exploration" workflow made executable:
a designer (or a regression harness) can hand a JSONL trace to
``repro trace --replay`` and learn whether the layer still answers the
recorded session the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.obs import events as ev
from repro.core.obs.events import TraceEvent
from repro.core.pruning import MissingPolicy, names_digest
from repro.errors import ReplayError, ReproError


@dataclass
class ReplayStep:
    """One replayed mutation or verified pruning checkpoint."""

    seq: int
    kind: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        marker = "ok " if self.ok else "DIVERGED"
        return f"  [{marker}] #{self.seq} {self.kind}: {self.detail}"


@dataclass
class ReplayReport:
    """Outcome of replaying one recorded session."""

    session: int
    steps: List[ReplayStep] = field(default_factory=list)
    #: Final surviving-core names after the whole path was re-applied.
    final_survivors: List[str] = field(default_factory=list)

    @property
    def mutations(self) -> int:
        return sum(1 for s in self.steps if s.kind in ev.MUTATION_KINDS)

    @property
    def checks(self) -> int:
        return sum(1 for s in self.steps
                   if s.kind in (ev.PRUNE, ev.CACHE_HIT))

    @property
    def mismatches(self) -> List[ReplayStep]:
        return [s for s in self.steps if not s.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render_text(self) -> str:
        verdict = "replay OK" if self.ok else \
            f"replay DIVERGED ({len(self.mismatches)} mismatches)"
        lines = [f"{verdict}: session {self.session}, "
                 f"{self.mutations} mutations re-applied, "
                 f"{self.checks} pruning checkpoints verified, "
                 f"{len(self.final_survivors)} final survivors"]
        for step in self.steps:
            if not step.ok:
                lines.append(step.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "session": self.session,
            "ok": self.ok,
            "mutations": self.mutations,
            "checks": self.checks,
            "final_survivors": list(self.final_survivors),
            "mismatches": [{"seq": s.seq, "kind": s.kind,
                            "detail": s.detail}
                           for s in self.mismatches],
        }


def _normalize_ranges(ranges: object) -> Dict[str, Tuple[float, float]]:
    out: Dict[str, Tuple[float, float]] = {}
    if isinstance(ranges, dict):
        for metric, bounds in ranges.items():
            lo, hi = bounds  # type: ignore[misc]
            out[str(metric)] = (float(lo), float(hi))
    return out


def session_ids(events: Sequence[TraceEvent]) -> List[int]:
    """Ids of the sessions that announced themselves in the trace."""
    return [int(e.payload["session"]) for e in events
            if e.kind == ev.SESSION_OPEN]


def replay_trace(layer, events: Sequence[TraceEvent],
                 session: Optional[int] = None) -> ReplayReport:
    """Re-apply a recorded session against ``layer`` and verify it.

    ``layer`` must be (equivalent to) the layer the trace was recorded
    on — typically rebuilt by the same domain builder.  ``session``
    selects one of several recorded sessions; the default is the first
    ``session_open`` in the trace.

    Returns a :class:`ReplayReport`; divergence is reported per step,
    never raised (a trace that cannot be *parsed* raises
    :class:`~repro.errors.ReplayError`).
    """
    from repro.core.session import ExplorationSession

    opens = [e for e in events if e.kind == ev.SESSION_OPEN]
    if not opens:
        raise ReplayError("trace has no session_open event; "
                          "was tracing enabled before the session ran?")
    if session is None:
        opened = opens[0]
    else:
        matching = [e for e in opens
                    if int(e.payload["session"]) == session]
        if not matching:
            raise ReplayError(
                f"no session {session} in trace "
                f"(recorded: {session_ids(events)})")
        opened = matching[0]
    sid = int(opened.payload["session"])
    payload = opened.payload

    try:
        live = ExplorationSession(
            layer, str(payload["cdo"]),
            merit_metrics=tuple(payload.get("metrics", ())),
            missing_policy=MissingPolicy(
                payload.get("missing_policy", "exclude")))
    except ReproError as exc:
        raise ReplayError(f"cannot open session at "
                          f"{payload.get('cdo')!r}: {exc}") from exc

    report = ReplayReport(session=sid)

    def attempt(step_seq: int, kind: str, detail: str, action) -> None:
        try:
            action()
            report.steps.append(ReplayStep(step_seq, kind, True, detail))
        except ReproError as exc:
            report.steps.append(ReplayStep(
                step_seq, kind, False, f"{detail} raised: {exc}"))

    # State accumulated before tracing was switched on (mid-session
    # enablement) is replayed first, in recorded insertion order.
    for name, value in dict(payload.get("requirements", {})).items():
        attempt(opened.seq, ev.REQUIRE, f"(priming) {name}={value!r}",
                lambda n=name, v=value: live.set_requirement(n, v))
    for name, option in dict(payload.get("decisions", {})).items():
        attempt(opened.seq, ev.DECIDE, f"(priming) {name}={option!r}",
                lambda n=name, o=option: live.decide(n, o))

    for event in sorted(events, key=lambda e: e.seq):
        if event.seq <= opened.seq:
            continue
        if event.payload.get("session") != sid:
            continue
        kind = event.kind
        payload = event.payload
        if kind == ev.REQUIRE:
            attempt(event.seq, kind,
                    f"{payload['name']}={payload['value']!r}",
                    lambda: live.set_requirement(payload["name"],
                                                 payload["value"]))
        elif kind == ev.DECIDE:
            attempt(event.seq, kind,
                    f"{payload['issue']}={payload['option']!r}",
                    lambda: live.decide(payload["issue"],
                                        payload["option"]))
        elif kind == ev.RETRACT:
            attempt(event.seq, kind, str(payload["name"]),
                    lambda: live.retract(payload["name"]))
        elif kind == ev.UNDO:
            attempt(event.seq, kind, "undo", live.undo)
        elif kind == ev.CHECKPOINT:
            attempt(event.seq, kind, str(payload["tag"]),
                    lambda: live.checkpoint(payload["tag"]))
        elif kind == ev.RESTORE:
            attempt(event.seq, kind, str(payload["tag"]),
                    lambda: live.restore(payload["tag"]))
        elif kind == ev.ACKNOWLEDGE:
            attempt(event.seq, kind, str(payload["name"]),
                    lambda: live.acknowledge(payload["name"]))
        elif kind in (ev.PRUNE, ev.CACHE_HIT):
            if payload.get("extra"):
                continue  # what-if prune with caller-supplied overrides
            report.steps.append(_check_prune(live, event))
    try:
        report.final_survivors = [c.name for c in live.candidates()]
    except ReproError as exc:  # pragma: no cover - defensive
        report.steps.append(ReplayStep(-1, ev.PRUNE, False,
                                       f"final candidates raised: {exc}"))
    return report


def _check_prune(live, event: TraceEvent) -> ReplayStep:
    """Verify one recorded pruning checkpoint against the live session."""
    payload = event.payload
    try:
        live_report = live.prune_report()
    except ReproError as exc:
        return ReplayStep(event.seq, event.kind, False,
                          f"prune raised: {exc}")
    problems: List[str] = []
    expected_count = payload.get("survivors")
    if expected_count is not None \
            and expected_count != len(live_report.survivors):
        problems.append(f"survivors {len(live_report.survivors)} "
                        f"!= recorded {expected_count}")
    expected_digest = payload.get("digest")
    if expected_digest is not None:
        live_digest = names_digest(live_report.survivor_names)
        if live_digest != expected_digest:
            problems.append(f"survivor digest {live_digest} "
                            f"!= recorded {expected_digest}")
    if "ranges" in payload:
        from repro.core.pruning import merit_ranges
        live_ranges = _normalize_ranges(merit_ranges(
            live_report.survivors, live.merit_metrics))
        expected_ranges = _normalize_ranges(payload["ranges"])
        if live_ranges != expected_ranges:
            problems.append(f"merit ranges {live_ranges} "
                            f"!= recorded {expected_ranges}")
    if problems:
        return ReplayStep(event.seq, event.kind, False, "; ".join(problems))
    return ReplayStep(event.seq, event.kind, True,
                      f"{len(live_report.survivors)} survivors verified")
