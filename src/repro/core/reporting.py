"""Plain-text reporting helpers shared by examples and benchmarks.

The paper's figures are ASCII-renderable: hierarchy diagrams (Figs 5/7),
option tables (Figs 8/11) and scatter plots of the evaluation space
(Figs 9/12).  These helpers keep the rendering in one place so the
benchmark harness prints the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.core.cdo import ClassOfDesignObjects
from repro.core.evaluation import EvaluationSpace
from repro.core.properties import DesignIssue, Requirement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.layer import DesignSpaceLayer


def render_hierarchy(root: ClassOfDesignObjects,
                     show_properties: bool = False) -> str:
    """ASCII tree of a CDO hierarchy (paper Figs 5 and 7)."""
    lines: List[str] = []

    def visit(node: ClassOfDesignObjects, prefix: str, is_last: bool) -> None:
        connector = "" if node.parent is None else ("`-- " if is_last else "|-- ")
        via = ""
        if node.option_of_parent is not None:
            via = f" ({node.parent.generalized_issue.name}={node.option_of_parent})"
        lines.append(f"{prefix}{connector}{node.name}{via}")
        if show_properties:
            inner = prefix + ("    " if is_last or node.parent is None else "|   ")
            for prop in node.own_properties:
                lines.append(f"{inner}  * {prop.describe()}")
        children = list(node.children)
        for i, child in enumerate(children):
            extension = "" if node.parent is None else ("    " if is_last else "|   ")
            visit(child, prefix + extension, i == len(children) - 1)

    visit(root, "", True)
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table; numbers right-aligned, text left-aligned."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out: List[str] = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out.append("  ".join("-" * w for w in widths))
    for original, row in zip(rows, cells):
        rendered = []
        for i, cell in enumerate(row):
            if isinstance(original[i], (int, float)) and not isinstance(original[i], bool):
                rendered.append(cell.rjust(widths[i]))
            else:
                rendered.append(cell.ljust(widths[i]))
        out.append("  ".join(rendered))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def render_markdown(layer: "DesignSpaceLayer") -> str:
    """Render a layer as a self-documentation page in Markdown.

    The paper insists layers be "self-documented"; this emits the whole
    representation — hierarchies with their properties, aliases,
    consistency constraints and attached libraries — as a human-readable
    document suitable for a repository's docs directory.
    """
    lines: List[str] = [f"# Design space layer `{layer.name}`", "",
                        layer.doc, ""]
    for root in layer.roots:
        lines.append(f"## Hierarchy `{root.name}`")
        lines.append("")
        for node in root.walk():
            depth = len(node.ancestors())
            indent = "  " * depth
            via = ""
            if node.option_of_parent is not None:
                issue = node.parent.generalized_issue.name
                via = f" *(via {issue} = {node.option_of_parent})*"
            marker = "" if node.is_leaf else " **[generalized]**"
            lines.append(f"{indent}- **{node.name}**{via}{marker} — "
                         f"{node.doc}")
            for prop in node.own_properties:
                if isinstance(prop, Requirement):
                    kind = f"requirement ({prop.sense.value})"
                elif isinstance(prop, DesignIssue):
                    kind = ("generalized design issue" if prop.generalized
                            else "design issue")
                else:
                    kind = type(prop).__name__
                lines.append(f"{indent}  - `{prop.name}` — {kind}: "
                             f"{prop.doc}")
        lines.append("")
    if layer.aliases:
        lines.append("## Aliases")
        lines.append("")
        for alias, target in sorted(layer.aliases.items()):
            lines.append(f"- `{alias}` → `{target}`")
        lines.append("")
    if len(layer.constraints):
        lines.append("## Consistency constraints")
        lines.append("")
        for constraint in layer.constraints:
            lines.append(f"### {constraint.name}")
            lines.append("")
            lines.append(constraint.doc)
            lines.append("")
            lines.append("```")
            lines.append(constraint.describe())
            lines.append("```")
            lines.append("")
    libraries = layer.libraries.libraries
    if libraries:
        lines.append("## Reuse libraries")
        lines.append("")
        for library in libraries:
            lines.append(f"- **{library.name}** ({len(library)} cores) — "
                         f"{library.doc}")
        lines.append("")
    if layer.tools:
        lines.append("## Registered estimation tools")
        lines.append("")
        for name in sorted(layer.tools):
            lines.append(f"- `{name}`")
        lines.append("")
    return "\n".join(lines)


def render_scatter(space: EvaluationSpace, width: int = 64, height: int = 18,
                   title: str = "") -> str:
    """ASCII scatter plot of a two-metric evaluation space.

    X is the first metric, Y the second (both increasing away from the
    origin, matching the paper's area-vs-delay plots).  Point labels are
    listed below the canvas because several points may share a cell.
    """
    if len(space.metrics) != 2:
        raise ValueError("render_scatter needs exactly two metrics")
    if not len(space):
        return f"{title}\n(empty evaluation space)"
    xs = [p.coords[0] for p in space]
    ys = [p.coords[1] for p in space]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    labels: List[Tuple[str, float, float, str]] = []
    for index, point in enumerate(space):
        col = int((point.coords[0] - x_lo) / x_span * (width - 1))
        row = int((point.coords[1] - y_lo) / y_span * (height - 1))
        marker = chr(ord("a") + index % 26)
        canvas[height - 1 - row][col] = marker
        labels.append((marker, point.coords[0], point.coords[1], point.name))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{space.metrics[1]} ^   ({y_lo:g} .. {y_hi:g})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + f"> {space.metrics[0]} ({x_lo:g} .. {x_hi:g})")
    for marker, x, y, name in labels:
        lines.append(f"  {marker}: {name} ({x:g}, {y:g})")
    return "\n".join(lines)
