"""Re-indexing cores into alternative specialization hierarchies.

Paper Sec 6 (work in progress): "investigating the need for supporting
the co-existence of different specialization hierarchies, so as to
effectively guide designers based on the specific trade-offs they may
be interested in locally or globally exploring."

The mechanism that makes co-existence cheap is the same one that makes
the layer "open": cores are *indexed*, not stored.  An alternative
hierarchy therefore only needs a *classifier* — a function from a core
to the qualified CDO name it occupies in the new organisation — and a
mirror library of re-indexed references.  The cores' property values,
figures of merit and views are shared with the originals.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.designobject import DesignObject
from repro.core.layer import DesignSpaceLayer
from repro.core.library import ReuseLibrary
from repro.errors import LibraryError

#: Maps a core to its CDO in the alternative hierarchy (None = the core
#: has no place there and is left out).
Classifier = Callable[[DesignObject], Optional[str]]


def reindexed_core(core: DesignObject, cdo_name: str) -> DesignObject:
    """A copy of ``core`` indexed under a different CDO.

    Property values, merits and views are shared by reference — the
    alternative hierarchy presents the *same* design objects, only
    organised differently.
    """
    clone = DesignObject(core.name, cdo_name,
                         core.properties, core.merits,
                         doc=core.doc, provenance=core.provenance)
    for level in core.view_levels:
        clone.set_view(level, core.view(level))
    return clone


def reindex(cores: Iterable[DesignObject], classifier: Classifier,
            library_name: str,
            doc: str = "re-indexed view of existing cores"
            ) -> ReuseLibrary:
    """Build the mirror library of an alternative hierarchy."""
    library = ReuseLibrary(library_name, doc)
    for core in cores:
        target = classifier(core)
        if target is None:
            continue
        library.add(reindexed_core(core, target))
    return library


def attach_alternative_hierarchy(layer: DesignSpaceLayer,
                                 root, classifier: Classifier,
                                 library_name: Optional[str] = None
                                 ) -> ReuseLibrary:
    """Add a co-existing hierarchy to a layer and populate it.

    ``root`` is the new hierarchy's root CDO (its qualified names must
    be what ``classifier`` produces).  Every core already indexed in
    the layer is offered to the classifier; the resulting mirror
    library is attached and returned.
    """
    existing = list(layer.libraries)
    layer.add_root(root)
    name = library_name or f"{root.name}-view"
    library = reindex(existing, classifier, name,
                      doc=f"re-indexed view under the {root.name} "
                          f"hierarchy")
    if not len(library):
        raise LibraryError(
            f"alternative hierarchy {root.name!r}: the classifier "
            f"placed no cores")
    layer.attach_library(library)
    return library
