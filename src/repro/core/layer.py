"""The design space layer itself (paper Fig 1).

A :class:`DesignSpaceLayer` bundles everything a design environment
tailors to its application domains:

* a forest of CDO hierarchies (Fig 5's ``Operator`` tree is one root);
* name aliases (the paper freely abbreviates
  ``Operator.Modular.Multiplier`` as ``OMM``);
* the consistency constraints governing exploration (Fig 13);
* registered early estimation tools (invoked through CC relations);
* selector implementations for the path language; and
* a federation of reuse libraries whose cores the layer indexes.

The layer is purely a *representation* — exploration state lives in
:class:`repro.core.session.ExplorationSession` objects created from it.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.core.cdo import QNAME_SEP, ClassOfDesignObjects
from repro.core.constraints import ConsistencyConstraint, ConstraintSet
from repro.core.designobject import DesignObject
from repro.core.library import LibraryFederation, ReuseLibrary
from repro.core.obs import events as _ev
from repro.core.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.core.path import PropertyPath, SelectorRegistry, parse_path
from repro.core.properties import Property
from repro.errors import HierarchyError, LibraryError, PathError

#: Sentinel distinguishing ``layer.observe()`` from ``layer.observe(None)``.
_UNSET = object()


class DesignSpaceLayer:
    """A self-documented, compartmentalized design space representation."""

    def __init__(self, name: str, doc: str):
        if not name:
            raise HierarchyError("layer name must be non-empty")
        if not doc:
            raise HierarchyError(f"layer {name!r} needs a documentation string")
        self.name = name
        self.doc = doc
        self._roots: Dict[str, ClassOfDesignObjects] = {}
        self._aliases: Dict[str, str] = {}
        self.constraints = ConstraintSet()
        self.libraries = LibraryFederation()
        self.selectors = SelectorRegistry()
        self._tools: Dict[str, Callable] = {}
        #: Trace recorder every instrumented hot path reports to; the
        #: default is the shared no-op (see :meth:`observe`).
        self.observer = NULL_RECORDER
        self._epoch = 0
        self._epoch_signature: object = None
        self._cdo_cache: Dict[str, ClassOfDesignObjects] = {}
        self._cdo_cache_epoch = -1
        self._all_cdos_cache: Optional[List[ClassOfDesignObjects]] = None
        #: Guards the derived-epoch recomputation and the hierarchy
        #: caches.  The signature compare-then-bump in :attr:`epoch` is
        #: a classic lost-update window: a reader that publishes the new
        #: signature before the increment lands lets a concurrent reader
        #: key fresh state under the old epoch — stale forever after.
        self._cache_lock = threading.RLock()

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic generation counter covering hierarchy edits, alias /
        constraint / tool registration and every library mutation.

        Caches throughout the query stack (CDO resolution, core indexes,
        session memoization) key on this value, so they expire lazily and
        no mutation site ever has to flush them explicitly.
        """
        with self._cache_lock:
            signature = (self.libraries.epoch,
                         len(self._aliases),
                         len(self.constraints),
                         len(self._tools),
                         tuple(root._version
                               for root in self._roots.values()))
            if signature != self._epoch_signature:
                self._epoch_signature = signature
                self._epoch += 1
            return self._epoch

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def observe(self, recorder: object = _UNSET):
        """Install, disable, or fetch the layer's trace recorder.

        * ``layer.observe()`` — ensure tracing is on and return the
          active :class:`~repro.core.obs.recorder.TraceRecorder`
          (creating one on first call);
        * ``layer.observe(my_recorder)`` — install a specific recorder
          (tests inject deterministic clocks this way);
        * ``layer.observe(None)`` — switch tracing off (reinstalls the
          shared no-op recorder).

        The recorder is propagated to the library federation and every
        attached library so index rebuilds are traced too; sessions pick
        it up lazily on their next instrumented operation, announcing
        themselves with a ``session_open`` event that carries any state
        accumulated before tracing was switched on.
        """
        _sanitizer.check_write(self, "DesignSpaceLayer.observe")
        if recorder is _UNSET:
            if not self.observer.enabled:
                return self.observe(TraceRecorder())
            return self.observer
        if recorder is None:
            recorder = NULL_RECORDER
        self.observer = recorder
        self.libraries.observer = recorder
        for library in self.libraries.libraries:
            library.observer = recorder
        return recorder

    def _hierarchy_caches(self) -> Dict[str, ClassOfDesignObjects]:
        with self._cache_lock:
            epoch = self.epoch
            if epoch != self._cdo_cache_epoch:
                self._cdo_cache = {}
                self._all_cdos_cache = None
                self._cdo_cache_epoch = epoch
            return self._cdo_cache

    # ------------------------------------------------------------------
    # hierarchy management
    # ------------------------------------------------------------------
    def add_root(self, cdo: ClassOfDesignObjects) -> ClassOfDesignObjects:
        _sanitizer.check_write(self, "DesignSpaceLayer.add_root")
        if cdo.parent is not None:
            raise HierarchyError(
                f"{cdo.qualified_name} is not a root (it has a parent)")
        if cdo.name in self._roots:
            raise HierarchyError(f"duplicate root CDO {cdo.name!r}")
        self._roots[cdo.name] = cdo
        return cdo

    @property
    def roots(self) -> Sequence[ClassOfDesignObjects]:
        return tuple(self._roots.values())

    def all_cdos(self) -> List[ClassOfDesignObjects]:
        with self._cache_lock:
            self._hierarchy_caches()
            if self._all_cdos_cache is None:
                out: List[ClassOfDesignObjects] = []
                for root in self._roots.values():
                    out.extend(root.walk())
                self._all_cdos_cache = out
            return list(self._all_cdos_cache)

    def cdo(self, qualified_name: str) -> ClassOfDesignObjects:
        """Look up a CDO by qualified name or registered alias
        (resolutions are epoch-cached)."""
        cache = self._hierarchy_caches()
        hit = cache.get(qualified_name)
        if hit is not None:
            return hit
        requested = qualified_name
        qualified_name = self._aliases.get(qualified_name, qualified_name)
        parts = qualified_name.split(QNAME_SEP)
        try:
            node = self._roots[parts[0]]
        except KeyError:
            raise HierarchyError(
                f"layer {self.name!r}: no root CDO {parts[0]!r} "
                f"(roots: {sorted(self._roots)})") from None
        for part in parts[1:]:
            matches = [c for c in node.children if c.name == part]
            if not matches:
                raise HierarchyError(
                    f"layer {self.name!r}: {node.qualified_name} has no "
                    f"child {part!r}")
            node = matches[0]
        cache[requested] = node
        return node

    def has_cdo(self, qualified_name: str) -> bool:
        try:
            self.cdo(qualified_name)
            return True
        except HierarchyError:
            return False

    # ------------------------------------------------------------------
    # aliases
    # ------------------------------------------------------------------
    def add_alias(self, alias: str, qualified_name: str) -> None:
        """Register an abbreviation (``OMM`` -> ``Operator.Modular.Multiplier``)."""
        _sanitizer.check_write(self, "DesignSpaceLayer.add_alias")
        if alias in self._aliases:
            raise HierarchyError(f"duplicate alias {alias!r}")
        # Fail fast if the target does not exist.
        self.cdo(qualified_name)
        self._aliases[alias] = qualified_name

    @property
    def aliases(self) -> Mapping[str, str]:
        return dict(self._aliases)

    # ------------------------------------------------------------------
    # constraints and tools
    # ------------------------------------------------------------------
    def add_constraint(self, constraint: ConsistencyConstraint
                       ) -> ConsistencyConstraint:
        return self.constraints.add(constraint)

    def register_tool(self, name: str, tool: Callable) -> None:
        """Register an early estimation tool, addressable from
        :class:`~repro.core.relations.EstimatorInvocation` relations."""
        _sanitizer.check_write(self, "DesignSpaceLayer.register_tool")
        if name in self._tools:
            raise HierarchyError(f"estimation tool {name!r} already registered")
        self._tools[name] = tool

    @property
    def tools(self) -> Mapping[str, Callable]:
        return dict(self._tools)

    # ------------------------------------------------------------------
    # libraries / cores
    # ------------------------------------------------------------------
    def attach_library(self, library: ReuseLibrary) -> ReuseLibrary:
        """Attach a reuse library; every core must index under a known CDO."""
        _sanitizer.check_write(self, "DesignSpaceLayer.attach_library")
        for core in library:
            self._check_core(core)
        library.observer = self.observer
        return self.libraries.attach(library)

    def _check_core(self, core: DesignObject) -> None:
        if not self.has_cdo(core.cdo_name):
            raise LibraryError(
                f"core {core.name!r} indexes under unknown CDO "
                f"{core.cdo_name!r}")

    def cores_under(self, qualified_name: str,
                    include_descendants: bool = True) -> List[DesignObject]:
        cdo = self.cdo(qualified_name)
        return self.libraries.cores_under(cdo.qualified_name,
                                          include_descendants)

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------
    def resolve_path(self, path: "str | PropertyPath"
                     ) -> List[Tuple[ClassOfDesignObjects, Property]]:
        if isinstance(path, str):
            path = parse_path(path)
        return path.expand_aliases(self._aliases).resolve(self.all_cdos())

    def resolve_single(self, path: "str | PropertyPath"
                       ) -> Tuple[ClassOfDesignObjects, Property]:
        hits = self.resolve_path(path)
        # Multiple matched CDOs may inherit the same declared property;
        # that still identifies a single property schema.
        unique = {id(prop): (cdo, prop) for cdo, prop in hits}
        if len(unique) > 1:
            rendered = path if isinstance(path, str) else path.render()
            raise PathError(
                f"{rendered}: ambiguous — resolves to "
                f"{[f'{p.name}@{c.qualified_name}' for c, p in hits]}")
        return next(iter(unique.values()))

    # ------------------------------------------------------------------
    # validation / documentation
    # ------------------------------------------------------------------
    def lint(self, config: object = None, strict: bool = False):
        """Run the static-analysis rules over this layer.

        Returns a :class:`~repro.core.lint.diagnostics.LintReport`.  With
        ``strict=True``, error-severity findings raise
        :class:`~repro.errors.LintError` (carrying the full report) —
        the fail-fast mode domain builders use to refuse to ship a
        broken layer.  Unlike :meth:`validate`, linting never stops at
        the first problem and also covers advisory findings.
        """
        from repro.core.lint import LintConfig, lint_layer
        from repro.errors import LintError
        if config is not None and not isinstance(config, LintConfig):
            raise LintError(
                f"layer.lint() expects a LintConfig, got "
                f"{type(config).__name__}")
        with self.observer.span(_ev.LINT_RUN, layer=self.name) as span:
            report = lint_layer(self, config=config)
            span.note(diagnostics=len(report), errors=len(report.errors))
        if strict and report.errors:
            raise LintError(
                f"layer {self.name!r} failed strict lint: "
                f"{report.summary()}", report=report)
        return report

    def verify(self, requirements: Sequence[Tuple[str, object]] = (),
               start: Optional[str] = None, config: object = None,
               strict: bool = False):
        """Run the semantic verifier over this layer.

        Abstract interpretation over the consistency constraints: per-CDO
        feasible-region over-approximation, dead-branch proofs
        (``DSL100``/``DSL101``), minimal unsat cores for infeasible
        requirement sets (``DSL103``) and a constraint stratification
        report (``DSL102``).  Returns a
        :class:`~repro.core.verify.report.VerifyReport`; with
        ``strict=True`` error-severity findings raise
        :class:`~repro.errors.LintError`.  Repeated runs against an
        unchanged layer are served from an epoch-keyed cache.
        """
        from repro.core.lint import LintConfig
        from repro.core.verify import verify_layer
        from repro.errors import LintError
        if config is not None and not isinstance(config, LintConfig):
            raise LintError(
                f"layer.verify() expects a LintConfig, got "
                f"{type(config).__name__}")
        with self.observer.span(_ev.VERIFY_RUN, layer=self.name) as span:
            report = verify_layer(self, requirements=requirements,
                                  start=start, config=config)
            analysis = report.analysis
            span.note(diagnostics=len(report.lint),
                      proofs=len(analysis.proofs),
                      unsat_cores=len(analysis.unsat_cores))
            if self.observer.enabled:
                for proof in analysis.proofs:
                    self.observer.emit(
                        _ev.DEAD_BRANCH_PROVED, cdo=proof.cdo,
                        issue=proof.issue, option=repr(proof.option),
                        proof_kind=proof.kind, constraint=proof.constraint)
                for core in analysis.unsat_cores:
                    self.observer.emit(
                        _ev.UNSAT_CORE_FOUND, region=core.region,
                        requirements=[f"{n}={v!r}"
                                      for n, v in core.requirements],
                        constraints=list(core.constraints))
        if strict and report.lint.errors:
            raise LintError(
                f"layer {self.name!r} failed strict verify: "
                f"{report.summary()}", report=report.lint)
        return report

    def explore(self, start: str, strategy: str = "exhaustive",
                metrics: Sequence[str] = ("area", "latency_ns"),
                requirements: object = (), decisions: object = (),
                issues: Optional[Sequence[str]] = None, jobs: int = 1,
                backend: str = "thread", chunk_size: Optional[int] = None,
                estimator: Optional[Callable] = None,
                **strategy_options: object):
        """Run an automated search over this layer; returns an
        :class:`~repro.core.explore.engine.ExplorationResult`.

        Convenience wrapper: builds an
        :class:`~repro.core.explore.problem.ExplorationProblem` bound to
        this layer and hands it to the
        :class:`~repro.core.explore.engine.ExplorationEngine`.  See
        ``docs/exploration.md`` for the strategy catalogue; note the
        process backend needs a problem with a picklable
        ``layer_factory``, so it is not reachable through this shortcut.
        """
        from repro.core.explore import ExplorationEngine, ExplorationProblem
        problem = ExplorationProblem(
            start=start, metrics=tuple(metrics),
            requirements=requirements, decisions=decisions,
            issues=tuple(issues) if issues is not None else None,
            layer=self, estimator=estimator)
        engine = ExplorationEngine(problem, strategy=strategy, jobs=jobs,
                                   backend=backend,
                                   strategy_options=strategy_options,
                                   chunk_size=chunk_size)
        return engine.run()

    def snapshot(self, hydrators: Sequence[str] = (),
                 lenient: bool = False):
        """Capture a compact, picklable snapshot of this layer.

        Returns a :class:`~repro.core.serialize.LayerSnapshot` —
        the representation serialized once, plus the *names* of
        registered hydrators (:func:`~repro.core.serialize.register_hydrator`)
        that re-attach consistency-constraint relations and estimation
        tools on the hydrating side.  Worker pools ship this to each
        process once instead of re-running a ``layer_factory`` per task
        (see ``docs/exploration.md``).
        """
        from repro.core.serialize import LayerSnapshot
        return LayerSnapshot.capture(self, hydrators=hydrators,
                                     lenient=lenient)

    def validate(self) -> None:
        """Structural sanity of the whole layer.

        Checks each hierarchy's invariants, that every indexed core's CDO
        exists, and that every constraint's path references resolve.
        """
        for root in self._roots.values():
            root.validate_subtree()
        for core in self.libraries:
            self._check_core(core)
        cdos = self.all_cdos()
        for constraint in self.constraints:
            for alias, ref in {**constraint.independents,
                               **constraint.dependents,
                               **constraint.shorts}.items():
                if isinstance(ref, PropertyPath):
                    try:
                        ref.expand_aliases(self._aliases).resolve(cdos)
                    except PathError as exc:
                        raise PathError(
                            f"constraint {constraint.name!r}, alias "
                            f"{alias!r}: {exc}") from exc

    def describe(self) -> str:
        """Multi-line self-documentation of the layer."""
        lines = [f"Design space layer {self.name!r}: {self.doc}", ""]
        for root in self._roots.values():
            for node in root.walk():
                depth = len(node.ancestors())
                indent = "  " * depth
                marker = "" if node.is_leaf else " [+]"
                lines.append(f"{indent}{node.name}{marker} -- {node.doc}")
                for prop in node.own_properties:
                    lines.append(f"{indent}  . {prop.describe()}")
        if len(self.constraints):
            lines.append("")
            lines.append("Consistency constraints:")
            for constraint in self.constraints:
                lines.append(constraint.describe())
        if len(self.libraries.libraries):
            lines.append("")
            names = ", ".join(f"{lib.name} ({len(lib)} cores)"
                              for lib in self.libraries.libraries)
            lines.append(f"Attached reuse libraries: {names}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DesignSpaceLayer {self.name} roots={sorted(self._roots)} "
                f"cores={len(self.libraries)}>")
