"""Reuse libraries and the multi-library federation of Fig 1.

The design space layer does not own design data: cores live in reuse
libraries — possibly maintained by different IP providers — and the layer
*references* them.  :class:`ReuseLibrary` is one such library;
:class:`LibraryFederation` presents any number of libraries as a single
queryable collection, which is how the layer "transparently indexes
designs residing in different libraries".
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from repro.core.cdo import QNAME_SEP
from repro.core.designobject import DesignObject
from repro.errors import LibraryError


def _is_same_or_descendant(cdo_name: str, ancestor_name: str) -> bool:
    """Whether ``cdo_name`` equals or lies under ``ancestor_name``."""
    return cdo_name == ancestor_name or cdo_name.startswith(
        ancestor_name + QNAME_SEP)


class ReuseLibrary:
    """A named collection of design objects (one IP provider's library)."""

    def __init__(self, name: str, doc: str = ""):
        if not name:
            raise LibraryError("library name must be non-empty")
        self.name = name
        self.doc = doc
        self._cores: Dict[str, DesignObject] = {}

    def add(self, core: DesignObject) -> DesignObject:
        """Register a core; names are unique within a library."""
        if core.name in self._cores:
            raise LibraryError(
                f"library {self.name!r}: duplicate core name {core.name!r}")
        if not core.provenance:
            core.provenance = self.name
        self._cores[core.name] = core
        return core

    def add_all(self, cores: Iterable[DesignObject]) -> None:
        for core in cores:
            self.add(core)

    def remove(self, name: str) -> DesignObject:
        try:
            return self._cores.pop(name)
        except KeyError:
            raise LibraryError(
                f"library {self.name!r}: no core named {name!r}") from None

    def get(self, name: str) -> DesignObject:
        try:
            return self._cores[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r}: no core named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cores

    def __len__(self) -> int:
        return len(self._cores)

    def __iter__(self) -> Iterator[DesignObject]:
        return iter(self._cores.values())

    def cores_under(self, cdo_name: str,
                    include_descendants: bool = True) -> List[DesignObject]:
        """Cores indexed at ``cdo_name`` (and, by default, below it —
        "all available IDCT cores are indexed through the top IDCT
        node")."""
        if include_descendants:
            return [c for c in self._cores.values()
                    if _is_same_or_descendant(c.cdo_name, cdo_name)]
        return [c for c in self._cores.values() if c.cdo_name == cdo_name]

    def select(self, predicate: Callable[[DesignObject], bool]
               ) -> List[DesignObject]:
        return [c for c in self._cores.values() if predicate(c)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReuseLibrary {self.name} ({len(self)} cores)>"


class LibraryFederation:
    """Any number of reuse libraries behind one query surface (Fig 1).

    Core names must be unique across the federation *as qualified names*
    (``library/core``); bare-name lookup is provided when unambiguous.
    """

    def __init__(self, libraries: Sequence[ReuseLibrary] = ()):
        self._libraries: Dict[str, ReuseLibrary] = {}
        for library in libraries:
            self.attach(library)

    def attach(self, library: ReuseLibrary) -> ReuseLibrary:
        if library.name in self._libraries:
            raise LibraryError(f"library {library.name!r} already attached")
        self._libraries[library.name] = library
        return library

    def detach(self, name: str) -> ReuseLibrary:
        try:
            return self._libraries.pop(name)
        except KeyError:
            raise LibraryError(f"no attached library named {name!r}") from None

    @property
    def libraries(self) -> Sequence[ReuseLibrary]:
        return tuple(self._libraries.values())

    def library(self, name: str) -> ReuseLibrary:
        try:
            return self._libraries[name]
        except KeyError:
            raise LibraryError(f"no attached library named {name!r}") from None

    def __len__(self) -> int:
        return sum(len(lib) for lib in self._libraries.values())

    def __iter__(self) -> Iterator[DesignObject]:
        for library in self._libraries.values():
            yield from library

    def cores_under(self, cdo_name: str,
                    include_descendants: bool = True) -> List[DesignObject]:
        out: List[DesignObject] = []
        for library in self._libraries.values():
            out.extend(library.cores_under(cdo_name, include_descendants))
        return out

    def get(self, name: str) -> DesignObject:
        """Look up ``library/core`` or a bare core name (must be unique
        across attached libraries)."""
        if "/" in name:
            library_name, _, core_name = name.partition("/")
            return self.library(library_name).get(core_name)
        hits = [lib.get(name) for lib in self._libraries.values() if name in lib]
        if not hits:
            raise LibraryError(f"no core named {name!r} in any attached library")
        if len(hits) > 1:
            owners = [c.provenance for c in hits]
            raise LibraryError(
                f"core name {name!r} is ambiguous across libraries {owners}; "
                f"use 'library/core'")
        return hits[0]

    def select(self, predicate: Callable[[DesignObject], bool]
               ) -> List[DesignObject]:
        return [core for core in self if predicate(core)]
