"""Reuse libraries and the multi-library federation of Fig 1.

The design space layer does not own design data: cores live in reuse
libraries — possibly maintained by different IP providers — and the layer
*references* them.  :class:`ReuseLibrary` is one such library;
:class:`LibraryFederation` presents any number of libraries as a single
queryable collection, which is how the layer "transparently indexes
designs residing in different libraries".

Both classes answer subtree queries through a lazily (re)built
:class:`~repro.core.index.CoreIndex` instead of scanning: every mutation
(add/remove/attach/detach, and characterization changes on the cores
themselves) bumps an epoch counter, and the index rebuilds on the next
query whenever its epoch is behind.  Correctness therefore never depends
on callers remembering to flush anything.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.analysis import sanitizer as _sanitizer
from repro.core.cdo import QNAME_SEP
from repro.core.designobject import DesignObject
from repro.core.obs import events as _ev
from repro.core.obs.recorder import NULL_RECORDER
from repro.errors import LibraryError


def _is_same_or_descendant(cdo_name: str, ancestor_name: str) -> bool:
    """Whether ``cdo_name`` equals or lies under ``ancestor_name``."""
    return cdo_name == ancestor_name or cdo_name.startswith(
        ancestor_name + QNAME_SEP)


class ReuseLibrary:
    """A named collection of design objects (one IP provider's library)."""

    def __init__(self, name: str, doc: str = ""):
        if not name:
            raise LibraryError("library name must be non-empty")
        self.name = name
        self.doc = doc
        self._cores: Dict[str, DesignObject] = {}
        self._epoch = 0
        self._index = None
        self._index_epoch = -1
        #: Guards the lazy index rebuild: concurrent readers must agree
        #: on one index object instead of each building their own.
        self._lock = threading.RLock()
        #: Trace recorder index rebuilds report to; installed by
        #: :meth:`repro.core.layer.DesignSpaceLayer.observe`.
        self.observer = NULL_RECORDER

    # ------------------------------------------------------------------
    # epoch / index machinery
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self._epoch += 1

    @property
    def epoch(self) -> int:
        """Generation counter; moves on every mutation of the library or
        of any core it contains."""
        return self._epoch

    def index(self):
        """The library's :class:`~repro.core.index.CoreIndex`, rebuilt
        lazily when the epoch has moved."""
        from repro.core.index import CoreIndex
        with self._lock:
            if self._index is None or self._index_epoch != self._epoch:
                with self.observer.span(_ev.INDEX_REBUILD,
                                        owner=f"library:{self.name}") as span:
                    self._index = CoreIndex(self._cores.values())
                    self._index_epoch = self._epoch
                    span.note(cores=len(self._cores), epoch=self._epoch)
            return self._index

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, core: DesignObject) -> DesignObject:
        """Register a core; names are unique within a library."""
        _sanitizer.check_write(self, "ReuseLibrary.add")
        if core.name in self._cores:
            raise LibraryError(
                f"library {self.name!r}: duplicate core name {core.name!r}")
        if not core.provenance:
            core.provenance = self.name
        self._cores[core.name] = core
        core._watchers.append(self)
        self._bump()
        return core

    def add_all(self, cores: Iterable[DesignObject]) -> None:
        for core in cores:
            self.add(core)

    def remove(self, name: str) -> DesignObject:
        _sanitizer.check_write(self, "ReuseLibrary.remove")
        try:
            core = self._cores.pop(name)
        except KeyError:
            raise LibraryError(
                f"library {self.name!r}: no core named {name!r}") from None
        try:
            core._watchers.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._bump()
        return core

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, name: str) -> DesignObject:
        try:
            return self._cores[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r}: no core named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cores

    def __len__(self) -> int:
        return len(self._cores)

    def __iter__(self) -> Iterator[DesignObject]:
        return iter(self._cores.values())

    def cores_under(self, cdo_name: str,
                    include_descendants: bool = True) -> List[DesignObject]:
        """Cores indexed at ``cdo_name`` (and, by default, below it —
        "all available IDCT cores are indexed through the top IDCT
        node")."""
        return self.index().cores_under(cdo_name, include_descendants)

    def select(self, predicate: Callable[[DesignObject], bool]
               ) -> List[DesignObject]:
        return [c for c in self._cores.values() if predicate(c)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReuseLibrary {self.name} ({len(self)} cores)>"


class LibraryFederation:
    """Any number of reuse libraries behind one query surface (Fig 1).

    Core names must be unique across the federation *as qualified names*
    (``library/core``); bare-name lookup is provided when unambiguous.
    """

    def __init__(self, libraries: Sequence[ReuseLibrary] = ()):
        self._libraries: Dict[str, ReuseLibrary] = {}
        self._epoch = 0
        #: Last-seen per-library epochs, so the federation's own epoch
        #: stays monotonic even across detach/re-attach cycles.
        self._library_epochs: Dict[str, int] = {}
        self._index = None
        self._index_epoch = -1
        self._bare_names: Optional[Dict[str, List[ReuseLibrary]]] = None
        self._bare_names_epoch = -1
        #: Guards the epoch recomputation and both lazy caches.  Without
        #: it, two readers can interleave the check-then-bump in
        #: :attr:`epoch` so the fresh ``_library_epochs`` snapshot
        #: publishes under a stale ``_epoch`` — and every epoch-keyed
        #: cache above then serves stale results forever.
        self._lock = threading.RLock()
        #: Trace recorder index rebuilds report to; installed by
        #: :meth:`repro.core.layer.DesignSpaceLayer.observe`.
        self.observer = NULL_RECORDER
        for library in libraries:
            self.attach(library)

    # ------------------------------------------------------------------
    # epoch / index machinery
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic generation counter covering attach/detach and every
        mutation inside any attached library."""
        with self._lock:
            for name, library in self._libraries.items():
                if self._library_epochs.get(name) != library.epoch:
                    self._library_epochs = {
                        n: lib.epoch for n, lib in self._libraries.items()}
                    self._epoch += 1
                    break
            return self._epoch

    def index(self):
        """The federation-wide :class:`~repro.core.index.CoreIndex`,
        rebuilt lazily when the epoch has moved."""
        from repro.core.index import CoreIndex
        with self._lock:
            epoch = self.epoch
            if self._index is None or self._index_epoch != epoch:
                with self.observer.span(_ev.INDEX_REBUILD,
                                        owner="federation") as span:
                    self._index = CoreIndex(self)
                    self._index_epoch = epoch
                    span.note(cores=len(self), epoch=epoch)
            return self._index

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach(self, library: ReuseLibrary) -> ReuseLibrary:
        _sanitizer.check_write(self, "LibraryFederation.attach")
        if library.name in self._libraries:
            raise LibraryError(f"library {library.name!r} already attached")
        self._libraries[library.name] = library
        self._library_epochs[library.name] = library.epoch
        self._epoch += 1
        return library

    def detach(self, name: str) -> ReuseLibrary:
        _sanitizer.check_write(self, "LibraryFederation.detach")
        try:
            library = self._libraries.pop(name)
        except KeyError:
            raise LibraryError(f"no attached library named {name!r}") from None
        self._library_epochs.pop(name, None)
        self._epoch += 1
        return library

    @property
    def libraries(self) -> Sequence[ReuseLibrary]:
        return tuple(self._libraries.values())

    def library(self, name: str) -> ReuseLibrary:
        try:
            return self._libraries[name]
        except KeyError:
            raise LibraryError(f"no attached library named {name!r}") from None

    def __len__(self) -> int:
        return sum(len(lib) for lib in self._libraries.values())

    def __iter__(self) -> Iterator[DesignObject]:
        for library in self._libraries.values():
            yield from library

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cores_under(self, cdo_name: str,
                    include_descendants: bool = True) -> List[DesignObject]:
        return self.index().cores_under(cdo_name, include_descendants)

    def get(self, name: str) -> DesignObject:
        """Look up ``library/core`` or a bare core name (must be unique
        across attached libraries)."""
        if "/" in name:
            library_name, _, core_name = name.partition("/")
            return self.library(library_name).get(core_name)
        owners = self._bare_name_map().get(name, ())
        if not owners:
            raise LibraryError(f"no core named {name!r} in any attached library")
        if len(owners) > 1:
            provenances = [lib.get(name).provenance for lib in owners]
            raise LibraryError(
                f"core name {name!r} is ambiguous across libraries "
                f"{provenances}; use 'library/core'")
        return owners[0].get(name)

    def _bare_name_map(self) -> Dict[str, List[ReuseLibrary]]:
        """bare core name -> owning libraries, epoch-cached."""
        with self._lock:
            epoch = self.epoch
            if self._bare_names is None or self._bare_names_epoch != epoch:
                mapping: Dict[str, List[ReuseLibrary]] = {}
                for library in self._libraries.values():
                    for core_name in library._cores:
                        mapping.setdefault(core_name, []).append(library)
                self._bare_names = mapping
                self._bare_names_epoch = epoch
            return self._bare_names

    def select(self, predicate: Callable[[DesignObject], bool]
               ) -> List[DesignObject]:
        return [core for core in self if predicate(core)]
