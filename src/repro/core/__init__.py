"""The design space layer — the paper's primary contribution.

Public API re-exported here; see DESIGN.md for the system inventory and
the README for a guided tour.
"""

from repro.core.advisor import IssueImpact, advise, assess_issue
from repro.core.cdo import ClassOfDesignObjects
from repro.core.decomposition import (
    DEFAULT_SYMBOL_CLASSES,
    DecompositionPlan,
    OperatorTask,
    plan_decomposition,
)
from repro.core.diff import LayerDiff, MeritDelta, diff_layers
from repro.core.clustering import (
    Cluster,
    agglomerate,
    explain_clusters,
    suggest_cluster_count,
    suggest_generalization,
)
from repro.core.constraints import (
    UNBOUND,
    ConsistencyConstraint,
    ConstraintSet,
    SessionBinding,
)
from repro.core.designobject import (
    AREA,
    CLOCK_NS,
    CYCLES,
    DELAY_US,
    LATENCY_NS,
    POWER_MW,
    THROUGHPUT_OPS,
    DesignObject,
)
from repro.core.evaluation import EvaluationPoint, EvaluationSpace, dominates
from repro.core.explore import (
    BranchAndBoundStrategy,
    BranchEvaluator,
    BeamStrategy,
    EvolutionaryStrategy,
    ExhaustiveStrategy,
    ExplorationEngine,
    ExplorationProblem,
    ExplorationResult,
    ExplorationStats,
    Outcome,
    ParetoFrontier,
    PoolStats,
    SearchStrategy,
    WorkerPool,
    make_strategy,
)
from repro.core.index import CoreIndex, IndexedPruneReport
from repro.core.layer import DesignSpaceLayer
from repro.core.library import LibraryFederation, ReuseLibrary
from repro.core.lint import (
    Diagnostic,
    LintConfig,
    LintReport,
    LintRule,
    RuleRegistry,
    Severity,
    SourceLocation,
    lint_layer,
)
from repro.core.path import (
    ClassPattern,
    PropertyPath,
    Selector,
    SelectorRegistry,
    parse_path,
    parse_pattern,
)
from repro.core.properties import (
    BehavioralDecomposition,
    BehavioralDescription,
    DesignIssue,
    Property,
    PropertyKind,
    Requirement,
    RequirementSense,
)
from repro.core.pruning import (
    MissingPolicy,
    PruneReport,
    merit_ranges,
    option_support,
    prune,
)
from repro.core.query import CoreQuery, QueryError
from repro.core.reindex import (
    attach_alternative_hierarchy,
    reindex,
    reindexed_core,
)
from repro.core.relations import (
    EliminateOptions,
    EstimatorInvocation,
    Formula,
    InconsistentOptions,
    Relation,
    RelationResult,
)
from repro.core.sensitivity import (
    SensitivityReport,
    SweepPoint,
    sweep_requirement,
)
from repro.core.reporting import (
    render_hierarchy,
    render_markdown,
    render_scatter,
    render_table,
)
from repro.core.serialize import (
    LayerSnapshot,
    SerializationError,
    layer_from_dict,
    layer_to_dict,
    register_hydrator,
)
from repro.core.obs import (
    MetricsRegistry,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
)
from repro.core.session import DecisionOutcome, ExplorationSession, OptionInfo
from repro.core.values import (
    AnyDomain,
    BoolDomain,
    DivisorDomain,
    Domain,
    EnumDomain,
    IntRange,
    PowerOfTwoDomain,
    PredicateDomain,
    RealRange,
)

__all__ = [
    "AREA", "CLOCK_NS", "CYCLES", "DELAY_US", "LATENCY_NS", "POWER_MW",
    "THROUGHPUT_OPS",
    "AnyDomain", "BoolDomain", "DivisorDomain", "Domain", "EnumDomain",
    "IntRange", "PowerOfTwoDomain", "PredicateDomain", "RealRange",
    "BehavioralDecomposition", "BehavioralDescription", "DesignIssue",
    "Property", "PropertyKind", "Requirement", "RequirementSense",
    "ClassOfDesignObjects", "DesignSpaceLayer",
    "ClassPattern", "PropertyPath", "Selector", "SelectorRegistry",
    "parse_path", "parse_pattern",
    "ConsistencyConstraint", "ConstraintSet", "SessionBinding", "UNBOUND",
    "EliminateOptions", "EstimatorInvocation", "Formula",
    "InconsistentOptions", "Relation", "RelationResult",
    "DesignObject", "LibraryFederation", "ReuseLibrary",
    "CoreIndex", "IndexedPruneReport",
    "MissingPolicy", "PruneReport", "merit_ranges", "option_support", "prune",
    "EvaluationPoint", "EvaluationSpace", "dominates",
    "Cluster", "agglomerate", "explain_clusters", "suggest_cluster_count",
    "suggest_generalization",
    "DecisionOutcome", "ExplorationSession", "OptionInfo",
    "MetricsRegistry", "NullRecorder", "TraceEvent", "TraceRecorder",
    "render_hierarchy", "render_markdown", "render_scatter",
    "render_table",
    "DEFAULT_SYMBOL_CLASSES", "DecompositionPlan", "OperatorTask",
    "plan_decomposition",
    "CoreQuery", "QueryError",
    "LayerDiff", "MeritDelta", "diff_layers",
    "attach_alternative_hierarchy", "reindex", "reindexed_core",
    "LayerSnapshot", "SerializationError", "layer_from_dict",
    "layer_to_dict", "register_hydrator",
    "SensitivityReport", "SweepPoint", "sweep_requirement",
    "IssueImpact", "advise", "assess_issue",
    "Diagnostic", "LintConfig", "LintReport", "LintRule", "RuleRegistry",
    "Severity", "SourceLocation", "lint_layer",
    "BeamStrategy", "BranchAndBoundStrategy", "BranchEvaluator",
    "EvolutionaryStrategy", "ExhaustiveStrategy",
    "ExplorationEngine", "ExplorationProblem", "ExplorationResult",
    "ExplorationStats", "Outcome", "ParetoFrontier", "PoolStats",
    "SearchStrategy", "WorkerPool", "make_strategy",
]
