"""Behavioral decomposition — designing a CDO's operators on other CDOs.

Paper Sec 5.1.6 / Fig 10: the behavioral description of a complex CDO is
a *behavioral decomposition* — its behaviour is expressed in terms of
less complex CDOs.  The conceptual design of the critical operators
(the loop additions and multiplications of the Montgomery listing) "is
realized by addressing Design Issue DI7 ... performed using other CDOs
in the hierarchy (the Arithmetic Adders and Multipliers)".

This module mechanizes that workflow:

1. :func:`plan_decomposition` inspects the decomposition property
   visible at an exploration session's current CDO, extracts the
   operator instances from the attached behavioral description, and
   matches each to the operator CDOs the decomposition's restriction
   pattern allows;
2. :meth:`DecompositionPlan.open` spawns a child exploration session on
   a chosen operator CDO, carrying over the requirement values that are
   meaningful there (the operator inherits the component's word length);
3. :meth:`DecompositionPlan.write_back` folds the child's conclusion
   (the specialization it committed to) back into a design issue of the
   parent session — e.g. the Adder sub-exploration's "Carry-Save"
   outcome becomes the parent's ``AdderImplementation`` decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.behavior.ir import Behavior, OperatorInstance
from repro.core.cdo import ClassOfDesignObjects
from repro.core.path import parse_path, parse_pattern
from repro.core.properties import BehavioralDecomposition, BehavioralDescription
from repro.core.session import ExplorationSession
from repro.errors import PropertyError, SessionError

#: Which operator-CDO names can realize which operator symbols.
DEFAULT_SYMBOL_CLASSES: Dict[str, Tuple[str, ...]] = {
    "+": ("Adder",),
    "-": ("Adder",),
    "*": ("Multiplier",),
}


@dataclass
class OperatorTask:
    """One operator instance awaiting realization on an operator CDO."""

    instance: OperatorInstance
    candidates: List[ClassOfDesignObjects]
    child: Optional[ExplorationSession] = None
    chosen_cdo: Optional[ClassOfDesignObjects] = None

    @property
    def key(self) -> str:
        return (f"{self.instance.symbol}@line{self.instance.line}"
                f"#{self.instance.ordinal}")

    def describe(self) -> str:
        names = [c.qualified_name for c in self.candidates]
        status = "open" if self.child is not None else "pending"
        return f"{self.key} -> {names} [{status}]"


class DecompositionPlan:
    """The DI7 workflow state for one decomposition property."""

    def __init__(self, parent: ExplorationSession,
                 prop: BehavioralDecomposition,
                 behavior: Behavior,
                 tasks: Sequence[OperatorTask]):
        self.parent = parent
        self.property = prop
        self.behavior = behavior
        self.tasks = list(tasks)

    def task(self, key: str) -> OperatorTask:
        for task in self.tasks:
            if task.key == key:
                return task
        raise SessionError(
            f"no operator task {key!r}; available: "
            f"{[t.key for t in self.tasks]}")

    def open(self, task: OperatorTask,
             cdo: Optional[ClassOfDesignObjects] = None,
             requirement_overrides: Optional[Mapping[str, object]] = None
             ) -> ExplorationSession:
        """Start the sub-exploration for one operator.

        ``cdo`` picks among the task's candidate operator CDOs (defaults
        to the sole candidate).  Requirement values already entered in
        the parent session are carried over wherever the operator CDO
        declares a requirement of the same name;
        ``requirement_overrides`` replaces individual carried values —
        typically the word length, since a sliced datapath's operators
        work at the slice width, not the component's full EOL.
        """
        if cdo is None:
            if len(task.candidates) != 1:
                raise SessionError(
                    f"task {task.key}: choose one of "
                    f"{[c.qualified_name for c in task.candidates]}")
            cdo = task.candidates[0]
        if cdo not in task.candidates:
            raise SessionError(
                f"task {task.key}: {cdo.qualified_name} is not a "
                f"candidate realization")
        child = ExplorationSession(self.parent.layer, cdo,
                                   merit_metrics=self.parent.merit_metrics)
        carried = dict(self.parent.requirement_values)
        if requirement_overrides:
            carried.update(requirement_overrides)
        for name, value in carried.items():
            if cdo.has_property(name):
                try:
                    child.set_requirement(name, value)
                except Exception:
                    continue  # incompatible domain on the operator side
        task.child = child
        task.chosen_cdo = cdo
        return child

    def conclusion(self, task: OperatorTask) -> object:
        """The child exploration's outcome: the option of the chosen
        operator CDO's generalized issue it committed to (the family
        selected below the CDO the task was opened on)."""
        if task.child is None or task.chosen_cdo is None:
            raise SessionError(f"task {task.key} has not been opened")
        node = task.child.current_cdo
        for step in node.path_from_root():
            if step.parent is task.chosen_cdo:
                return step.option_of_parent
        raise SessionError(
            f"task {task.key}: the sub-exploration has not specialized "
            f"below {task.chosen_cdo.qualified_name} yet")

    def write_back(self, task: OperatorTask, parent_issue: str) -> None:
        """Fold the child's conclusion into a parent design issue."""
        self.parent.decide(parent_issue, self.conclusion(task))

    def describe(self) -> str:
        lines = [f"decomposition of {self.behavior.name!r} "
                 f"({self.property.name}):"]
        lines += [f"  {task.describe()}" for task in self.tasks]
        return "\n".join(lines)


def _candidate_cdos(session: ExplorationSession,
                    prop: BehavioralDecomposition,
                    class_names: Sequence[str]
                    ) -> List[ClassOfDesignObjects]:
    """Operator CDOs allowed by the restriction pattern whose name (or
    whose ancestor's name) is one of ``class_names``."""
    cdos = session.layer.all_cdos()
    if prop.restrict_pattern:
        pattern = parse_pattern(prop.restrict_pattern)
        cdos = [c for c in cdos if pattern.matches(c.qualified_name)]
    out = []
    for cdo in cdos:
        if cdo.name in class_names:
            out.append(cdo)
    return out


def plan_decomposition(session: ExplorationSession,
                       property_name: str,
                       symbol_classes: Optional[
                           Mapping[str, Tuple[str, ...]]] = None,
                       lines: Optional[Sequence[int]] = None
                       ) -> DecompositionPlan:
    """Build the DI7 plan for the decomposition visible at the session.

    ``lines`` restricts the operator census to specific listing lines
    (the paper decomposes only the *critical* loop operators);
    ``symbol_classes`` overrides the symbol -> operator-CDO-name map.
    """
    prop = session.current_cdo.find_property(property_name)
    if not isinstance(prop, BehavioralDecomposition):
        raise SessionError(
            f"{property_name!r} is a {type(prop).__name__}, not a "
            f"behavioral decomposition")
    source = parse_path(prop.source)
    try:
        bd = session.current_cdo.find_property(source.property_name)
    except PropertyError:
        raise SessionError(
            f"decomposition source {prop.source!r} is not visible from "
            f"{session.current_cdo.qualified_name}") from None
    if not isinstance(bd, BehavioralDescription) or \
            not isinstance(bd.description, Behavior):
        raise SessionError(
            f"{source.property_name!r} carries no executable behavioral "
            f"description")
    behavior = bd.description
    classes = dict(DEFAULT_SYMBOL_CLASSES)
    if symbol_classes:
        classes.update(symbol_classes)
    tasks: List[OperatorTask] = []
    for instance in behavior.operators():
        if instance.symbol not in classes:
            continue
        if lines is not None and instance.line not in lines:
            continue
        candidates = _candidate_cdos(session, prop,
                                     classes[instance.symbol])
        if not candidates:
            continue
        tasks.append(OperatorTask(instance, candidates))
    if not tasks:
        raise SessionError(
            f"decomposition {property_name!r}: no operator in "
            f"{behavior.name!r} maps to an available operator CDO")
    return DecompositionPlan(session, prop, behavior, tasks)
