"""Layer persistence: design space layers to/from plain dictionaries.

The paper's layer is "self-documented" and meant to be maintained per
design environment — which implies it must outlive the process that
built it.  This module serializes the *representation*: hierarchies,
properties (with their value domains), aliases, and the indexed cores
of every attached library.

Two things intentionally do not round-trip as code:

* **consistency-constraint relations and estimation tools** are Python
  callables; they are exported descriptively (name, doc, reference
  sets, relation description) so the serialized layer stays
  self-documented, and must be re-registered by the loading
  environment (``attach_constraints``/``register_tool``);
* **predicate domains and behavioral payloads** other than
  :class:`~repro.behavior.ir.Behavior` export their description; by
  default loading such a property raises, or — with ``lenient=True`` —
  degrades it to a documented permissive domain.
"""

from __future__ import annotations

import hashlib
import importlib
import pickle
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.behavior.ir import Behavior
from repro.behavior.serialize import behavior_from_dict, behavior_to_dict
from repro.core.cdo import ClassOfDesignObjects
from repro.core.designobject import DesignObject
from repro.core.layer import DesignSpaceLayer
from repro.core.library import ReuseLibrary
from repro.core.properties import (
    BehavioralDecomposition,
    BehavioralDescription,
    DesignIssue,
    Property,
    Requirement,
    RequirementSense,
)
from repro.core.values import (
    AnyDomain,
    BoolDomain,
    DivisorDomain,
    Domain,
    EnumDomain,
    IntRange,
    PowerOfTwoDomain,
    PredicateDomain,
    RealRange,
)
from repro.errors import ReproError


class SerializationError(ReproError):
    """A layer element cannot be (de)serialized."""


# ----------------------------------------------------------------------
# domains
# ----------------------------------------------------------------------
def domain_to_dict(domain: Domain) -> Dict[str, Any]:
    if isinstance(domain, BoolDomain):
        return {"type": "bool"}
    if isinstance(domain, EnumDomain):
        return {"type": "enum", "options": list(domain.options)}
    if isinstance(domain, RealRange):
        return {"type": "real", "lo": domain.lo, "hi": domain.hi,
                "unit": domain.unit}
    if isinstance(domain, IntRange):
        return {"type": "int", "lo": domain.lo, "hi": domain.hi}
    if isinstance(domain, PowerOfTwoDomain):
        return {"type": "pow2", "max_value": domain.max_value,
                "min_value": domain.min_value}
    if isinstance(domain, DivisorDomain):
        return {"type": "divisor", "of": domain.of}
    if isinstance(domain, PredicateDomain):
        return {"type": "predicate", "description": domain.description,
                "samples": list(domain.samples)}
    if isinstance(domain, AnyDomain):
        return {"type": "any"}
    raise SerializationError(
        f"cannot serialize domain {type(domain).__name__}")


def domain_from_dict(data: Dict[str, Any], lenient: bool = False) -> Domain:
    kind = data.get("type")
    if kind == "bool":
        return BoolDomain()
    if kind == "enum":
        return EnumDomain(data["options"])
    if kind == "real":
        return RealRange(data.get("lo"), data.get("hi"),
                         data.get("unit", ""))
    if kind == "int":
        return IntRange(data.get("lo"), data.get("hi"))
    if kind == "pow2":
        return PowerOfTwoDomain(data.get("max_value"),
                                data.get("min_value", 2))
    if kind == "divisor":
        return DivisorDomain(data["of"])
    if kind == "any":
        return AnyDomain()
    if kind == "predicate":
        if not lenient:
            raise SerializationError(
                f"predicate domain {data.get('description')!r} has no "
                f"code representation; load with lenient=True to degrade "
                f"it to a documented permissive domain")
        return PredicateDomain(lambda value, _ctx: True,
                               data.get("description", "{any}"),
                               samples=tuple(data.get("samples", ())))
    raise SerializationError(f"unknown domain type {kind!r}")


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
def property_to_dict(prop: Property) -> Dict[str, Any]:
    base: Dict[str, Any] = {"name": prop.name, "doc": prop.doc}
    if isinstance(prop, Requirement):
        base["kind"] = "requirement"
        base["domain"] = domain_to_dict(prop.domain)
        base["sense"] = prop.sense.value
        base["unit"] = prop.unit
    elif isinstance(prop, DesignIssue):
        base["kind"] = "design_issue"
        base["domain"] = domain_to_dict(prop.domain)
        base["generalized"] = prop.generalized
        base["default"] = prop.default
    elif isinstance(prop, BehavioralDecomposition):
        base["kind"] = "decomposition"
        base["source"] = prop.source
        base["restrict_pattern"] = prop.restrict_pattern
    elif isinstance(prop, BehavioralDescription):
        base["kind"] = "description"
        base["level"] = prop.level
        if isinstance(prop.description, Behavior):
            base["behavior"] = behavior_to_dict(prop.description)
        elif prop.description is not None:
            base["payload_repr"] = repr(prop.description)
    else:
        raise SerializationError(
            f"cannot serialize property {type(prop).__name__}")
    return base


def property_from_dict(data: Dict[str, Any],
                       lenient: bool = False) -> Property:
    kind = data.get("kind")
    if kind == "requirement":
        return Requirement(data["name"],
                           domain_from_dict(data["domain"], lenient),
                           data["doc"],
                           sense=RequirementSense(data["sense"]),
                           unit=data.get("unit", ""))
    if kind == "design_issue":
        return DesignIssue(data["name"],
                           domain_from_dict(data["domain"], lenient),
                           data["doc"],
                           generalized=data.get("generalized", False),
                           default=data.get("default"))
    if kind == "decomposition":
        return BehavioralDecomposition(
            data["name"], data["doc"], source=data["source"],
            restrict_pattern=data.get("restrict_pattern", ""))
    if kind == "description":
        payload = None
        if "behavior" in data:
            payload = behavior_from_dict(data["behavior"])
        elif "payload_repr" in data and not lenient:
            raise SerializationError(
                f"description {data['name']!r} carried an opaque payload "
                f"({data['payload_repr']}); load with lenient=True to "
                f"drop it")
        return BehavioralDescription(data["name"], data["doc"],
                                     description=payload,
                                     level=data.get("level", "algorithm"))
    raise SerializationError(f"unknown property kind {kind!r}")


# ----------------------------------------------------------------------
# CDOs
# ----------------------------------------------------------------------
def cdo_to_dict(cdo: ClassOfDesignObjects) -> Dict[str, Any]:
    return {
        "name": cdo.name,
        "doc": cdo.doc,
        "properties": [property_to_dict(p) for p in cdo.own_properties],
        "children": [
            {"option": child.option_of_parent, **cdo_to_dict(child)}
            for child in cdo.children
        ],
    }


def cdo_from_dict(data: Dict[str, Any],
                  parent: Optional[ClassOfDesignObjects] = None,
                  lenient: bool = False) -> ClassOfDesignObjects:
    if parent is None:
        node = ClassOfDesignObjects(data["name"], data["doc"])
    else:
        node = parent.specialize(data["__option"], name=data["name"],
                                 doc=data["doc"])
    for prop_data in data.get("properties", []):
        node.add_property(property_from_dict(prop_data, lenient))
    for child_data in data.get("children", []):
        child_data = dict(child_data)
        child_data["__option"] = child_data.pop("option")
        cdo_from_dict(child_data, parent=node, lenient=lenient)
    return node


# ----------------------------------------------------------------------
# cores / libraries
# ----------------------------------------------------------------------
def core_to_dict(core: DesignObject) -> Dict[str, Any]:
    return {
        "name": core.name,
        "cdo": core.cdo_name,
        "doc": core.doc,
        "provenance": core.provenance,
        "properties": dict(core.properties),
        "merits": dict(core.merits),
        # Views are payload references (simulators, HDL); they do not
        # serialize — the loading environment re-attaches them.
    }


def core_from_dict(data: Dict[str, Any]) -> DesignObject:
    return DesignObject(data["name"], data["cdo"],
                        data.get("properties", {}),
                        data.get("merits", {}),
                        doc=data.get("doc", ""),
                        provenance=data.get("provenance", ""))


# ----------------------------------------------------------------------
# the layer
# ----------------------------------------------------------------------
def layer_to_dict(layer: DesignSpaceLayer) -> Dict[str, Any]:
    return {
        "name": layer.name,
        "doc": layer.doc,
        "roots": [cdo_to_dict(root) for root in layer.roots],
        "aliases": dict(layer.aliases),
        "libraries": [
            {"name": library.name, "doc": library.doc,
             "cores": [core_to_dict(core) for core in library]}
            for library in layer.libraries.libraries
        ],
        # Self-documentation of the parts that are code:
        "constraints_doc": [c.describe() for c in layer.constraints],
        "tools_doc": sorted(layer.tools),
        "selectors_doc": list(layer.selectors.names()),
    }


def layer_from_dict(data: Dict[str, Any],
                    lenient: bool = False) -> DesignSpaceLayer:
    """Rebuild a layer's representation from its serialized form.

    Constraints, estimation tools and selectors must be re-registered
    by the caller (their documentation survives under
    ``constraints_doc``/``tools_doc``/``selectors_doc``).
    """
    layer = DesignSpaceLayer(data["name"], data["doc"])
    for root_data in data.get("roots", []):
        layer.add_root(cdo_from_dict(root_data, lenient=lenient))
    for alias, target in data.get("aliases", {}).items():
        layer.add_alias(alias, target)
    for library_data in data.get("libraries", []):
        library = ReuseLibrary(library_data["name"],
                               library_data.get("doc", ""))
        for core_data in library_data.get("cores", []):
            library.add(core_from_dict(core_data))
        layer.attach_library(library)
    return layer


# ----------------------------------------------------------------------
# snapshots: compact, picklable layer captures for worker hydration
# ----------------------------------------------------------------------
#: A hydrator re-attaches the *code* parts of a layer — consistency
#: constraints and estimation tools — that `layer_to_dict` can only
#: document.  Registered by name so a :class:`LayerSnapshot` can name
#: them and a worker process can resolve them after import.
Hydrator = Callable[[DesignSpaceLayer], None]

_HYDRATORS: Dict[str, Hydrator] = {}

#: Registration normally happens at import time, but a worker resolving
#: a ``pkg.module:name`` hydrator triggers imports (and therefore
#: registrations) concurrently with other threads' lookups, so the
#: registry is lock-guarded.
_HYDRATOR_LOCK = threading.Lock()


def register_hydrator(name: str, fn: Optional[Hydrator] = None
                      ) -> Callable[[Hydrator], Hydrator]:
    """Register a named layer hydrator (usable as a decorator).

    A hydrator is called with a freshly deserialized layer and must
    re-attach whatever does not round-trip as data: consistency
    constraints (``layer.add_constraint``), estimation tools
    (``layer.register_tool``) and selectors.  Registration is
    idempotent only for the identical function; a different function
    under a taken name raises.
    """
    def install(fn: Hydrator) -> Hydrator:
        with _HYDRATOR_LOCK:
            existing = _HYDRATORS.get(name)
            if existing is not None and existing is not fn:
                raise SerializationError(
                    f"hydrator {name!r} already registered")
            _HYDRATORS[name] = fn
        return fn
    if fn is not None:
        install(fn)
        return lambda f: f
    return install


def unregister_hydrator(name: str) -> None:
    """Remove a registered hydrator (primarily for tests)."""
    with _HYDRATOR_LOCK:
        _HYDRATORS.pop(name, None)


def hydrator_names() -> Tuple[str, ...]:
    with _HYDRATOR_LOCK:
        return tuple(sorted(_HYDRATORS))


def resolve_hydrator(name: str) -> Hydrator:
    """Look up a hydrator; ``pkg.module:name`` imports the module first.

    The qualified form makes snapshots robust under the ``spawn`` start
    method, where a fresh worker process has imported nothing: the
    import runs the module's ``register_hydrator`` calls before the
    lookup.
    """
    base = name
    if ":" in name:
        module, _, base = name.partition(":")
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise SerializationError(
                f"hydrator {name!r}: cannot import {module!r}: {exc}"
            ) from exc
    try:
        return _HYDRATORS[base]
    except KeyError:
        raise SerializationError(
            f"unknown layer hydrator {name!r}; registered: "
            f"{list(hydrator_names())} (register it with "
            f"register_hydrator in a module the worker imports, or name "
            f"it as 'package.module:name' so workers can import it)"
        ) from None


@dataclass(frozen=True)
class LayerSnapshot:
    """A compact, picklable capture of a layer's representation.

    The payload is the zlib-compressed pickle of
    :func:`layer_to_dict`'s output — plain data, cheap to ship to a
    worker process once and hydrate there once, instead of re-running a
    ``layer_factory`` per task.  ``hydrators`` names registered
    re-attachment functions (:func:`register_hydrator`) that restore
    constraint relations and estimation tools, so a hydrated layer is
    search-equivalent to the live one.
    """

    payload: bytes
    hydrators: Tuple[str, ...] = ()
    lenient: bool = False
    digest: str = field(default="", compare=False)

    @classmethod
    def capture(cls, layer: DesignSpaceLayer,
                hydrators: Sequence[str] = (),
                lenient: bool = False) -> "LayerSnapshot":
        """Snapshot a layer, validating hydrator names eagerly."""
        names = tuple(hydrators)
        for name in names:
            resolve_hydrator(name)  # fail at capture, not in a worker
        raw = pickle.dumps(layer_to_dict(layer),
                           protocol=pickle.HIGHEST_PROTOCOL)
        payload = zlib.compress(raw, level=1)
        digest = cls._digest(payload, names, lenient)
        return cls(payload=payload, hydrators=names, lenient=lenient,
                   digest=digest)

    @staticmethod
    def _digest(payload: bytes, hydrators: Tuple[str, ...],
                lenient: bool) -> str:
        h = hashlib.sha256(payload)
        for name in hydrators:
            h.update(name.encode("utf-8"))
        h.update(b"lenient" if lenient else b"strict")
        return h.hexdigest()[:16]

    def __post_init__(self) -> None:
        if not self.digest:
            object.__setattr__(
                self, "digest",
                self._digest(self.payload, self.hydrators, self.lenient))

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    def hydrate(self) -> DesignSpaceLayer:
        """Rebuild the layer and re-attach its code parts by name.

        Raises :class:`SerializationError` when a named hydrator is not
        registered in this process — the loading environment must import
        whatever module registers it before hydrating.
        """
        data = pickle.loads(zlib.decompress(self.payload))
        layer = layer_from_dict(data, lenient=self.lenient)
        for name in self.hydrators:
            resolve_hydrator(name)(layer)
        return layer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LayerSnapshot {self.digest} {self.size_bytes}B "
                f"hydrators={list(self.hydrators)}>")
