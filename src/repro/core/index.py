"""Inverted core indexes — the query engine behind the layer's scaling claim.

The paper argues the design space layer is "easily scalable" because it
*indexes* cores instead of storing them.  This module makes that literal:
a :class:`CoreIndex` precomputes, over a snapshot of a core collection,

* the **descendant closure** of every CDO prefix, so "all cores indexed
  at or below ``Operator.Modular.Multiplier``" is a set lookup instead of
  a string-prefix scan over the whole federation;
* **posting sets** per (property, value), so design-decision filtering is
  set intersection instead of per-core predicate evaluation; and
* **per-merit sorted arrays**, so threshold requirements bisect and
  figure-of-merit ranges probe instead of scanning.

Pruning through the index returns the same :class:`PruneReport` the naive
filter produces — survivors in the same order, elimination reasons
reconstructed lazily (and identically) only when someone reads them.

Indexes are snapshots; freshness is the owner's problem.  The library /
federation / layer classes own one index each and rebuild it when their
epoch counter moves (see ``docs/performance.md``), so callers never flush
caches by hand.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.core.cdo import QNAME_SEP
from repro.core.designobject import DesignObject
from repro.core.properties import Requirement, RequirementSense
from repro.core.pruning import (
    MissingPolicy,
    PruneReport,
    _match_decision,
    _match_requirement,
)

_EMPTY: FrozenSet[int] = frozenset()


def _is_plain_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class CoreIndex:
    """An immutable inverted index over a snapshot of design objects.

    Core ids are positions in the snapshot order (the owner's iteration
    order), so materializing a sorted id set reproduces exactly the core
    ordering the linear scans used to return.
    """

    def __init__(self, cores: Iterable[DesignObject]):
        self.cores: List[DesignObject] = list(cores)
        self.all_ids: FrozenSet[int] = frozenset(range(len(self.cores)))
        self._by_exact: Dict[str, Set[int]] = {}
        self._by_subtree: Dict[str, Set[int]] = {}
        self._by_prop: Dict[str, Dict[object, Set[int]]] = {}
        self._with_prop: Dict[str, Set[int]] = {}
        #: ids whose value for a property is unhashable (checked linearly).
        self._odd_prop_ids: Dict[str, Set[int]] = {}
        self._with_merit: Dict[str, Set[int]] = {}
        #: merit key -> (sorted values, ids in that order); built lazily.
        self._merit_sorted: Dict[str, Tuple[List[float], List[int]]] = {}
        for i, core in enumerate(self.cores):
            self._by_exact.setdefault(core.cdo_name, set()).add(i)
            parts = core.cdo_name.split(QNAME_SEP)
            for depth in range(1, len(parts) + 1):
                prefix = QNAME_SEP.join(parts[:depth])
                self._by_subtree.setdefault(prefix, set()).add(i)
            for name, value in core._properties.items():
                self._with_prop.setdefault(name, set()).add(i)
                groups = self._by_prop.setdefault(name, {})
                try:
                    groups.setdefault(value, set()).add(i)
                except TypeError:
                    self._odd_prop_ids.setdefault(name, set()).add(i)
            for key in core._merits:
                self._with_merit.setdefault(key, set()).add(i)

    # ------------------------------------------------------------------
    # id-set primitives
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cores)

    def subtree_ids(self, cdo_name: str) -> FrozenSet[int]:
        """Ids of cores indexed at ``cdo_name`` or any descendant."""
        ids = self._by_subtree.get(cdo_name)
        return frozenset(ids) if ids is not None else _EMPTY

    def exact_ids(self, cdo_name: str) -> FrozenSet[int]:
        ids = self._by_exact.get(cdo_name)
        return frozenset(ids) if ids is not None else _EMPTY

    def materialize(self, ids: Iterable[int]) -> List[DesignObject]:
        """Cores for ``ids`` in snapshot (= federation iteration) order."""
        return [self.cores[i] for i in sorted(ids)]

    def cores_under(self, cdo_name: str,
                    include_descendants: bool = True) -> List[DesignObject]:
        ids = (self.subtree_ids(cdo_name) if include_descendants
               else self.exact_ids(cdo_name))
        return self.materialize(ids)

    def decision_ids(self, name: str, option: object,
                     policy: MissingPolicy = MissingPolicy.EXCLUDE
                     ) -> Set[int]:
        """Ids complying with the decision ``name = option``."""
        groups = self._by_prop.get(name, {})
        try:
            ok = set(groups.get(option, _EMPTY))
        except TypeError:  # unhashable option: compare against each group
            ok = set()
            for value, ids in groups.items():
                if value == option:
                    ok |= ids
        for i in self._odd_prop_ids.get(name, _EMPTY):
            if self.cores[i].property_value(name) == option:
                ok.add(i)
        if policy is MissingPolicy.INCLUDE:
            ok |= self.all_ids - self._with_prop.get(name, _EMPTY)
        return ok

    def merit_ids_at_most(self, key: str, bound: float) -> Set[int]:
        values, ids = self._merit_arrays(key)
        return set(ids[:bisect_right(values, bound)])

    def merit_ids_at_least(self, key: str, bound: float) -> Set[int]:
        values, ids = self._merit_arrays(key)
        return set(ids[bisect_left(values, bound):])

    def _merit_arrays(self, key: str) -> Tuple[List[float], List[int]]:
        cached = self._merit_sorted.get(key)
        if cached is None:
            pairs = sorted((self.cores[i].merit(key), i)
                           for i in self._with_merit.get(key, _EMPTY))
            cached = ([v for v, _ in pairs], [i for _, i in pairs])
            # dsa: allow[DSA002] -- idempotent publish: an index is frozen
            # after __init__, so racing readers build identical arrays and
            # the dict store is atomic under the GIL; worst case is one
            # redundant sort, never a wrong answer
            self._merit_sorted[key] = cached
        return cached

    def requirement_ids(self, req: Requirement, required: object) -> Set[int]:
        """Ids *not eliminated* by the requirement value ``required``.

        Mirrors :func:`repro.core.pruning._match_requirement`: a documented
        property value must satisfy the requirement; otherwise a matching
        figure of merit is consulted; cores documenting neither are
        unconstrained.  Grouping by distinct value means ``satisfied_by``
        runs once per value, not once per core.
        """
        documented = self._with_prop.get(req.name, _EMPTY)
        ok: Set[int] = set()
        for value, ids in self._by_prop.get(req.name, {}).items():
            if req.satisfied_by(value, required):
                ok |= ids
        for i in self._odd_prop_ids.get(req.name, _EMPTY):
            if req.satisfied_by(self.cores[i].property_value(req.name),
                                required):
                ok.add(i)
        merit_holders = self._with_merit.get(req.name, _EMPTY)
        merit_only = merit_holders - documented
        if merit_only:
            ok |= self._satisfying_merit_ids(req, required) & merit_only
        ok |= self.all_ids - documented - merit_holders
        return ok

    def _satisfying_merit_ids(self, req: Requirement, required: object
                              ) -> Set[int]:
        if _is_plain_number(required):
            if req.sense is RequirementSense.MAX:
                return self.merit_ids_at_most(req.name, float(required))
            if req.sense in (RequirementSense.MIN,
                             RequirementSense.AT_LEAST_SUPPORT):
                return self.merit_ids_at_least(req.name, float(required))
        # EXACT or a non-numeric requirement value: merits are floats, so
        # fall back to grouped equality via satisfied_by.
        ok: Set[int] = set()
        values, ids = self._merit_arrays(req.name)
        start = 0
        while start < len(values):
            stop = bisect_right(values, values[start], lo=start)
            if req.satisfied_by(values[start], required):
                ok.update(ids[start:stop])
            start = stop
        return ok

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def prune_ids(self, start_ids: Iterable[int],
                  decisions: Mapping[str, object],
                  requirements: Sequence[Tuple[Requirement, object]] = (),
                  policy: MissingPolicy = MissingPolicy.EXCLUDE) -> Set[int]:
        """Intersect ``start_ids`` down to the ids complying with every
        decision and requirement value."""
        candidates = set(start_ids)
        for name, option in decisions.items():
            if not candidates:
                break
            candidates &= self.decision_ids(name, option, policy)
        for req, value in requirements:
            if not candidates:
                break
            candidates &= self.requirement_ids(req, value)
        return candidates

    def prune(self, cdo_name: str,
              decisions: Mapping[str, object],
              requirements: Sequence[Tuple[Requirement, object]] = (),
              policy: MissingPolicy = MissingPolicy.EXCLUDE
              ) -> "IndexedPruneReport":
        """Indexed equivalent of :func:`repro.core.pruning.prune` over the
        cores under ``cdo_name``; elimination reasons are reconstructed
        only when the report's ``eliminated`` mapping is read."""
        start = self.subtree_ids(cdo_name)
        survivor_ids = frozenset(self.prune_ids(start, decisions,
                                                requirements, policy))
        decisions_snapshot = dict(decisions)
        requirements_snapshot = tuple(requirements)

        def reasons() -> Dict[str, str]:
            out: Dict[str, str] = {}
            for i in sorted(start - survivor_ids):
                core = self.cores[i]
                reason = None
                for name, option in decisions_snapshot.items():
                    reason = _match_decision(core, name, option, policy)
                    if reason:
                        break
                if reason is None:
                    for req, value in requirements_snapshot:
                        reason = _match_requirement(core, req, value, policy)
                        if reason:
                            break
                assert reason is not None, f"{core.name} unexplained"
                out[core.name] = reason
            return out

        return IndexedPruneReport(self.materialize(survivor_ids),
                                  eliminated_factory=reasons,
                                  survivor_ids=survivor_ids, index=self)

    # ------------------------------------------------------------------
    # figure-of-merit ranges
    # ------------------------------------------------------------------
    def merit_ranges_for(self, ids: Set[int], metrics: Sequence[str]
                         ) -> Dict[str, Tuple[float, float]]:
        """Min/max of each metric over ``ids`` (documenting cores only),
        identical to :func:`repro.core.pruning.merit_ranges` over the
        materialized cores."""
        ranges: Dict[str, Tuple[float, float]] = {}
        for metric in metrics:
            holders = self._with_merit.get(metric)
            if not holders:
                continue
            have = ids & holders
            if not have:
                continue
            if len(have) * 4 >= len(holders):
                # Dense candidate set: probe the sorted array from both
                # ends — the first/last hit is the min/max.
                values, ordered = self._merit_arrays(metric)
                lo = next(values[pos] for pos, i in enumerate(ordered)
                          if i in have)
                hi = next(values[pos]
                          for pos in range(len(ordered) - 1, -1, -1)
                          if ordered[pos] in have)
                ranges[metric] = (lo, hi)
            else:
                values_iter = [self.cores[i]._merits[metric] for i in have]
                ranges[metric] = (min(values_iter), max(values_iter))
        return ranges


class IndexedPruneReport(PruneReport):
    """A :class:`PruneReport` that remembers the id set it came from, so
    downstream set algebra (option annotation, range probes) can reuse it
    without re-materializing cores."""

    def __init__(self, survivors, eliminated=None, eliminated_factory=None,
                 survivor_ids: FrozenSet[int] = _EMPTY,
                 index: "CoreIndex" = None):
        super().__init__(survivors, eliminated, eliminated_factory)
        self.survivor_ids = survivor_ids
        self.index = index
