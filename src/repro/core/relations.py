"""Relations usable inside consistency constraints (paper Sec 4, Fig 13).

The paper allows the relation of a consistency constraint (CC) to be
"quite different in nature": stated exactly from first principles or
heuristically, quantitative or qualitative, directly stating
inconsistencies between options, or identifying inferior (dominated)
combinations.  Four relation kinds cover the paper's CC1–CC4:

* :class:`InconsistentOptions` — a predicate over bound values that, when
  true, rejects the combination (CC1);
* :class:`Formula` — computes a dependent value from the independents
  (CC2's ``L = 2*EOL/R + 1``), optionally checking it against a bound;
* :class:`EstimatorInvocation` — defines the utilization context of an
  early estimation tool (CC3): the dependent value is produced by a tool
  registered with the layer;
* :class:`EliminateOptions` — removes dominated options of dependent
  design issues from consideration (CC4).

Each relation evaluates against a ``bindings`` mapping (alias -> value)
and returns a :class:`RelationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConstraintError

Bindings = Mapping[str, object]


@dataclass
class RelationResult:
    """Outcome of evaluating a relation.

    ``ok`` is False only for hard violations.  ``derived`` carries values
    computed for dependent aliases; ``eliminated`` carries
    ``(property_name, option)`` pairs removed from consideration.
    """

    ok: bool = True
    explanation: str = ""
    derived: dict = field(default_factory=dict)
    eliminated: List[Tuple[str, object]] = field(default_factory=list)


class Relation:
    """Base class for CC relations."""

    #: Self-documentation, rendered in layer reports.
    description: str = ""

    def evaluate(self, bindings: Bindings,
                 tools: Optional[Mapping[str, Callable]] = None
                 ) -> RelationResult:
        raise NotImplementedError

    def _require(self, bindings: Bindings, aliases: Sequence[str]) -> None:
        missing = [a for a in aliases if a not in bindings]
        if missing:
            raise ConstraintError(
                f"{type(self).__name__}: unbound aliases {missing}; "
                f"bound: {sorted(bindings)}")


class InconsistentOptions(Relation):
    """Reject a combination of bound values (paper CC1, and the
    Brickell-vs-odd-modulo example).

    ``predicate(bindings)`` returning True means *inconsistent*.
    """

    def __init__(self, predicate: Callable[[Bindings], bool],
                 description: str,
                 requires: Sequence[str] = ()):
        if not description:
            raise ConstraintError("InconsistentOptions needs a description")
        self.predicate = predicate
        self.description = description
        self.requires = tuple(requires)

    def evaluate(self, bindings: Bindings,
                 tools: Optional[Mapping[str, Callable]] = None
                 ) -> RelationResult:
        self._require(bindings, self.requires)
        if self.predicate(bindings):
            return RelationResult(ok=False, explanation=self.description)
        return RelationResult(ok=True)


class Formula(Relation):
    """Derive a dependent value from the independents (paper CC2).

    ``check`` (optional) receives the derived value and the bindings and
    may declare a violation — used when the derived quantity must respect
    a designer-entered requirement.
    """

    def __init__(self, target: str, fn: Callable[[Bindings], object],
                 description: str,
                 requires: Sequence[str] = (),
                 check: Optional[Callable[[object, Bindings], Optional[str]]] = None):
        if not description:
            raise ConstraintError("Formula needs a description")
        self.target = target
        self.fn = fn
        self.description = description
        self.requires = tuple(requires)
        self.check = check

    def evaluate(self, bindings: Bindings,
                 tools: Optional[Mapping[str, Callable]] = None
                 ) -> RelationResult:
        self._require(bindings, self.requires)
        value = self.fn(bindings)
        result = RelationResult(derived={self.target: value})
        if self.check is not None:
            problem = self.check(value, bindings)
            if problem:
                result.ok = False
                result.explanation = problem
        return result


class EstimatorInvocation(Relation):
    """Bind an early estimation tool to its utilization context (CC3).

    The constraint's independents define *what* the tool may be applied
    to; the tool itself is looked up by name in the ``tools`` registry the
    layer passes at evaluation time, receives the bindings, and its result
    becomes the derived value of ``target``.
    """

    def __init__(self, target: str, tool_name: str, description: str,
                 requires: Sequence[str] = ()):
        if not description:
            raise ConstraintError("EstimatorInvocation needs a description")
        self.target = target
        self.tool_name = tool_name
        self.description = description
        self.requires = tuple(requires)

    def evaluate(self, bindings: Bindings,
                 tools: Optional[Mapping[str, Callable]] = None
                 ) -> RelationResult:
        self._require(bindings, self.requires)
        if tools is None or self.tool_name not in tools:
            raise ConstraintError(
                f"estimation tool {self.tool_name!r} is not registered with "
                f"the layer (available: {sorted(tools) if tools else []})")
        value = tools[self.tool_name](bindings)
        return RelationResult(derived={self.target: value})


class EliminateOptions(Relation):
    """Eliminate inferior/dominated options of dependent issues (CC4).

    ``fn(bindings)`` returns ``(property_name, option)`` pairs that are no
    longer to be considered given the bound independents.
    """

    def __init__(self, fn: Callable[[Bindings], Sequence[Tuple[str, object]]],
                 description: str,
                 requires: Sequence[str] = ()):
        if not description:
            raise ConstraintError("EliminateOptions needs a description")
        self.fn = fn
        self.description = description
        self.requires = tuple(requires)

    def evaluate(self, bindings: Bindings,
                 tools: Optional[Mapping[str, Callable]] = None
                 ) -> RelationResult:
        self._require(bindings, self.requires)
        eliminated = list(self.fn(bindings))
        for item in eliminated:
            if not (isinstance(item, tuple) and len(item) == 2
                    and isinstance(item[0], str)):
                raise ConstraintError(
                    f"EliminateOptions must yield (property, option) pairs, "
                    f"got {item!r}")
        return RelationResult(eliminated=eliminated,
                              explanation=self.description)
