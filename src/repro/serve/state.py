"""Per-session server state: tokens, idle-TTL eviction, serialization.

Sessions are the *copy-on-write* half of the service design: every
designer gets a private :class:`~repro.core.session.ExplorationSession`
(requirements, decisions, undo history, checkpoints) while the layer
itself — the expensive part — stays shared and immutable behind the
:class:`~repro.serve.snapshots.SnapshotManager`.  A session mutates only
its own copied dicts; the shared layer is never written.

:class:`ExplorationSession` is single-owner by contract ("never handed
across threads" — see ``repro.analysis.contract``).  The server hands
the *token* across threads instead: whichever handler thread presents
the token next acquires the :class:`ServedSession` lock and becomes the
session's momentary owner, so the wrapped session still ever sees one
thread at a time.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import Callable, Dict, List, Optional, TypeVar

from repro.core.session import ExplorationSession
from repro.serve.errors import ServiceError

T = TypeVar("T")

#: Default idle lifetime of an abandoned session, seconds.
DEFAULT_TTL = 900.0

#: Default cap on concurrently open sessions (memory backstop).
DEFAULT_MAX_SESSIONS = 4096


class ServedSession:
    """One designer's session plus the bookkeeping the server needs.

    All access to the wrapped session funnels through :meth:`run`, which
    serializes handler threads on the per-session lock and refreshes the
    idle clock.
    """

    def __init__(self, token: str, session: ExplorationSession,
                 layer_name: str, start: str, now: float) -> None:
        self._lock = threading.RLock()
        self.token = token
        self.layer_name = layer_name
        self.start = start
        self._session = session
        self._last_used = now
        self._closed = False

    @property
    def last_used(self) -> float:
        with self._lock:
            return self._last_used

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def run(self, now: float, fn: Callable[[ExplorationSession], T]) -> T:
        """Run ``fn`` against the session as its momentary owner."""
        with self._lock:
            if self._closed:
                raise ServiceError(f"session {self.token!r} is closed",
                                   status=410, code="session-closed")
            self._last_used = now
            return fn(self._session)

    def mark_closed(self) -> None:
        with self._lock:
            self._closed = True


class SessionManager:
    """Token-keyed registry of live sessions with idle-TTL eviction.

    Eviction is piggybacked on every :meth:`open`/:meth:`get` (no
    background reaper thread to manage), and :meth:`evict_idle` is
    public so the server loop or tests can force a sweep.  The clock is
    injectable so TTL tests do not sleep.
    """

    def __init__(self, ttl: float = DEFAULT_TTL,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Optional[object] = None) -> None:
        self._lock = threading.RLock()
        self._sessions: Dict[str, ServedSession] = {}
        self._ttl = float(ttl)
        self._max_sessions = int(max_sessions)
        self._clock = clock
        if metrics is not None:
            self._active = metrics.gauge(
                "dsl_sessions_active", "Currently open exploration sessions")
            self._opened = metrics.counter(
                "dsl_sessions_opened_total", "Sessions opened since start")
            self._evicted = metrics.counter(
                "dsl_sessions_evicted_total", "Sessions evicted by idle TTL")
        else:
            self._active = None
            self._opened = None
            self._evicted = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def ttl(self) -> float:
        return self._ttl

    def now(self) -> float:
        return self._clock()

    def _publish_active(self) -> None:
        """Refresh the active-session gauge (lock held by caller)."""
        if self._active is not None:
            self._active.set(len(self._sessions))

    def _evict_expired(self, now: float) -> List[ServedSession]:
        """Drop idle sessions; returns victims.  Reentrant (RLock), so
        the callers that already hold the lock compose freely."""
        with self._lock:
            deadline = now - self._ttl
            victims = [served for served in self._sessions.values()
                       if served.last_used <= deadline]
            for served in victims:
                del self._sessions[served.token]
            return victims

    def open(self, factory: Callable[[], ExplorationSession],
             layer_name: str, start: str) -> ServedSession:
        """Create, register and return a new served session."""
        now = self._clock()
        session = factory()
        # dsa: allow[DSA041] -- tokens are addresses, unpredictable by design
        token = secrets.token_hex(16)
        served = ServedSession(token, session, layer_name, start, now)
        with self._lock:
            victims = self._evict_expired(now)
            if len(self._sessions) >= self._max_sessions:
                self._publish_active()
                raise ServiceError(
                    f"session limit reached ({self._max_sessions})",
                    status=503, code="session-limit")
            self._sessions[token] = served
            self._publish_active()
        for victim in victims:
            victim.mark_closed()
        if self._evicted is not None and victims:
            self._evicted.inc(len(victims))
        if self._opened is not None:
            self._opened.inc()
        return served

    def get(self, token: str) -> ServedSession:
        now = self._clock()
        with self._lock:
            victims = self._evict_expired(now)
            served = self._sessions.get(token)
            if victims:
                self._publish_active()
        for victim in victims:
            victim.mark_closed()
        if self._evicted is not None and victims:
            self._evicted.inc(len(victims))
        if served is None:
            raise ServiceError(f"unknown session {token!r}",
                               status=404, code="unknown-session")
        return served

    def close(self, token: str) -> ServedSession:
        with self._lock:
            served = self._sessions.pop(token, None)
            self._publish_active()
        if served is None:
            raise ServiceError(f"unknown session {token!r}",
                               status=404, code="unknown-session")
        served.mark_closed()
        return served

    def evict_idle(self, now: Optional[float] = None) -> List[str]:
        """Force a TTL sweep; returns the evicted tokens."""
        if now is None:
            now = self._clock()
        with self._lock:
            victims = self._evict_expired(now)
            self._publish_active()
        for victim in victims:
            victim.mark_closed()
        if self._evicted is not None and victims:
            self._evicted.inc(len(victims))
        return [victim.token for victim in victims]

    def close_all(self) -> int:
        """Drop every session (server shutdown); returns the count."""
        with self._lock:
            victims = list(self._sessions.values())
            self._sessions = {}
            self._publish_active()
        for victim in victims:
            victim.mark_closed()
        return len(victims)
