"""The design-space service layer: many designers, one shared layer.

The paper's central claim is that the design space layer is a *shared
medium* — several designers query, prune and explore the same space at
once.  This package serves that medium over HTTP/JSON with nothing but
the standard library:

* :class:`~repro.serve.snapshots.SnapshotManager` — the single
  epoch/snapshot source of truth per layer (index + verify + snapshot
  caches invalidated through one generation bump);
* :class:`~repro.serve.state.SessionManager` — token-keyed
  copy-on-write sessions with idle-TTL eviction;
* :class:`~repro.serve.batching.PruneBatcher` — single-flight
  coalescing of identical prune evaluations across sessions;
* :class:`~repro.serve.app.DesignSpaceService` — the verb handlers,
  transport-free;
* :class:`~repro.serve.http.DesignSpaceServer` / :func:`serve` — the
  ``ThreadingHTTPServer`` shell with ``/metrics`` and graceful drain;
* :class:`~repro.serve.client.ServiceClient` — a urllib client for
  tests and load benchmarks.

See ``docs/serving.md`` for the API surface and operational notes.
"""

from repro.serve.app import (
    DesignSpaceService,
    canonical_json,
    default_layer_factories,
)
from repro.serve.batching import PruneBatcher
from repro.serve.client import ServiceClient, ServiceClientError, SessionHandle
from repro.serve.errors import ServiceError
from repro.serve.http import DesignSpaceServer, ServiceRequestHandler, serve
from repro.serve.snapshots import SnapshotManager
from repro.serve.state import ServedSession, SessionManager

__all__ = [
    "DesignSpaceServer",
    "DesignSpaceService",
    "PruneBatcher",
    "ServedSession",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceRequestHandler",
    "SessionHandle",
    "SessionManager",
    "SnapshotManager",
    "canonical_json",
    "default_layer_factories",
    "serve",
]
