"""The single epoch/snapshot source of truth for a served layer.

Before the service layer, three epoch-keyed caches lived side by side:
the federation rebuilds its :class:`~repro.core.index.CoreIndex` when
``epoch`` moves, :func:`repro.core.verify.engine.analyze_layer` keeps a
per-layer ``(epoch, requirements, start)`` analysis cache, and
:class:`~repro.core.serialize.LayerSnapshot` captures are taken ad hoc.
:class:`SnapshotManager` unifies them: it checks the layer's epoch out
once per access, and the moment the epoch moves it drops the cached
index reference, every cached verify report, and the cached layer
snapshot *together*, bumping one monotonic :attr:`generation` counter.
One layer mutation therefore invalidates everything derived from the old
layer state through a single observable bump (the ROADMAP's "unify them
behind one snapshot/epoch manager" item).

The manager is shared by every server thread, so all attribute writes
sit under ``self._lock`` (see ``repro.analysis`` DSA001).  Expensive
recomputation (verify runs, snapshot captures) happens *outside* the
lock with a compare-epoch-then-publish step: a concurrent mutation
between compute and publish simply discards the stale result.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.core.layer import DesignSpaceLayer
from repro.core.serialize import LayerSnapshot

#: Cache key of one verify request: canonical requirements + start CDO.
VerifyKey = Tuple[Tuple[Tuple[str, object], ...], Optional[str]]


class SnapshotManager:
    """Epoch-checked facade over one layer's derived, cacheable state.

    ``generation`` counts invalidations (not layer epochs — the layer's
    derived epoch is a signature, not a counter), so tests and metrics
    can assert "one mutation, one bump" without caring what the layer's
    epoch values look like.
    """

    def __init__(self, layer: DesignSpaceLayer,
                 metrics: Optional[object] = None) -> None:
        self._layer = layer
        self._lock = threading.RLock()
        #: Monotonic invalidation counter; += 1 per observed epoch move.
        self._generation = 0
        #: Layer epoch the caches below were built against.  The layer
        #: epoch is an opaque signature, so start from a sentinel no
        #: real epoch equals: the first checkout always invalidates.
        self._cached_epoch: object = object()
        self._index: Optional[object] = None
        self._verify_cache: Dict[VerifyKey, object] = {}
        self._snapshot: Optional[LayerSnapshot] = None
        if metrics is not None:
            self._invalidations = metrics.counter(
                "dsl_snapshot_invalidations_total",
                "Epoch moves observed by the snapshot manager",
                layer=layer.name)
            self._verify_hits = metrics.counter(
                "dsl_verify_cache_hits_total",
                "Verify requests served from the snapshot manager cache",
                layer=layer.name)
        else:
            self._invalidations = None
            self._verify_hits = None

    @property
    def layer(self) -> DesignSpaceLayer:
        return self._layer

    @property
    def epoch(self) -> object:
        """The layer's current epoch (derived signature)."""
        return self._layer.epoch

    @property
    def generation(self) -> int:
        """How many times the caches have been invalidated."""
        with self._lock:
            return self._generation

    def _checkout(self) -> object:
        """Bring the caches up to the layer's current epoch.

        Reentrant (``self._lock`` is an RLock), so callers already
        holding the lock pay nothing extra.  Returns the epoch the
        caches are now valid for.
        """
        with self._lock:
            epoch = self._layer.epoch
            if epoch != self._cached_epoch:
                self._cached_epoch = epoch
                self._index = None
                self._verify_cache = {}
                self._snapshot = None
                self._generation += 1
                if self._invalidations is not None:
                    self._invalidations.inc()
            return epoch

    def checkout(self) -> object:
        """Public epoch checkout: invalidate if stale, return the epoch.

        Request handlers call this once per request to key batched work
        (see :class:`~repro.serve.batching.PruneBatcher`) to a
        consistent epoch.
        """
        with self._lock:
            return self._checkout()

    def index(self):
        """The federation :class:`~repro.core.index.CoreIndex` for the
        current epoch (delegates the rebuild to the federation, which is
        itself epoch-keyed — the manager pins the reference so one
        invalidation covers index and verify alike)."""
        with self._lock:
            self._checkout()
            if self._index is None:
                self._index = self._layer.libraries.index()
            return self._index

    def verify(self, requirements: Sequence[Tuple[str, object]] = (),
               start: Optional[str] = None):
        """An epoch-cached :class:`~repro.core.verify.report.VerifyReport`.

        The underlying :func:`~repro.core.verify.engine.analyze_layer`
        keeps its own epoch cache for the analysis half; this cache
        covers the *full report* (diagnostics included) and is dropped
        by the same invalidation that drops the index, so both caches
        move through one generation bump.
        """
        try:
            given = tuple(sorted(dict(requirements).items(),
                                 key=lambda kv: kv[0]))
            key: Optional[VerifyKey] = (given, start)
            # dsa: allow[DSA042] -- hashability probe; the value is discarded
            hash(key)
        except TypeError:
            key = None
        with self._lock:
            epoch = self._checkout()
            if key is not None:
                hit = self._verify_cache.get(key)
                if hit is not None:
                    if self._verify_hits is not None:
                        self._verify_hits.inc()
                    return hit
        report = self._layer.verify(requirements=requirements, start=start)
        with self._lock:
            if key is not None and self._checkout() == epoch:
                self._verify_cache[key] = report
        return report

    def layer_snapshot(self, hydrators: Sequence[str] = ()) -> LayerSnapshot:
        """An epoch-cached :class:`~repro.core.serialize.LayerSnapshot`.

        Worker pools hydrate from this capture; caching it means a
        thousand explore requests against an unchanged layer pay the
        pickle+compress cost once.
        """
        with self._lock:
            epoch = self._checkout()
            if self._snapshot is not None:
                return self._snapshot
        snapshot = LayerSnapshot.capture(self._layer,
                                         hydrators=tuple(hydrators))
        with self._lock:
            if self._checkout() == epoch:
                self._snapshot = snapshot
            return snapshot
