"""Service-layer errors: a message plus an HTTP status and error code.

Handlers raise :class:`ServiceError` for anything the client did wrong
(bad verb, unknown token, malformed params); the transport maps it to a
JSON error payload with the carried status.  Library errors
(:class:`~repro.errors.ReproError` subclasses) bubbling out of handlers
are translated to 400s by the dispatcher, so domain code stays
transport-ignorant.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """A request the service refuses, with its HTTP mapping."""

    def __init__(self, message: str, status: int = 400,
                 code: str = "bad-request") -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
