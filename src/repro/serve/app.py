"""The transport-independent service core: JSON verbs in, JSON out.

:class:`DesignSpaceService` is the whole server minus sockets: a routing
table from verb names (``query``, ``lint``, ``verify``, ``explore``,
``session/*``) to handlers that speak plain dicts.  The HTTP layer
(:mod:`repro.serve.http`) is a thin shell around :meth:`handle`; tests
and the stress suite drive the service in-process through the same entry
point, so everything except socket plumbing is exercised without a
port.

Determinism contract: every payload is rendered with
:func:`canonical_json` (sorted keys, tight separators) and contains no
wall-clock or scheduling data — the load benchmark asserts the served
bytes equal a direct in-process library call byte for byte.  That is why
served explore results drop the ``pool`` dispatch-accounting key.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core import CoreQuery, ExplorationSession
from repro.core.layer import DesignSpaceLayer
from repro.core.obs.metrics import MetricsRegistry
from repro.core.pruning import MissingPolicy, merit_ranges, names_digest
from repro.core.serialize import core_to_dict
from repro.errors import ReproError
from repro.serve.batching import PruneBatcher
from repro.serve.errors import ServiceError
from repro.serve.snapshots import SnapshotManager
from repro.serve.state import (
    DEFAULT_MAX_SESSIONS,
    DEFAULT_TTL,
    ServedSession,
    SessionManager,
)

Params = Mapping[str, object]
Payload = Dict[str, object]

#: Latency histogram + request counter names (scraped via ``/metrics``).
REQUEST_SECONDS = "dsl_request_seconds"
REQUESTS_TOTAL = "dsl_requests_total"


def canonical_json(payload: object) -> bytes:
    """The service's one wire encoding: sorted keys, no whitespace.

    ``default=repr`` matches the CLI's JSON emitter, so exotic option
    values degrade identically on both surfaces.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr).encode("utf-8")


def default_layer_factories(eol: int = 768) -> Dict[
        str, Callable[[], DesignSpaceLayer]]:
    """The bundled layers, built lazily on first request."""

    def crypto() -> DesignSpaceLayer:
        from repro.domains.crypto import build_crypto_layer
        return build_crypto_layer(eol=eol)

    def idct() -> DesignSpaceLayer:
        from repro.domains.idct import build_idct_layer
        return build_idct_layer()

    return {"crypto": crypto, "idct": idct}


def _as_pairs(value: object, what: str) -> Tuple[Tuple[str, object], ...]:
    """Normalize ``{name: value}`` / ``[[name, value], ...]`` params.

    Mappings are sorted by name so two clients sending the same logical
    bindings produce the same cache keys and payload bytes.
    """
    if value is None:
        return ()
    if isinstance(value, Mapping):
        return tuple(sorted(value.items(), key=lambda kv: kv[0]))
    if isinstance(value, (list, tuple)):
        out: List[Tuple[str, object]] = []
        for item in value:
            if (not isinstance(item, (list, tuple)) or len(item) != 2
                    or not isinstance(item[0], str)):
                raise ServiceError(
                    f"{what} entries must be [name, value] pairs")
            out.append((item[0], item[1]))
        return tuple(out)
    raise ServiceError(f"{what} must be an object or a list of pairs")


def _get_str(params: Params, key: str,
             default: Optional[str] = None) -> Optional[str]:
    value = params.get(key, default)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ServiceError(f"{key} must be a string")
    return value


def _need_str(params: Params, key: str) -> str:
    value = _get_str(params, key)
    if value is None:
        raise ServiceError(f"missing required parameter {key!r}")
    return value


def _get_int(params: Params, key: str, default: int,
             minimum: int = 0) -> int:
    value = params.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{key} must be an integer")
    if value < minimum:
        raise ServiceError(f"{key} must be >= {minimum}")
    return value


def _policy(params: Params) -> MissingPolicy:
    name = _get_str(params, "policy", "exclude") or "exclude"
    try:
        return MissingPolicy[name.upper()]
    except KeyError:
        raise ServiceError(
            f"unknown missing policy {name!r}; known: exclude, include")


class DesignSpaceService:
    """Every verb of the server, with no transport attached.

    ``layers`` maps layer names to either built
    :class:`~repro.core.layer.DesignSpaceLayer` instances or zero-arg
    factories (the bundled ``crypto``/``idct`` factories by default).
    Each layer gets one :class:`~repro.serve.snapshots.SnapshotManager`;
    sessions, batching and metrics are service-wide.  ``jobs > 1`` lends
    explore requests one shared thread-backend
    :class:`~repro.core.explore.parallel.WorkerPool`.
    """

    def __init__(self, layers: Optional[Mapping[str, object]] = None,
                 eol: int = 768, jobs: int = 1,
                 default_layer: str = "crypto",
                 session_ttl: float = DEFAULT_TTL,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {jobs}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._factories: Dict[str, object] = dict(
            layers if layers is not None else default_layer_factories(eol))
        if not self._factories:
            raise ServiceError("service needs at least one layer")
        if default_layer not in self._factories:
            default_layer = sorted(self._factories)[0]
        self.default_layer = default_layer
        self._managers: Dict[str, SnapshotManager] = {}
        self.sessions = SessionManager(ttl=session_ttl,
                                       max_sessions=max_sessions,
                                       clock=clock, metrics=self.metrics)
        self.batcher = PruneBatcher(metrics=self.metrics)
        self.jobs = int(jobs)
        self._worker_pool: Optional[object] = None
        self._closed = False
        self._routes: Dict[str, Callable[[Params], Payload]] = {
            "query": self._handle_query,
            "lint": self._handle_lint,
            "verify": self._handle_verify,
            "explore": self._handle_explore,
            "session/open": self._handle_session_open,
            "session/state": self._handle_session_state,
            "session/report": self._handle_session_report,
            "session/candidates": self._handle_session_candidates,
            "session/options": self._handle_session_options,
            "session/require": self._handle_session_require,
            "session/decide": self._handle_session_decide,
            "session/undo": self._handle_session_undo,
            "session/checkpoint": self._handle_session_checkpoint,
            "session/goto": self._handle_session_goto,
            "session/close": self._handle_session_close,
        }

    # ------------------------------------------------------------------
    # shared infrastructure
    # ------------------------------------------------------------------
    @property
    def verbs(self) -> List[str]:
        return sorted(self._routes)

    def manager(self, name: Optional[str]) -> SnapshotManager:
        """The snapshot manager for a layer, building it on first use."""
        if name is None:
            name = self.default_layer
        with self._lock:
            if self._closed:
                raise ServiceError("service is shutting down",
                                   status=503, code="shutting-down")
            manager = self._managers.get(name)
            if manager is not None:
                return manager
            source = self._factories.get(name)
            if source is None:
                raise ServiceError(
                    f"unknown layer {name!r}; served: "
                    f"{', '.join(sorted(self._factories))}",
                    status=404, code="unknown-layer")
            layer = source() if callable(source) else source
            manager = SnapshotManager(layer, metrics=self.metrics)
            self._managers[name] = manager
            self.metrics.gauge(
                "dsl_layers_loaded", "Layers built and served").set(
                    len(self._managers))
            return manager

    def _explore_pool(self):
        """The shared lent worker pool (``jobs > 1`` only)."""
        if self.jobs <= 1:
            return None
        with self._lock:
            if self._closed:
                raise ServiceError("service is shutting down",
                                   status=503, code="shutting-down")
            if self._worker_pool is None:
                from repro.core.explore.parallel import WorkerPool
                self._worker_pool = WorkerPool(jobs=self.jobs,
                                              backend="thread")
            return self._worker_pool

    def close(self) -> None:
        """Release owned resources: worker pool, sessions, batch cache."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._worker_pool = self._worker_pool, None
        if pool is not None:
            pool.close()
        self.sessions.close_all()
        self.batcher.invalidate()

    def __enter__(self) -> "DesignSpaceService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, verb: str, params: Params) -> Tuple[int, Payload]:
        """Dispatch one request; never raises for client-side errors.

        Returns ``(http_status, payload)``.  Every call lands in the
        per-route latency histogram and the route+status counter that
        ``/metrics`` exposes.
        """
        # dsa: allow[DSA040] -- latency metrics only; handlers build payloads
        started = time.perf_counter()
        route = verb if verb in self._routes else "unknown"
        try:
            handler = self._routes.get(verb)
            if handler is None:
                raise ServiceError(f"unknown verb {verb!r}",
                                   status=404, code="unknown-verb")
            if not isinstance(params, Mapping):
                raise ServiceError("request body must be a JSON object")
            status, payload = 200, handler(params)
        except ServiceError as exc:
            status = exc.status
            payload = {"error": {"code": exc.code, "message": str(exc)}}
        except ReproError as exc:
            status = 400
            payload = {"error": {"code": type(exc).__name__,
                                 "message": str(exc)}}
        # dsa: allow[DSA040] -- latency lands in metrics, not response bytes
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            REQUEST_SECONDS, "Request latency by route",
            route=route).observe(elapsed)
        self.metrics.counter(
            REQUESTS_TOTAL, "Requests by route and status",
            route=route, status=str(status)).inc()
        return status, payload

    def handle_json(self, verb: str, body: bytes) -> Tuple[int, bytes]:
        """The byte-level entry the HTTP layer uses: JSON in, JSON out."""
        try:
            params = json.loads(body) if body else {}
        except ValueError as exc:
            status, payload = 400, {"error": {
                "code": "bad-json", "message": f"invalid JSON body: {exc}"}}
            return status, canonical_json(payload)
        if not isinstance(params, dict):
            params = {"value": params}
        status, payload = self.handle(verb, params)
        return status, canonical_json(payload)

    # ------------------------------------------------------------------
    # stateless verbs
    # ------------------------------------------------------------------
    def _handle_query(self, params: Params) -> Payload:
        manager = self.manager(_get_str(params, "layer"))
        query = CoreQuery(manager.layer)
        under = _get_str(params, "under")
        if under:
            query = query.under(under)
        where = params.get("where")
        for name, value in _as_pairs(where, "where"):
            query = query.where(**{name: value})
        max_merit = params.get("max_merit")
        for name, bound in _as_pairs(max_merit, "max_merit"):
            if not isinstance(bound, (int, float)) or isinstance(bound, bool):
                raise ServiceError("max_merit bounds must be numbers")
            query = query.merit_at_most(name, float(bound))
        order_by = _get_str(params, "order_by")
        if order_by:
            query = query.order_by(order_by,
                                   reverse=bool(params.get("reverse")))
        limit = params.get("limit")
        if limit is not None:
            query = query.limit(_get_int(params, "limit", 0, minimum=1))
        cores = query.all()
        return {
            "layer": manager.layer.name,
            "count": len(cores),
            "digest": names_digest([core.name for core in cores]),
            "cores": [core_to_dict(core) for core in cores],
        }

    def _handle_lint(self, params: Params) -> Payload:
        from repro.core.lint import LintConfig
        manager = self.manager(_get_str(params, "layer"))
        select = params.get("select")
        disable = params.get("disable")
        config = None
        if select is not None or disable is not None:
            config = LintConfig(
                select=tuple(select) if select else None,
                disable=tuple(disable) if disable else ())
        report = manager.layer.lint(config=config)
        return {"layer": manager.layer.name, "report": report.to_dict()}

    def _handle_verify(self, params: Params) -> Payload:
        manager = self.manager(_get_str(params, "layer"))
        requirements = _as_pairs(params.get("require"), "require")
        start = _get_str(params, "start")
        report = manager.verify(requirements=requirements, start=start)
        return {"layer": manager.layer.name, "report": report.to_dict()}

    @staticmethod
    def _start_name(manager: SnapshotManager, params: Params) -> str:
        """``start``, defaulting to the layer's sole root."""
        start = _get_str(params, "start")
        if start:
            return start
        roots = manager.layer.roots
        if len(roots) == 1:
            return roots[0].name
        raise ServiceError(
            "missing required parameter 'start' (layer "
            f"{manager.layer.name!r} has {len(roots)} roots)")

    def _handle_explore(self, params: Params) -> Payload:
        from repro.core.explore import ExplorationProblem, explore
        manager = self.manager(_get_str(params, "layer"))
        start = self._start_name(manager, params)
        strategy = _get_str(params, "strategy", "exhaustive") or "exhaustive"
        metrics = params.get("metrics") or ("area", "latency_ns")
        if (not isinstance(metrics, (list, tuple))
                or not all(isinstance(m, str) for m in metrics)):
            raise ServiceError("metrics must be a list of merit names")
        issues = params.get("issues")
        if issues is not None and (
                not isinstance(issues, (list, tuple))
                or not all(isinstance(i, str) for i in issues)):
            raise ServiceError("issues must be a list of issue names")
        options = params.get("options") or {}
        if not isinstance(options, Mapping):
            raise ServiceError("options must be an object")
        problem = ExplorationProblem(
            start=start, metrics=tuple(metrics),
            requirements=_as_pairs(params.get("require"), "require"),
            decisions=_as_pairs(params.get("decisions"), "decisions"),
            issues=tuple(issues) if issues is not None else None,
            missing_policy=_policy(params),
            layer=manager.layer)
        pool = self._explore_pool()
        result = explore(problem, strategy=strategy, pool=pool,
                         **dict(options))
        payload = result.to_dict()
        # Dispatch accounting (steals, hydration timings) is scheduling-
        # dependent; serving it would break the byte-equality oracle.
        payload.pop("pool", None)
        return {"layer": manager.layer.name, "result": payload}

    # ------------------------------------------------------------------
    # session verbs
    # ------------------------------------------------------------------
    def _served(self, params: Params) -> ServedSession:
        return self.sessions.get(_need_str(params, "token"))

    def _state_payload(self, session: ExplorationSession) -> Payload:
        return {
            "cdo": session.current_cdo.qualified_name,
            "decisions": dict(session.decisions),
            "requirements": dict(session.requirement_values),
            "derived": dict(session.derived_values),
            "stale": sorted(session.stale_properties),
            "log_length": len(session.log),
            "checkpoints": sorted(session.checkpoints()),
        }

    def _prune_key(self, manager: SnapshotManager,
                   session: ExplorationSession) -> tuple:
        """Batch key: everything the prune outcome depends on.

        Full decision/requirement dicts (not the position-filtered view)
        — equality on the superset implies equality on the filtered set,
        and the public accessors keep the batcher out of the session's
        internals.  ``repr`` keeps arbitrary option values hashable.
        """
        return (
            "prune", manager.layer.name, manager.checkout(),
            session.current_cdo.qualified_name,
            session.missing_policy.name, session.merit_metrics,
            tuple(sorted((k, repr(v))
                         for k, v in session.decisions.items())),
            tuple(sorted((k, repr(v))
                         for k, v in session.requirement_values.items())),
        )

    def _report_payload(self, manager: SnapshotManager,
                        session: ExplorationSession) -> Payload:
        """The batched prune outcome: survivor count/digest/ranges/names.

        Shared verbatim across sessions at the same point of the space,
        so it must stay plain immutable data derived from the report.
        """

        def compute() -> Payload:
            report = session.prune_report()
            ranges = merit_ranges(report.survivors, session.merit_metrics)
            return {
                "survivors": len(report.survivors),
                "digest": report.digest(),
                "names": report.survivor_names,
                "ranges": {name: [low, high]
                           for name, (low, high) in ranges.items()},
            }

        return self.batcher.evaluate(self._prune_key(manager, session),
                                     compute)

    @staticmethod
    def _public_report(report: Payload) -> Payload:
        """The served view of a batched report: everything but the raw
        survivor-name list (50k names would dominate every response;
        ``session/candidates`` pages through them instead)."""
        return {"survivors": report["survivors"],
                "digest": report["digest"],
                "ranges": report["ranges"]}

    def _handle_session_open(self, params: Params) -> Payload:
        manager = self.manager(_get_str(params, "layer"))
        start = self._start_name(manager, params)
        metrics = params.get("metrics") or ("area", "latency_ns")
        if (not isinstance(metrics, (list, tuple))
                or not all(isinstance(m, str) for m in metrics)):
            raise ServiceError("metrics must be a list of merit names")
        policy = _policy(params)

        def factory() -> ExplorationSession:
            session = ExplorationSession(manager.layer, start,
                                         merit_metrics=tuple(metrics),
                                         missing_policy=policy)
            session.checkpoint("origin")
            return session

        served = self.sessions.open(factory, manager.layer.name, start)
        report = served.run(
            self.sessions.now(),
            lambda session: self._report_payload(manager, session))
        return {"token": served.token, "layer": manager.layer.name,
                "start": start, "report": self._public_report(report)}

    def _session_view(self, params: Params,
                      fn: Callable[[SnapshotManager, ExplorationSession],
                                   Payload]) -> Payload:
        served = self._served(params)
        manager = self.manager(served.layer_name)
        payload = served.run(self.sessions.now(),
                             lambda session: fn(manager, session))
        payload.setdefault("token", served.token)
        return payload

    def _handle_session_state(self, params: Params) -> Payload:
        return self._session_view(
            params, lambda manager, session: self._state_payload(session))

    def _handle_session_report(self, params: Params) -> Payload:
        return self._session_view(
            params,
            lambda manager, session: self._public_report(
                self._report_payload(manager, session)))

    def _handle_session_candidates(self, params: Params) -> Payload:
        limit = _get_int(params, "limit", 100, minimum=1)

        def view(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            report = self._report_payload(manager, session)
            return {"survivors": report["survivors"],
                    "digest": report["digest"],
                    "names": list(report["names"])[:limit]}

        return self._session_view(params, view)

    def _handle_session_options(self, params: Params) -> Payload:
        issue = _need_str(params, "issue")
        limit = _get_int(params, "limit", 32, minimum=1)

        def view(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            infos = session.available_options(issue, limit=limit)
            return {"issue": issue, "options": [
                {"option": info.option,
                 "eliminated": info.eliminated,
                 "reason": info.elimination_reason,
                 "candidates": info.candidate_count,
                 "ranges": {name: [low, high]
                            for name, (low, high) in info.ranges.items()}}
                for info in infos]}

        return self._session_view(params, view)

    def _handle_session_require(self, params: Params) -> Payload:
        name = _need_str(params, "name")
        if "value" not in params:
            raise ServiceError("missing required parameter 'value'")
        value = params["value"]

        def step(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            session.set_requirement(name, value)
            return {"required": {name: value},
                    "report": self._public_report(
                        self._report_payload(manager, session)),
                    "state": self._state_payload(session)}

        return self._session_view(params, step)

    def _handle_session_decide(self, params: Params) -> Payload:
        issue = _need_str(params, "issue")
        if "option" not in params:
            raise ServiceError("missing required parameter 'option'")
        option = params["option"]

        def step(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            outcome = session.decide(issue, option)
            return {
                "decided": {"issue": outcome.issue,
                            "option": outcome.option,
                            "generalized": outcome.generalized,
                            "survivors_before": outcome.survivors_before,
                            "survivors_after": outcome.survivors_after,
                            "eliminated": outcome.eliminated_count},
                "report": self._public_report(
                    self._report_payload(manager, session)),
                "state": self._state_payload(session),
            }

        return self._session_view(params, step)

    def _handle_session_undo(self, params: Params) -> Payload:
        def step(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            session.undo()
            return {"report": self._public_report(
                        self._report_payload(manager, session)),
                    "state": self._state_payload(session)}

        return self._session_view(params, step)

    def _handle_session_checkpoint(self, params: Params) -> Payload:
        tag = _need_str(params, "tag")

        def step(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            session.checkpoint(tag)
            return {"checkpoint": tag,
                    "state": self._state_payload(session)}

        return self._session_view(params, step)

    def _handle_session_goto(self, params: Params) -> Payload:
        tag = _need_str(params, "tag")

        def step(manager: SnapshotManager,
                 session: ExplorationSession) -> Payload:
            session.restore(tag)
            return {"restored": tag,
                    "report": self._public_report(
                        self._report_payload(manager, session)),
                    "state": self._state_payload(session)}

        return self._session_view(params, step)

    def _handle_session_close(self, params: Params) -> Payload:
        served = self.sessions.close(_need_str(params, "token"))
        return {"token": served.token, "closed": True}
