"""A thin stdlib client for the service, used by tests and benchmarks.

One :class:`ServiceClient` per thread (urllib openers are not shared);
:meth:`request` returns the raw status + body bytes so the digest
oracle can compare served bytes against direct library calls without
a decode/re-encode round trip, and :meth:`call` adds the JSON +
raise-on-error convenience everything else wants.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """An error response from the server, with its payload attached."""

    def __init__(self, status: int, payload: object) -> None:
        detail = payload
        if isinstance(payload, dict):
            detail = payload.get("error", payload)
        super().__init__(f"server returned {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """JSON verbs against one server; also a session-verb convenience."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # raw byte-level surface (the digest oracle uses this)
    # ------------------------------------------------------------------
    def get(self, path: str) -> Tuple[int, bytes]:
        request = urllib.request.Request(self.base_url + path, method="GET")
        return self._send(request)

    def request(self, verb: str, params: Optional[Dict[str, object]] = None
                ) -> Tuple[int, bytes]:
        body = json.dumps(params or {}).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}/api/{verb}", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        return self._send(request)

    def _send(self, request: urllib.request.Request) -> Tuple[int, bytes]:
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            # Error responses are still JSON payloads, not exceptions:
            # the caller decides whether a 4xx is fatal.
            with error:
                return error.code, error.read()

    # ------------------------------------------------------------------
    # decoded convenience surface
    # ------------------------------------------------------------------
    def call(self, verb: str, **params: object) -> Dict[str, object]:
        status, body = self.request(verb, params)
        payload = json.loads(body) if body else {}
        if status >= 400:
            raise ServiceClientError(status, payload)
        return payload

    def metrics_text(self) -> str:
        status, body = self.get("/metrics")
        if status != 200:
            raise ServiceClientError(status, body.decode("utf-8", "replace"))
        return body.decode("utf-8")

    def open_session(self, start: str, layer: Optional[str] = None,
                     **params: object) -> "SessionHandle":
        if layer is not None:
            params["layer"] = layer
        payload = self.call("session/open", start=start, **params)
        return SessionHandle(self, str(payload["token"]), payload)


class SessionHandle:
    """Token plumbing for one served session."""

    def __init__(self, client: ServiceClient, token: str,
                 opened: Dict[str, object]) -> None:
        self.client = client
        self.token = token
        self.opened = opened

    def call(self, verb: str, **params: object) -> Dict[str, object]:
        return self.client.call(verb, token=self.token, **params)

    def decide(self, issue: str, option: object) -> Dict[str, object]:
        return self.call("session/decide", issue=issue, option=option)

    def require(self, name: str, value: object) -> Dict[str, object]:
        return self.call("session/require", name=name, value=value)

    def undo(self) -> Dict[str, object]:
        return self.call("session/undo")

    def goto(self, tag: str) -> Dict[str, object]:
        return self.call("session/goto", tag=tag)

    def checkpoint(self, tag: str) -> Dict[str, object]:
        return self.call("session/checkpoint", tag=tag)

    def report(self) -> Dict[str, object]:
        return self.call("session/report")

    def close(self) -> Dict[str, object]:
        return self.call("session/close")
