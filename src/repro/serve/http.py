"""The socket shell: ``ThreadingHTTPServer`` around the service core.

Routes are deliberately few — the verb namespace lives in
:class:`~repro.serve.app.DesignSpaceService`, not in URL design:

* ``GET /healthz`` — liveness probe;
* ``GET /metrics`` — Prometheus text exposition of the service registry
  (per-route latency histograms, request counters, session gauge);
* ``POST /api/<verb>`` — JSON body in, canonical JSON out, where
  ``<verb>`` is any service verb (``query``, ``session/decide``, ...).

Shutdown is graceful by construction: handler threads are non-daemon
and ``server_close`` blocks on them (``block_on_close``), so a SIGTERM
stops the accept loop, *drains every in-flight request*, then closes the
service's owned worker pool and sessions.  Idle keep-alive connections
cannot stall the drain — the per-connection socket timeout bounds them.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from repro.serve.app import DesignSpaceService, canonical_json

#: How long an idle keep-alive connection may hold its handler thread.
CONNECTION_TIMEOUT = 5.0


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """One HTTP connection; all state lives on the server/service."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    timeout = CONNECTION_TIMEOUT

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _service(self) -> DesignSpaceService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self._service()
        started = time.perf_counter()
        if self.path == "/healthz":
            route, status = "healthz", 200
            body = canonical_json({"status": "ok",
                                   "sessions": len(service.sessions)})
            self._send(status, body)
        elif self.path == "/metrics":
            route, status = "metrics", 200
            text = service.metrics.render_prometheus()
            self._send(status, text.encode("utf-8"),
                       content_type="text/plain; version=0.0.4; "
                                    "charset=utf-8")
        else:
            route, status = "unknown", 404
            self._send(status, canonical_json(
                {"error": {"code": "not-found",
                           "message": f"no route {self.path!r}"}}))
        elapsed = time.perf_counter() - started
        service.metrics.histogram(
            "dsl_request_seconds", "Request latency by route",
            route=route).observe(elapsed)
        service.metrics.counter(
            "dsl_requests_total", "Requests by route and status",
            route=route, status=str(status)).inc()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self._service()
        if not self.path.startswith("/api/"):
            self._send(404, canonical_json(
                {"error": {"code": "not-found",
                           "message": f"no route {self.path!r}; verbs "
                                      "live under /api/"}}))
            return
        verb = self.path[len("/api/"):]
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        status, payload = service.handle_json(verb, body)
        self._send(status, payload)

    def log_message(self, format: str, *args: object) -> None:
        log = getattr(self.server, "log", None)
        if log is not None:
            log(self.address_string(), format % args)


class DesignSpaceServer(ThreadingHTTPServer):
    """The service bound to a listening socket.

    Non-daemon handler threads + ``block_on_close`` give
    :meth:`server_close` drain semantics; :meth:`shutdown_gracefully`
    is safe to call from signal handlers (it only spawns the stopper).
    """

    daemon_threads = False
    block_on_close = True
    # The socketserver default backlog (5) resets connections when many
    # clients connect in the same instant; size it for a session fleet.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int],
                 service: DesignSpaceService,
                 json_logs: bool = False, quiet: bool = False) -> None:
        self.service = service
        self.json_logs = json_logs
        self.quiet = quiet
        super().__init__(address, ServiceRequestHandler)

    def log(self, client: str, message: str) -> None:
        if self.quiet:
            return
        if self.json_logs:
            record = {"ts": time.time(), "client": client,
                      "message": message}
            sys.stderr.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            sys.stderr.write(f"{client} - {message}\n")

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "") else host
        return f"http://{display}:{port}"

    def shutdown_gracefully(self) -> threading.Thread:
        """Stop the accept loop from any thread without deadlocking.

        ``shutdown()`` blocks until ``serve_forever`` exits, so calling
        it directly from a signal handler running on the serving thread
        would deadlock; a one-shot stopper thread breaks the knot.
        """
        stopper = threading.Thread(target=self.shutdown,
                                   name="dsl-serve-stopper", daemon=True)
        stopper.start()
        return stopper


def serve(service: DesignSpaceService, host: str = "127.0.0.1",
          port: int = 8080, json_logs: bool = False,
          install_signal_handlers: bool = True,
          ready: Optional[Callable[[DesignSpaceServer], None]] = None
          ) -> int:
    """Run the server until SIGTERM/SIGINT; returns the exit code.

    ``ready`` fires after the socket is bound (the CLI prints the
    resolved URL there; tests grab the ephemeral port).  The drain
    order on shutdown: stop accepting, join in-flight handlers, then
    close the service (owned pool, sessions, batch cache).
    """
    server = DesignSpaceServer((host, port), service, json_logs=json_logs)

    def _initiate(signum: int, frame: object) -> None:
        server.shutdown_gracefully()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _initiate)
        signal.signal(signal.SIGINT, _initiate)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.close()
    return 0


def probe_port(host: str, port: int, timeout: float = 1.0) -> bool:
    """True when something accepts TCP connections at ``host:port``."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
