"""Single-flight batching of prune evaluations across sessions.

Many concurrent designers standing at the same point of the design
space (same layer epoch, same position, same decisions + requirements)
would each pay a full indexed prune.  The batcher collapses them: the
first thread in becomes the *leader* and computes; every other thread
with the same key becomes a *follower* and blocks on the leader's
:class:`threading.Event` instead of recomputing.  Completed results park
in a bounded LRU keyed by the same tuple, so sessions arriving shortly
after the flight lands still share it.

Keys embed the snapshot epoch (from
:meth:`~repro.serve.snapshots.SnapshotManager.checkout`), so a layer
mutation naturally strands old entries — they age out of the LRU, and
:meth:`PruneBatcher.invalidate` clears them eagerly on shutdown or in
tests.

Results must be immutable/shared-safe (prune-derived plain-data
payloads are; see ``DesignSpaceService._session_report_payload``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, TypeVar

T = TypeVar("T")

#: Default number of parked prune results kept per service.
DEFAULT_CAPACITY = 1024


class _Flight:
    """One in-progress computation, published through an Event.

    ``result``/``error`` are written by the leader strictly before
    ``event.set()`` and read by followers strictly after
    ``event.wait()`` — the Event is the synchronization, no lock needed.
    """

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[object] = None
        self.error: Optional[BaseException] = None


class PruneBatcher:
    """Coalesce identical evaluations; cache the last ``capacity``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 metrics: Optional[object] = None) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Flight] = {}
        self._results: "OrderedDict[Hashable, object]" = OrderedDict()
        self._capacity = int(capacity)
        if metrics is not None:
            self._leaders = metrics.counter(
                "dsl_prune_batch_leads_total",
                "Prune evaluations actually computed by a batch leader")
            self._followers = metrics.counter(
                "dsl_prune_batch_coalesced_total",
                "Prune evaluations coalesced onto an in-flight leader")
            self._hits = metrics.counter(
                "dsl_prune_batch_hits_total",
                "Prune evaluations served from the parked-result cache")
        else:
            self._leaders = None
            self._followers = None
            self._hits = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def evaluate(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Return ``compute()`` for ``key``, sharing work across threads.

        An unhashable key skips batching entirely.  Leader exceptions
        propagate to the leader *and* to every coalesced follower of
        that flight; failed flights are not cached, so the next request
        retries.
        """
        try:
            # dsa: allow[DSA042] -- hashability probe; the value is discarded
            hash(key)
        except TypeError:
            return compute()
        with self._lock:
            if key in self._results:
                self._results.move_to_end(key)
                hit = self._results[key]
                if self._hits is not None:
                    self._hits.inc()
                return hit  # type: ignore[return-value]
            flight = self._inflight.get(key)
            leading = flight is None
            if flight is None:
                flight = self._inflight[key] = _Flight()
        if not leading:
            if self._followers is not None:
                self._followers.inc()
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result  # type: ignore[return-value]
        if self._leaders is not None:
            self._leaders.inc()
        try:
            result = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.result = result
        with self._lock:
            self._inflight.pop(key, None)
            self._results[key] = result
            while len(self._results) > self._capacity:
                self._results.popitem(last=False)
        flight.event.set()
        return result

    def invalidate(self) -> int:
        """Drop every parked result; returns how many were dropped."""
        with self._lock:
            dropped = len(self._results)
            self._results = OrderedDict()
        return dropped
