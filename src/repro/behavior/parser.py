"""Parsing behavioral listings from text.

The paper's behavioral descriptions are HDL text; ours render as
numbered listings (Fig 10 style).  This parser accepts exactly the
renderer's format, so ``parse_behavior(behavior.render())`` reproduces
the original IR — and layer maintainers can author new descriptions as
plain text::

    1: R := 0
    2: FOR i = 0 TO (n - 1)
      3: Q := ((R + 1) mod r)
      4: R := ((R + (digit(A, i, r) * B)) div r)
    5: IF (R >= M) THEN
      6: R := (R - M)

Structure comes from indentation (any consistent increase opens a
block); expressions are the renderer's fully parenthesized form with
``f(arg, ...)`` calls; an optional ``ELSE`` at the ``IF``'s indentation
opens the else block.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.behavior.ir import (
    Assign,
    Behavior,
    BehaviorError,
    BinOp,
    Call,
    Const,
    Expr,
    For,
    If,
    Stmt,
    Var,
)

_TOKEN_RE = re.compile(r"""
    (?P<number>-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><<|>>|>=|<=|==|!=|[-+*&|^<>])
  | (?P<punct>[(),\[\]])
  | (?P<space>\s+)
""", re.VERBOSE)

_WORD_OPS = {"div", "mod"}


class _Tokens:
    """A token cursor over one expression string."""

    def __init__(self, text: str):
        self.items: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match:
                raise BehaviorError(
                    f"cannot tokenize {text[pos:pos + 12]!r} in {text!r}")
            pos = match.end()
            kind = match.lastgroup
            if kind == "space":
                continue
            self.items.append((kind, match.group()))
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise BehaviorError("unexpected end of expression")
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        token = self.next()
        if token[1] != value:
            raise BehaviorError(
                f"expected {value!r}, got {token[1]!r}")

    def done(self) -> bool:
        return self.index >= len(self.items)


def _parse_expr(tokens: _Tokens) -> Expr:
    """One expression: atom, or ``(lhs OP rhs)`` (renderer output is
    fully parenthesized, so no precedence is needed)."""
    kind, value = tokens.next()
    if kind == "number":
        return Const(int(value))
    if kind == "punct" and value == "(":
        left = _parse_expr(tokens)
        op_kind, op_value = tokens.next()
        if not (op_kind == "op"
                or (op_kind == "name" and op_value in _WORD_OPS)):
            raise BehaviorError(
                f"expected a binary operator, got {op_value!r}")
        right = _parse_expr(tokens)
        tokens.expect(")")
        return BinOp(op_value, left, right)
    if kind == "name":
        if value in _WORD_OPS:
            raise BehaviorError(
                f"{value!r} is an operator, not a value")
        token = tokens.peek()
        if token is not None and token[1] == "(":
            tokens.next()
            args: List[Expr] = []
            if tokens.peek() is not None and tokens.peek()[1] != ")":
                args.append(_parse_expr(tokens))
                while tokens.peek() is not None and tokens.peek()[1] == ",":
                    tokens.next()
                    args.append(_parse_expr(tokens))
            tokens.expect(")")
            return Call(value, tuple(args))
        return Var(value)
    raise BehaviorError(f"unexpected token {value!r} in expression")


def parse_expression(text: str) -> Expr:
    """Parse one expression string (the renderer's format)."""
    tokens = _Tokens(text)
    expr = _parse_expr(tokens)
    if not tokens.done():
        raise BehaviorError(
            f"trailing input after expression in {text!r}")
    return expr


_LINE_RE = re.compile(r"^(?P<indent>\s*)(?P<line>\d+):\s*(?P<body>.+)$")
_ELSE_RE = re.compile(r"^(?P<indent>\s*)ELSE\s*$")
_FOR_RE = re.compile(
    r"^FOR\s+(?P<var>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*(?P<start>.+?)"
    r"\s+TO\s+(?P<stop>.+)$")
_IF_RE = re.compile(r"^IF\s+(?P<cond>.+?)\s+THEN\s*$")
_ASSIGN_RE = re.compile(
    r"^(?P<target>[A-Za-z_][A-Za-z_0-9]*)"
    r"(?:\[(?P<index>.+)\])?\s*:=\s*(?P<expr>.+)$")


def parse_behavior(text: str, name: str = "parsed",
                   inputs: Sequence[str] = (),
                   outputs: Sequence[str] = (),
                   codings: Optional[dict] = None,
                   doc: str = "") -> Behavior:
    """Parse a numbered listing into a :class:`Behavior`.

    Comment lines (starting with ``--`` or ``//``) and blank lines are
    ignored; block structure follows indentation.
    """
    rows: List[Tuple[int, Optional[int], str]] = []  # (indent, line, body)
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith("--") \
                or stripped.startswith("//"):
            continue
        else_match = _ELSE_RE.match(raw)
        if else_match:
            rows.append((len(else_match.group("indent")), None, "ELSE"))
            continue
        match = _LINE_RE.match(raw)
        if not match:
            raise BehaviorError(f"cannot parse listing line {raw!r}")
        rows.append((len(match.group("indent")),
                     int(match.group("line")),
                     match.group("body").strip()))
    if not rows:
        raise BehaviorError("listing is empty")

    position = 0

    def parse_block(indent: int) -> List[Stmt]:
        nonlocal position
        statements: List[Stmt] = []
        while position < len(rows):
            row_indent, line, body = rows[position]
            if row_indent < indent or body == "ELSE":
                break
            if row_indent > indent:
                raise BehaviorError(
                    f"unexpected indentation at listing line {line}")
            position += 1
            assert line is not None
            for_match = _FOR_RE.match(body)
            if for_match:
                inner = parse_block(_next_indent(indent))
                statements.append(For(
                    for_match.group("var"),
                    parse_expression(for_match.group("start")),
                    parse_expression(for_match.group("stop")),
                    inner, line=line))
                continue
            if_match = _IF_RE.match(body)
            if if_match:
                then_block = parse_block(_next_indent(indent))
                orelse: List[Stmt] = []
                if position < len(rows) and rows[position][2] == "ELSE" \
                        and rows[position][0] == indent:
                    position += 1
                    orelse = parse_block(_next_indent(indent))
                statements.append(If(
                    parse_expression(if_match.group("cond")),
                    then_block, line=line, orelse=orelse))
                continue
            assign_match = _ASSIGN_RE.match(body)
            if assign_match:
                index_text = assign_match.group("index")
                statements.append(Assign(
                    assign_match.group("target"),
                    parse_expression(assign_match.group("expr")),
                    line=line,
                    target_index=parse_expression(index_text)
                    if index_text else None))
                continue
            raise BehaviorError(
                f"listing line {line}: cannot parse statement {body!r}")
        return statements

    def _next_indent(indent: int) -> int:
        if position < len(rows) and rows[position][0] > indent:
            return rows[position][0]
        return indent + 1  # empty block: nothing will match anyway

    statements = parse_block(rows[0][0])
    if position != len(rows):
        raise BehaviorError(
            f"unparsed trailing listing content near line "
            f"{rows[position][1]}")
    return Behavior(name, statements, inputs=inputs, outputs=outputs,
                    codings=codings, doc=doc)
