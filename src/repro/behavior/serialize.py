"""Serialization of behavioral descriptions.

Reuse libraries persist; the behavioral descriptions the layer attaches
to CDOs must therefore round-trip through plain data.  This module maps
the IR to/from JSON-compatible dictionaries, losslessly (the test suite
checks render-equality and execution-equality after a round trip).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.behavior.ir import (
    Assign,
    Behavior,
    BehaviorError,
    BinOp,
    Call,
    Const,
    Expr,
    For,
    If,
    Stmt,
    Var,
)


def expr_to_dict(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, Var):
        return {"kind": "var", "name": expr.name}
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, BinOp):
        return {"kind": "binop", "op": expr.op,
                "left": expr_to_dict(expr.left),
                "right": expr_to_dict(expr.right)}
    if isinstance(expr, Call):
        return {"kind": "call", "name": expr.name,
                "args": [expr_to_dict(a) for a in expr.args]}
    raise BehaviorError(f"unknown expression type {type(expr).__name__}")


def expr_from_dict(data: Dict[str, Any]) -> Expr:
    kind = data.get("kind")
    if kind == "var":
        return Var(data["name"])
    if kind == "const":
        return Const(int(data["value"]))
    if kind == "binop":
        return BinOp(data["op"], expr_from_dict(data["left"]),
                     expr_from_dict(data["right"]))
    if kind == "call":
        return Call(data["name"],
                    tuple(expr_from_dict(a) for a in data["args"]))
    raise BehaviorError(f"unknown expression kind {kind!r}")


def stmt_to_dict(stmt: Stmt) -> Dict[str, Any]:
    if isinstance(stmt, Assign):
        out: Dict[str, Any] = {"kind": "assign", "target": stmt.target,
                               "expr": expr_to_dict(stmt.expr),
                               "line": stmt.line}
        if stmt.target_index is not None:
            out["target_index"] = expr_to_dict(stmt.target_index)
        return out
    if isinstance(stmt, For):
        return {"kind": "for", "var": stmt.var,
                "start": expr_to_dict(stmt.start),
                "stop": expr_to_dict(stmt.stop),
                "body": [stmt_to_dict(s) for s in stmt.body],
                "line": stmt.line}
    if isinstance(stmt, If):
        return {"kind": "if", "cond": expr_to_dict(stmt.cond),
                "then": [stmt_to_dict(s) for s in stmt.then],
                "orelse": [stmt_to_dict(s) for s in stmt.orelse],
                "line": stmt.line}
    raise BehaviorError(f"unknown statement type {type(stmt).__name__}")


def stmt_from_dict(data: Dict[str, Any]) -> Stmt:
    kind = data.get("kind")
    if kind == "assign":
        index = data.get("target_index")
        return Assign(data["target"], expr_from_dict(data["expr"]),
                      line=int(data["line"]),
                      target_index=expr_from_dict(index)
                      if index is not None else None)
    if kind == "for":
        return For(data["var"], expr_from_dict(data["start"]),
                   expr_from_dict(data["stop"]),
                   [stmt_from_dict(s) for s in data["body"]],
                   line=int(data["line"]))
    if kind == "if":
        return If(expr_from_dict(data["cond"]),
                  [stmt_from_dict(s) for s in data["then"]],
                  line=int(data["line"]),
                  orelse=[stmt_from_dict(s) for s in data["orelse"]])
    raise BehaviorError(f"unknown statement kind {kind!r}")


def behavior_to_dict(behavior: Behavior) -> Dict[str, Any]:
    return {
        "name": behavior.name,
        "doc": behavior.doc,
        "inputs": list(behavior.inputs),
        "outputs": list(behavior.outputs),
        "codings": dict(behavior.codings),
        "statements": [stmt_to_dict(s) for s in behavior.statements],
    }


def behavior_from_dict(data: Dict[str, Any]) -> Behavior:
    return Behavior(
        data["name"],
        [stmt_from_dict(s) for s in data["statements"]],
        inputs=tuple(data.get("inputs", ())),
        outputs=tuple(data.get("outputs", ())),
        codings=dict(data.get("codings", {})),
        doc=data.get("doc", ""),
    )
