"""A small behavioral IR standing in for HDL behavioral descriptions.

The paper attaches behavioral descriptions (VHDL/Verilog at the algorithm
level) to CDOs — Fig 10 shows the Montgomery algorithm as a numbered
listing whose operator instances are addressed from consistency
constraints (``oper(+,line:3)``).  We model such listings with a tiny
structured IR:

* expressions: variables, constants, binary operations, and calls to
  named helper functions (digit extraction, modular inverse, ...);
* statements: assignments, counted ``FOR`` loops and ``IF``s, each tagged
  with the listing line number;
* a :class:`Behavior` wrapping the statements plus interface metadata
  (operand/result coding, the "problem givens" of Fig 8).

The IR is executable (:mod:`repro.behavior.interp`), analyzable as a
dataflow graph (:mod:`repro.behavior.dfg`) and addressable from property
paths (:mod:`repro.behavior.operators`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Binary operator symbols understood by the interpreter and estimators.
BINARY_OPS = ("+", "-", "*", "div", "mod", ">", "<", ">=", "<=", "==", "!=",
              "<<", ">>", "&", "|", "^")


class BehaviorError(ReproError):
    """Malformed IR or failed IR operation."""


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base expression node."""

    def walk(self) -> Iterator["Expr"]:
        yield self

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.render()}>"


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable reference."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal."""

    value: int

    def render(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation, the unit of the paper's operator addressing."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise BehaviorError(f"unknown binary operator {self.op!r}")

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a named helper (``digit(A, i)``, ``inv_mod(x, r)``).

    Helpers are also operator instances from the layer's point of view —
    a ``digit`` call is a selection network, an ``inv_mod`` a lookup or
    iterative unit — so :mod:`repro.behavior.operators` extracts them
    alongside :class:`BinOp` nodes.
    """

    name: str
    args: Tuple[Expr, ...]

    def walk(self) -> Iterator[Expr]:
        yield self
        for arg in self.args:
            yield from arg.walk()

    def render(self) -> str:
        return f"{self.name}({', '.join(a.render() for a in self.args)})"


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt:
    """Base statement node; ``line`` is the listing line number."""

    line: int

    def walk(self) -> Iterator["Stmt"]:
        yield self

    def expressions(self) -> Iterator[Expr]:
        """All expression roots directly owned by this statement."""
        return iter(())

    def render(self, indent: int = 0) -> str:
        raise NotImplementedError


@dataclass
class Assign(Stmt):
    """``target := expr``; ``target_index`` models subscripted targets
    like ``Qi`` (digit i of Q)."""

    target: str
    expr: Expr
    line: int
    target_index: Optional[Expr] = None

    def expressions(self) -> Iterator[Expr]:
        yield self.expr
        if self.target_index is not None:
            yield self.target_index

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        sub = f"[{self.target_index.render()}]" if self.target_index is not None else ""
        return f"{pad}{self.line}: {self.target}{sub} := {self.expr.render()}"


@dataclass
class For(Stmt):
    """``FOR var = start TO stop`` (inclusive bounds, step 1)."""

    var: str
    start: Expr
    stop: Expr
    body: List[Stmt]
    line: int

    def walk(self) -> Iterator[Stmt]:
        yield self
        for stmt in self.body:
            yield from stmt.walk()

    def expressions(self) -> Iterator[Expr]:
        yield self.start
        yield self.stop

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        head = (f"{pad}{self.line}: FOR {self.var} = "
                f"{self.start.render()} TO {self.stop.render()}")
        body = "\n".join(stmt.render(indent + 1) for stmt in self.body)
        return f"{head}\n{body}"


@dataclass
class If(Stmt):
    """``IF cond THEN ... [ELSE ...]``."""

    cond: Expr
    then: List[Stmt]
    line: int
    orelse: List[Stmt] = field(default_factory=list)

    def walk(self) -> Iterator[Stmt]:
        yield self
        for stmt in self.then:
            yield from stmt.walk()
        for stmt in self.orelse:
            yield from stmt.walk()

    def expressions(self) -> Iterator[Expr]:
        yield self.cond

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.line}: IF {self.cond.render()} THEN"]
        lines += [stmt.render(indent + 1) for stmt in self.then]
        if self.orelse:
            lines.append(f"{pad}ELSE")
            lines += [stmt.render(indent + 1) for stmt in self.orelse]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# behaviour
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperatorInstance:
    """One operator occurrence inside a behavior.

    ``symbol`` is the operation (``+``, ``*``, ``div`` or a helper name),
    ``line`` the listing line it appears on, ``ordinal`` its 0-based
    occurrence index within that line (expressions may repeat an op), and
    ``expr`` the owning expression node.
    """

    symbol: str
    line: int
    ordinal: int
    expr: Expr

    def render(self) -> str:
        return f"oper({self.symbol},line:{self.line})#{self.ordinal}"


class Behavior:
    """A named behavioral description at the algorithm level.

    ``inputs``/``outputs`` document the interface; ``codings`` records
    the coding type assumed for each interface value — the paper points
    out this establishes the possible need for conversions against the
    application's requirements (Sec 5.1.6).
    """

    def __init__(self, name: str, statements: Sequence[Stmt],
                 inputs: Sequence[str] = (), outputs: Sequence[str] = (),
                 codings: Optional[Dict[str, str]] = None,
                 doc: str = ""):
        if not name:
            raise BehaviorError("behavior name must be non-empty")
        self.name = name
        self.statements = list(statements)
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.codings = dict(codings or {})
        self.doc = doc
        self._check_lines()

    def _check_lines(self) -> None:
        seen: Dict[int, Stmt] = {}
        for stmt in self.walk():
            if stmt.line in seen:
                raise BehaviorError(
                    f"behavior {self.name!r}: duplicate line number {stmt.line}")
            seen[stmt.line] = stmt
        self._by_line = seen

    def walk(self) -> Iterator[Stmt]:
        for stmt in self.statements:
            yield from stmt.walk()

    def statement_at(self, line: int) -> Stmt:
        try:
            return self._by_line[line]
        except KeyError:
            raise BehaviorError(
                f"behavior {self.name!r} has no line {line}") from None

    def operators(self) -> List[OperatorInstance]:
        """All operator instances, listing order, with per-line ordinals."""
        out: List[OperatorInstance] = []
        counts: Dict[Tuple[int, str], int] = {}
        for stmt in self.walk():
            for root in stmt.expressions():
                for node in root.walk():
                    symbol: Optional[str] = None
                    if isinstance(node, BinOp):
                        symbol = node.op
                    elif isinstance(node, Call):
                        symbol = node.name
                    if symbol is None:
                        continue
                    key = (stmt.line, symbol)
                    ordinal = counts.get(key, 0)
                    counts[key] = ordinal + 1
                    out.append(OperatorInstance(symbol, stmt.line, ordinal, node))
        return out

    def operators_at(self, line: int, symbol: Optional[str] = None
                     ) -> List[OperatorInstance]:
        return [op for op in self.operators()
                if op.line == line and (symbol is None or op.symbol == symbol)]

    def op_histogram(self) -> Dict[str, int]:
        """Static operator counts by symbol (no trip-count weighting)."""
        hist: Dict[str, int] = {}
        for op in self.operators():
            hist[op.symbol] = hist.get(op.symbol, 0) + 1
        return hist

    def render(self) -> str:
        header = f"-- {self.name}: {self.doc}" if self.doc else f"-- {self.name}"
        io = (f"-- inputs: {', '.join(self.inputs)}; "
              f"outputs: {', '.join(self.outputs)}")
        body = "\n".join(stmt.render() for stmt in self.statements)
        return "\n".join([header, io, body])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Behavior {self.name} ({len(self.statements)} stmts)>"
