"""Behavioral descriptions: IR, interpreter, dataflow analysis, selectors."""

from repro.behavior.dfg import (
    DataflowGraph,
    DfgNode,
    trip_count,
    weighted_op_counts,
)
from repro.behavior.interp import (
    DEFAULT_BUILTINS,
    Interpreter,
    digit,
    eval_expr,
    inv_mod,
    run_behavior,
)
from repro.behavior.ir import (
    Assign,
    Behavior,
    BehaviorError,
    BinOp,
    Call,
    Const,
    Expr,
    For,
    If,
    OperatorInstance,
    Stmt,
    Var,
)
from repro.behavior.listings import (
    brickell_behavior,
    modexp_behavior,
    montgomery_behavior,
    pencil_behavior,
)
from repro.behavior.parser import parse_behavior, parse_expression
from repro.behavior.operators import (
    OperatorSelection,
    oper_selector,
    register_selectors,
)
from repro.behavior.serialize import (
    behavior_from_dict,
    behavior_to_dict,
    expr_from_dict,
    expr_to_dict,
    stmt_from_dict,
    stmt_to_dict,
)

__all__ = [
    "Assign", "Behavior", "BehaviorError", "BinOp", "Call", "Const", "Expr",
    "For", "If", "OperatorInstance", "Stmt", "Var",
    "DEFAULT_BUILTINS", "Interpreter", "digit", "eval_expr", "inv_mod",
    "run_behavior",
    "DataflowGraph", "DfgNode", "trip_count", "weighted_op_counts",
    "OperatorSelection", "oper_selector", "register_selectors",
    "brickell_behavior", "modexp_behavior", "montgomery_behavior",
    "pencil_behavior",
    "behavior_from_dict", "behavior_to_dict", "expr_from_dict",
    "expr_to_dict", "stmt_from_dict", "stmt_to_dict",
    "parse_behavior", "parse_expression",
]
