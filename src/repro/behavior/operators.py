"""The ``oper(...)`` path selector and operator selections.

Paper Fig 13 addresses operator instances inside behavioral descriptions
from consistency constraints and decompositions:
``Shorts={Adders=oper(+,line:2)@BD}``.  This module implements that
selector against :class:`~repro.behavior.ir.Behavior` values and
registers it with a layer's :class:`~repro.core.path.SelectorRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.behavior.ir import Behavior, OperatorInstance
from repro.core.path import SelectorRegistry
from repro.errors import PathError


@dataclass(frozen=True)
class OperatorSelection:
    """The result of an ``oper`` selector: matched operator instances
    within a specific behavior."""

    behavior: Behavior
    instances: Tuple[OperatorInstance, ...]

    @property
    def symbols(self) -> Tuple[str, ...]:
        return tuple(op.symbol for op in self.instances)

    @property
    def lines(self) -> Tuple[int, ...]:
        return tuple(op.line for op in self.instances)

    def __len__(self) -> int:
        return len(self.instances)

    def sole(self) -> OperatorInstance:
        """The single matched instance (raises when ambiguous/empty)."""
        if len(self.instances) != 1:
            raise PathError(
                f"selection in {self.behavior.name!r} matched "
                f"{len(self.instances)} operators, expected exactly 1")
        return self.instances[0]

    def render(self) -> str:
        inner = ", ".join(op.render() for op in self.instances)
        return f"{self.behavior.name}:[{inner}]"


def _parse_oper_args(args: Sequence[str]) -> Tuple[str, Optional[int]]:
    """``oper(+,line:2)`` -> ('+', 2); the line part is optional."""
    if not args or not args[0]:
        raise PathError("oper() needs at least an operator symbol")
    symbol = args[0]
    line: Optional[int] = None
    for extra in args[1:]:
        key, sep, value = extra.partition(":")
        if key != "line" or not sep:
            raise PathError(f"oper(): unknown argument {extra!r}")
        try:
            line = int(value)
        except ValueError:
            raise PathError(f"oper(): bad line number {value!r}") from None
    return symbol, line


def oper_selector(value: object, args: Tuple[str, ...]) -> OperatorSelection:
    """Selector implementation: pick operator instances from a behavior."""
    if not isinstance(value, Behavior):
        raise PathError(
            f"oper() applies to behavioral descriptions, got "
            f"{type(value).__name__}")
    symbol, line = _parse_oper_args(args)
    instances = [op for op in value.operators()
                 if op.symbol == symbol and (line is None or op.line == line)]
    if not instances:
        where = f" at line {line}" if line is not None else ""
        raise PathError(
            f"oper(): no {symbol!r} operator{where} in behavior "
            f"{value.name!r}")
    return OperatorSelection(value, tuple(instances))


def register_selectors(registry: SelectorRegistry) -> None:
    """Install the behavior-level selectors on a layer's registry."""
    registry.register("oper", oper_selector)
