"""Dataflow analysis over behavioral descriptions.

The early delay estimator of CC3 ranks alternative algorithm-level
descriptions by *maximum combinational delay* — the longest operator
chain in one evaluation of the description — and the software cost model
needs *dynamic operation counts* (static counts weighted by loop trip
counts).  Both analyses live here.

The dataflow graph is built over a single pass of the listing: loop
bodies contribute one iteration (the combinational path of the datapath
a synthesizer would build), and both branches of an ``IF`` are walked
sequentially, which conservatively over-approximates the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.behavior.interp import eval_expr
from repro.behavior.ir import (
    Assign,
    Behavior,
    BehaviorError,
    BinOp,
    Call,
    Const,
    Expr,
    For,
    If,
    Stmt,
    Var,
)

#: Maps an operator symbol to its delay contribution (arbitrary units or ns).
DelayModel = Callable[[str], float]


@dataclass
class DfgNode:
    """One operation (or source value) in the dataflow graph."""

    node_id: int
    symbol: str          # operator symbol, or "source" for graph inputs
    line: int            # listing line (0 for sources)
    preds: List[int] = field(default_factory=list)
    expr: Optional[Expr] = None  # owning expression (None for sources)


class DataflowGraph:
    """Operator-level dataflow graph of one pass of a behavior."""

    def __init__(self) -> None:
        self.nodes: List[DfgNode] = []
        self._var_def: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_behavior(cls, behavior: Behavior) -> "DataflowGraph":
        graph = cls()
        for stmt in behavior.statements:
            graph._add_stmt(stmt)
        return graph

    def _new_node(self, symbol: str, line: int, preds: Sequence[int],
                  expr: Optional[Expr] = None) -> int:
        node = DfgNode(len(self.nodes), symbol, line, list(preds), expr)
        self.nodes.append(node)
        return node.node_id

    def _source_for(self, name: str) -> int:
        if name not in self._var_def:
            self._var_def[name] = self._new_node("source", 0, ())
        return self._var_def[name]

    def _add_expr(self, expr: Expr, line: int) -> int:
        if isinstance(expr, Const):
            return self._new_node("source", 0, ())
        if isinstance(expr, Var):
            return self._source_for(expr.name)
        if isinstance(expr, BinOp):
            left = self._add_expr(expr.left, line)
            right = self._add_expr(expr.right, line)
            return self._new_node(expr.op, line, (left, right), expr)
        if isinstance(expr, Call):
            args = [self._add_expr(a, line) for a in expr.args]
            return self._new_node(expr.name, line, args, expr)
        raise BehaviorError(f"unknown expression type {type(expr).__name__}")

    def _add_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            root = self._add_expr(stmt.expr, stmt.line)
            target = stmt.target
            if stmt.target_index is not None:
                # Digit-indexed defs merge into the base variable: a later
                # read of the variable depends on the digit write.
                self._add_expr(stmt.target_index, stmt.line)
            self._var_def[target] = root
        elif isinstance(stmt, For):
            self._add_expr(stmt.start, stmt.line)
            self._add_expr(stmt.stop, stmt.line)
            for inner in stmt.body:
                self._add_stmt(inner)
        elif isinstance(stmt, If):
            self._add_expr(stmt.cond, stmt.line)
            for inner in stmt.then + stmt.orelse:
                self._add_stmt(inner)
        else:
            raise BehaviorError(f"unknown statement type {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def critical_path(self, delay: DelayModel
                      ) -> Tuple[float, List[DfgNode]]:
        """Longest delay-weighted path under a per-symbol delay model."""
        return self.critical_path_nodes(lambda node: delay(node.symbol))

    def critical_path_nodes(self, node_delay: Callable[["DfgNode"], float]
                            ) -> Tuple[float, List[DfgNode]]:
        """Longest delay-weighted path; returns (delay, node chain).

        ``node_delay`` sees the full node (symbol plus owning expression)
        so callers can cost operations width-sensitively.  Sources
        contribute zero delay.  The graph is a DAG by construction
        (nodes only reference earlier nodes).
        """
        finish: List[float] = []
        best_pred: List[Optional[int]] = []
        for node in self.nodes:
            arrive = max((finish[p] for p in node.preds), default=0.0)
            own = 0.0 if node.symbol == "source" else float(node_delay(node))
            finish.append(arrive + own)
            if node.preds:
                best_pred.append(max(node.preds, key=lambda p: finish[p]))
            else:
                best_pred.append(None)
        if not self.nodes:
            return 0.0, []
        end = max(range(len(self.nodes)), key=lambda i: finish[i])
        chain: List[DfgNode] = []
        cursor: Optional[int] = end
        while cursor is not None:
            chain.append(self.nodes[cursor])
            cursor = best_pred[cursor]
        chain.reverse()
        return finish[end], chain

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            if node.symbol != "source":
                counts[node.symbol] = counts.get(node.symbol, 0) + 1
        return counts


def trip_count(stmt: For, params: Mapping[str, int]) -> int:
    """Iterations of a FOR loop under the given parameter binding."""
    try:
        start = eval_expr(stmt.start, params)
        stop = eval_expr(stmt.stop, params)
    except BehaviorError as exc:
        raise BehaviorError(
            f"loop at line {stmt.line}: cannot evaluate bounds with "
            f"params {sorted(params)}: {exc}") from exc
    return max(0, stop - start + 1)


def weighted_op_counts(behavior: Behavior, params: Mapping[str, int]
                       ) -> Dict[str, int]:
    """Dynamic operation counts: static counts weighted by loop trips.

    ``params`` binds the symbolic loop-bound variables (e.g. ``n``).
    ``IF`` branches are counted on their worst-case side (the larger
    branch), matching the estimator's pessimistic contract.
    """
    counts: Dict[str, int] = {}

    def add_expr(expr: Expr, weight: int) -> None:
        for node in expr.walk():
            symbol = None
            if isinstance(node, BinOp):
                symbol = node.op
            elif isinstance(node, Call):
                symbol = node.name
            if symbol is not None:
                counts[symbol] = counts.get(symbol, 0) + weight

    def visit(stmts: Sequence[Stmt], weight: int) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                for root in stmt.expressions():
                    add_expr(root, weight)
            elif isinstance(stmt, For):
                add_expr(stmt.start, weight)
                add_expr(stmt.stop, weight)
                trips = trip_count(stmt, params)
                visit(stmt.body, weight * trips)
            elif isinstance(stmt, If):
                add_expr(stmt.cond, weight)

                def branch_cost(branch: Sequence[Stmt]) -> Dict[str, int]:
                    saved = dict(counts)
                    counts.clear()
                    counts.update({})
                    visit(branch, weight)
                    cost = dict(counts)
                    counts.clear()
                    counts.update(saved)
                    return cost

                then_cost = branch_cost(stmt.then)
                else_cost = branch_cost(stmt.orelse)
                worst = then_cost if sum(then_cost.values()) >= sum(else_cost.values()) \
                    else else_cost
                for symbol, n in worst.items():
                    counts[symbol] = counts.get(symbol, 0) + n
            else:
                raise BehaviorError(
                    f"unknown statement type {type(stmt).__name__}")

    visit(behavior.statements, 1)
    return counts
