"""Executable behavioral descriptions for the crypto case study.

These are the algorithm-level listings the paper attaches to CDOs:
the Montgomery modular multiplier of Fig 10, the Brickell MSB-first
interleaved multiplier, the naive pencil-and-paper multiplier, and the
binary modular exponentiator the coprocessor of [10] is built around.

All listings are *live*: ``repro.behavior.interp`` executes them, and the
test suite checks them against plain integer arithmetic.  Line numbers
follow Fig 10's layout with one deliberate fix: Fig 10 consumes the
quotient digit ``Q`` on line 3 and only defines it on line 4 (a quotient-
pipelining presentation); the executable listing computes ``Q`` first.
The main loop addition — the one the paper's CC2/CC4 reference as
``oper(+,line:2)`` — is therefore at line 4 here; the crypto layer's
constraints use that line and document the mapping.
"""

from __future__ import annotations

from repro.behavior.ir import (
    Assign,
    Behavior,
    BinOp,
    Call,
    Const,
    For,
    If,
    Var,
)


def _digit(value: str, index: object, radix: str = "r") -> Call:
    idx = Var(index) if isinstance(index, str) else index
    return Call("digit", (Var(value), idx, Var(radix)))


def montgomery_behavior() -> Behavior:
    """Radix-r Montgomery modular multiplication (paper Fig 10).

    Inputs: ``A``, ``B`` (operands, < M), ``M`` (odd modulus), ``r``
    (radix, a power of two), ``n`` (digit count with ``M < r^n``).
    Output: ``R = A * B * r^(-n) mod M``.
    """
    # MINV = (r - M mod r)^-1 mod r == (-M)^-1 mod r, as in Fig 10 line 4.
    minv = Call("inv_mod",
                (BinOp("-", Var("r"), BinOp("mod", Var("M"), Var("r"))),
                 Var("r")))
    q_expr = BinOp(
        "mod",
        BinOp("*",
              Call("digit",
                   (BinOp("+", Var("R"), BinOp("*", _digit("A", "i"), Var("B"))),
                    Const(0), Var("r"))),
              minv),
        Var("r"))
    r_update = BinOp(
        "div",
        BinOp("+",
              BinOp("+", Var("R"), BinOp("*", _digit("A", "i"), Var("B"))),
              BinOp("*", Var("Q"), Var("M"))),
        Var("r"))
    return Behavior(
        "MontgomeryModMul",
        [
            Assign("R", Const(0), line=1),
            For("i", Const(0), BinOp("-", Var("n"), Const(1)),
                [
                    Assign("Q", q_expr, line=3),
                    Assign("R", r_update, line=4),
                ], line=2),
            If(BinOp(">=", Var("R"), Var("M")),
               [Assign("R", BinOp("-", Var("R"), Var("M")), line=6)],
               line=5),
        ],
        inputs=("A", "B", "M", "r", "n"),
        outputs=("R",),
        codings={"A": "2s-complement", "B": "2s-complement",
                 "M": "unsigned", "R": "redundant"},
        doc="Montgomery algorithm, radix r; R = A*B*r^-n mod M (Fig 10)",
    )


def brickell_behavior() -> Behavior:
    """Brickell-style MSB-first interleaved modular multiplication.

    Starts with the most significant digit of ``A`` and performs a
    ``mod M`` reduction at every partial product (paper Sec 5.1.1).
    Output: ``R = A * B mod M``.
    """
    partial = BinOp(
        "+",
        BinOp("*", Var("R"), Var("r")),
        BinOp("*",
              Call("digit",
                   (Var("A"), BinOp("-", BinOp("-", Var("n"), Const(1)),
                                    Var("i")), Var("r"))),
              Var("B")))
    return Behavior(
        "BrickellModMul",
        [
            Assign("R", Const(0), line=1),
            For("i", Const(0), BinOp("-", Var("n"), Const(1)),
                [
                    Assign("R", partial, line=3),
                    Assign("R", BinOp("mod", Var("R"), Var("M")), line=4),
                ], line=2),
        ],
        inputs=("A", "B", "M", "r", "n"),
        outputs=("R",),
        codings={"A": "2s-complement", "B": "2s-complement",
                 "M": "unsigned", "R": "2s-complement"},
        doc="Brickell algorithm: MSB-first partial products with per-step "
            "mod M reduction; works for any modulus",
    )


def pencil_behavior() -> Behavior:
    """Naive "paper and pencil" modular multiplication: full product then
    one reduction.  Kept as the dominated baseline the paper eliminates."""
    return Behavior(
        "PencilModMul",
        [
            Assign("P", BinOp("*", Var("A"), Var("B")), line=1),
            Assign("R", BinOp("mod", Var("P"), Var("M")), line=2),
        ],
        inputs=("A", "B", "M"),
        outputs=("R",),
        codings={"A": "2s-complement", "B": "2s-complement",
                 "R": "2s-complement"},
        doc="Paper-and-pencil multiplication followed by mod M reduction; "
            "full-width partial products and carry ripple (Sec 5.1.1)",
    )


def modexp_behavior() -> Behavior:
    """Left-to-right binary modular exponentiation: ``R = X^E mod N``.

    ``k`` is the bit length of ``E``.  Each iteration squares and, when
    the exponent bit is set, multiplies — both are modular
    multiplications, which is exactly the decomposition the paper's
    coprocessor case study exploits (Sec 5, concluding remarks).
    """
    bit = Call("digit",
               (Var("E"),
                BinOp("-", BinOp("-", Var("k"), Const(1)), Var("i")),
                Const(2)))
    return Behavior(
        "BinaryModExp",
        [
            Assign("R", Const(1), line=1),
            For("i", Const(0), BinOp("-", Var("k"), Const(1)),
                [
                    Assign("R", BinOp("mod", BinOp("*", Var("R"), Var("R")),
                                      Var("N")), line=3),
                    If(BinOp(">=", bit, Const(1)),
                       [Assign("R", BinOp("mod",
                                          BinOp("*", Var("R"), Var("X")),
                                          Var("N")), line=5)],
                       line=4),
                ], line=2),
        ],
        inputs=("X", "E", "N", "k"),
        outputs=("R",),
        codings={"X": "unsigned", "E": "unsigned", "R": "unsigned"},
        doc="Square-and-multiply modular exponentiation; the modular "
            "multiplications on lines 3/5 decompose onto the modular "
            "multiplier CDO",
    )
