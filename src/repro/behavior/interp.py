"""An interpreter for the behavioral IR.

Executing behavioral descriptions is what lets the reproduction *test*
that the Fig 10 Montgomery listing, the Brickell listing, and the
pencil-and-paper listing all compute correct modular products — the
descriptions attached to CDOs are live algorithms, not decoration.

Digit-indexed variables (``Ai``, ``Qi``, ``R0``) are modelled with the
``digit``/``set_digit`` helpers over plain integers in a given radix, so
the interpreter needs no special array machinery.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.behavior.ir import (
    Assign,
    Behavior,
    BehaviorError,
    BinOp,
    Call,
    Const,
    Expr,
    For,
    If,
    Stmt,
    Var,
)


def _floor_div(a: int, b: int) -> int:
    if b == 0:
        raise BehaviorError("division by zero in behavior")
    return a // b


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise BehaviorError("modulo by zero in behavior")
    return a % b


_BINARY_SEMANTICS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "div": _floor_div,
    "mod": _mod,
    ">": lambda a, b: int(a > b),
    "<": lambda a, b: int(a < b),
    ">=": lambda a, b: int(a >= b),
    "<=": lambda a, b: int(a <= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def digit(value: int, index: int, radix: int) -> int:
    """The ``index``-th base-``radix`` digit of ``value`` (0 = least
    significant)."""
    if radix < 2:
        raise BehaviorError(f"radix must be >= 2, got {radix}")
    if index < 0:
        raise BehaviorError(f"digit index must be >= 0, got {index}")
    return (value // radix ** index) % radix


def inv_mod(value: int, modulus: int) -> int:
    """Multiplicative inverse of ``value`` mod ``modulus`` (helper used by
    line 4 of the Montgomery listing)."""
    try:
        return pow(value, -1, modulus)
    except ValueError:
        raise BehaviorError(
            f"{value} has no inverse modulo {modulus}") from None


#: Helpers callable from behaviors via :class:`~repro.behavior.ir.Call`.
DEFAULT_BUILTINS: Dict[str, Callable[..., int]] = {
    "digit": digit,
    "inv_mod": inv_mod,
    "abs": abs,
    "min": min,
    "max": max,
}


class Interpreter:
    """Evaluates a :class:`Behavior` over integer environments."""

    def __init__(self, builtins: Optional[Mapping[str, Callable[..., int]]] = None,
                 max_loop_iterations: int = 1_000_000):
        self.builtins = dict(DEFAULT_BUILTINS)
        if builtins:
            self.builtins.update(builtins)
        self.max_loop_iterations = max_loop_iterations
        #: Dynamic operation counts from the last run, by symbol.
        self.op_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self, behavior: Behavior, env: Mapping[str, int]
            ) -> Dict[str, int]:
        """Execute and return the final environment.

        ``env`` must bind every declared input; missing bindings are a
        caller error, surfaced immediately rather than mid-run.
        """
        missing = [name for name in behavior.inputs if name not in env]
        if missing:
            raise BehaviorError(
                f"behavior {behavior.name!r}: unbound inputs {missing}")
        self.op_counts = {}
        state: Dict[str, int] = dict(env)
        for stmt in behavior.statements:
            self._exec(stmt, state)
        return state

    # ------------------------------------------------------------------
    def _exec(self, stmt: Stmt, state: Dict[str, int]) -> None:
        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr, state)
            if stmt.target_index is not None:
                # Digit-indexed target: store under "<name>[<i>]".
                index = self._eval(stmt.target_index, state)
                state[f"{stmt.target}[{index}]"] = value
            else:
                state[stmt.target] = value
        elif isinstance(stmt, For):
            start = self._eval(stmt.start, state)
            stop = self._eval(stmt.stop, state)
            if stop - start + 1 > self.max_loop_iterations:
                raise BehaviorError(
                    f"loop at line {stmt.line} exceeds "
                    f"{self.max_loop_iterations} iterations")
            for i in range(start, stop + 1):
                state[stmt.var] = i
                for inner in stmt.body:
                    self._exec(inner, state)
        elif isinstance(stmt, If):
            branch = stmt.then if self._eval(stmt.cond, state) else stmt.orelse
            for inner in branch:
                self._exec(inner, state)
        else:
            raise BehaviorError(f"unknown statement type {type(stmt).__name__}")

    def _eval(self, expr: Expr, state: Mapping[str, int]) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                return state[expr.name]
            except KeyError:
                raise BehaviorError(
                    f"unbound variable {expr.name!r}") from None
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, state)
            right = self._eval(expr.right, state)
            self.op_counts[expr.op] = self.op_counts.get(expr.op, 0) + 1
            return _BINARY_SEMANTICS[expr.op](left, right)
        if isinstance(expr, Call):
            args = [self._eval(a, state) for a in expr.args]
            self.op_counts[expr.name] = self.op_counts.get(expr.name, 0) + 1
            try:
                fn = self.builtins[expr.name]
            except KeyError:
                raise BehaviorError(f"unknown helper {expr.name!r}") from None
            return fn(*args)
        raise BehaviorError(f"unknown expression type {type(expr).__name__}")


def run_behavior(behavior: Behavior, **env: int) -> Dict[str, int]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter().run(behavior, env)


def eval_expr(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate a bare expression over an environment (used for loop
    bounds in trip-count analysis)."""
    return Interpreter()._eval(expr, env)
