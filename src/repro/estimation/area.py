"""Early area estimation from behavioral descriptions.

A companion to the delay estimator: before any cores exist, the layer
can still bound the silicon area of a candidate description by summing
operator-level area weights.  Two accounting modes reflect the two ways
a synthesizer maps a listing:

* ``shared=False`` — every static operator instance gets its own unit
  (fully parallel datapath; upper bound);
* ``shared=True`` — instances of the same symbol share one unit, plus a
  multiplexing overhead per extra instance (resource-shared datapath;
  closer to what high-level synthesis emits for sequential listings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.behavior.ir import Behavior
from repro.estimation.models import OperatorCostModel
from repro.errors import EstimationError

#: Area of the steering logic added per shared extra instance, as a
#: fraction of the shared unit's area.
_SHARING_MUX_FRACTION = 0.15


@dataclass
class AreaEstimate:
    behavior_name: str
    area: float
    by_symbol: Dict[str, float]
    shared: bool


class BehaviorAreaEstimator:
    """Operator-count area estimates for algorithm-level descriptions."""

    def __init__(self, width_bits: int = 32,
                 cost_model: Optional[OperatorCostModel] = None,
                 shared: bool = True):
        self.cost_model = cost_model or OperatorCostModel(width_bits)
        self.shared = shared

    def estimate(self, behavior: Behavior) -> AreaEstimate:
        if not isinstance(behavior, Behavior):
            raise EstimationError(
                f"BehaviorAreaEstimator needs a Behavior, got "
                f"{type(behavior).__name__}")
        histogram = behavior.op_histogram()
        by_symbol: Dict[str, float] = {}
        for symbol, count in histogram.items():
            unit = self.cost_model.area(symbol)
            if self.shared:
                by_symbol[symbol] = unit * (1.0 + _SHARING_MUX_FRACTION
                                            * (count - 1))
            else:
                by_symbol[symbol] = unit * count
        return AreaEstimate(behavior.name, sum(by_symbol.values()),
                            by_symbol, self.shared)
