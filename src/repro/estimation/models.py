"""Operator-level cost models shared by the early estimators.

At the algorithm level no implementation information exists yet (no
layout style, no technology), so the paper's early estimation tools work
on *operator* granularity: each operator symbol in a behavioral
description gets a delay/area/energy weight as a function of the operand
bit width.  The weights follow textbook unit-gate asymptotics:

===========  =======================  ==================
operation    delay (gate levels)      area (gate equiv.)
===========  =======================  ==================
add/sub      ``log2(w)`` (CLA-like)   ``3 w``
multiply     ``2 log2(w)`` (tree)     ``w^2 / 2``
div/mod      ``w log2(w)`` (iter.)    ``2 w^2`` shared
shift        ``log2(w)``              ``w log2(w)``
compare      ``log2(w)``              ``2 w``
digit        ``log2(w)`` (mux tree)   ``w``
inv_mod      table lookup             ``w``
===========  =======================  ==================

Absolute numbers are meaningless at this stage — the paper uses the
estimator only to *rank* alternative descriptions (CC3 "assigns a rank to
alternative algorithmic-level behavioral descriptions") — but keeping the
asymptotics right makes the ranks meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import EstimationError


def _log2(width: int) -> float:
    return math.log2(max(2, width))


@dataclass(frozen=True)
class OperatorCost:
    """Delay (gate levels), area (gate equivalents) and switched energy
    (arbitrary units/op) of one operator symbol at a given width."""

    delay: float
    area: float
    energy: float


class OperatorCostModel:
    """Width-parameterized operator costs.

    ``width_bits`` is the datapath width the estimate assumes — for the
    crypto layer this is the Effective Operand Length or the slice width.
    Unknown symbols fall back to a small control cost so estimators never
    crash on helper operations; callers can override any symbol via
    ``overrides``.
    """

    def __init__(self, width_bits: int,
                 overrides: Optional[Mapping[str, OperatorCost]] = None):
        if width_bits < 1:
            raise EstimationError(f"width must be >= 1, got {width_bits}")
        self.width_bits = width_bits
        w = float(width_bits)
        lg = _log2(width_bits)
        self._table: Dict[str, OperatorCost] = {
            "+": OperatorCost(lg, 3.0 * w, w),
            "-": OperatorCost(lg, 3.0 * w, w),
            "*": OperatorCost(2.0 * lg, w * w / 2.0, w * w / 4.0),
            "div": OperatorCost(w * lg, 2.0 * w * w, w * w / 2.0),
            "mod": OperatorCost(w * lg, 2.0 * w * w, w * w / 2.0),
            "<<": OperatorCost(lg, w * lg, w / 2.0),
            ">>": OperatorCost(lg, w * lg, w / 2.0),
            ">": OperatorCost(lg, 2.0 * w, w / 2.0),
            "<": OperatorCost(lg, 2.0 * w, w / 2.0),
            ">=": OperatorCost(lg, 2.0 * w, w / 2.0),
            "<=": OperatorCost(lg, 2.0 * w, w / 2.0),
            "==": OperatorCost(lg, 2.0 * w, w / 2.0),
            "!=": OperatorCost(lg, 2.0 * w, w / 2.0),
            "&": OperatorCost(1.0, w, w / 4.0),
            "|": OperatorCost(1.0, w, w / 4.0),
            "^": OperatorCost(1.0, w, w / 4.0),
            "digit": OperatorCost(lg, w, w / 4.0),
            "inv_mod": OperatorCost(2.0, w, w / 4.0),
        }
        if overrides:
            self._table.update(overrides)
        self._fallback = OperatorCost(1.0, 4.0, 1.0)

    def cost(self, symbol: str) -> OperatorCost:
        return self._table.get(symbol, self._fallback)

    def delay(self, symbol: str) -> float:
        return self.cost(symbol).delay

    def area(self, symbol: str) -> float:
        return self.cost(symbol).area

    def energy(self, symbol: str) -> float:
        return self.cost(symbol).energy

    def known_symbols(self) -> Mapping[str, OperatorCost]:
        return dict(self._table)
