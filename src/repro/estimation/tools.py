"""Adapters registering the estimators as layer estimation tools.

Consistency constraints invoke estimation tools through
:class:`~repro.core.relations.EstimatorInvocation`, which looks the tool
up by name on the layer and passes it the constraint's alias bindings.
The adapters here translate those bindings into estimator calls:

* the behavior is taken from the first alias bound to a
  :class:`~repro.behavior.ir.Behavior` (CC3 binds it as ``B``);
* the datapath width is taken from an ``EOL`` alias when present,
  falling back to 32 bits.
"""

from __future__ import annotations

from typing import Mapping

from repro.behavior.ir import Behavior
from repro.behavior.operators import OperatorSelection
from repro.core.layer import DesignSpaceLayer
from repro.estimation.area import BehaviorAreaEstimator
from repro.estimation.delay import BehaviorDelayEstimator
from repro.estimation.power import BehaviorPowerEstimator
from repro.errors import EstimationError

#: Registered tool names (the paper names the first one explicitly).
DELAY_TOOL = "BehaviorDelayEstimator"
AREA_TOOL = "BehaviorAreaEstimator"
POWER_TOOL = "BehaviorPowerEstimator"


def _behavior_from(bindings: Mapping[str, object]) -> Behavior:
    for value in bindings.values():
        if isinstance(value, Behavior):
            return value
        if isinstance(value, OperatorSelection):
            return value.behavior
    raise EstimationError(
        f"no behavioral description among bindings {sorted(bindings)}")


def _width_from(bindings: Mapping[str, object], default: int = 32) -> int:
    value = bindings.get("EOL", bindings.get("EffectiveOperandLength"))
    if isinstance(value, int) and not isinstance(value, bool) and value > 0:
        return value
    return default


def delay_tool(bindings: Mapping[str, object]) -> float:
    """MaxCombinationalDelay of the bound description (gate levels)."""
    behavior = _behavior_from(bindings)
    width = _width_from(bindings)
    return BehaviorDelayEstimator(width).estimate(behavior) \
        .max_combinational_delay


def area_tool(bindings: Mapping[str, object]) -> float:
    """Resource-shared area estimate of the bound description."""
    behavior = _behavior_from(bindings)
    width = _width_from(bindings)
    return BehaviorAreaEstimator(width).estimate(behavior).area


def power_tool(bindings: Mapping[str, object]) -> float:
    """Energy-per-execution estimate of the bound description.

    Loop bounds are taken from integer bindings (``n`` falls back to the
    EOL when absent, which is the natural digit count at radix 2).
    """
    behavior = _behavior_from(bindings)
    width = _width_from(bindings)
    params = {alias: value for alias, value in bindings.items()
              if isinstance(value, int) and not isinstance(value, bool)}
    params.setdefault("n", width)
    return BehaviorPowerEstimator(width).estimate(behavior, params) \
        .energy_per_execution


def register_estimators(layer: DesignSpaceLayer) -> None:
    """Install the three early estimation tools on a layer."""
    layer.register_tool(DELAY_TOOL, delay_tool)
    layer.register_tool(AREA_TOOL, area_tool)
    layer.register_tool(POWER_TOOL, power_tool)
