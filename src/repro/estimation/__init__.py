"""Early estimation tools, used through consistency constraints (CC3)."""

from repro.estimation.area import AreaEstimate, BehaviorAreaEstimator
from repro.estimation.delay import BehaviorDelayEstimator, DelayEstimate
from repro.estimation.models import OperatorCost, OperatorCostModel
from repro.estimation.power import BehaviorPowerEstimator, PowerEstimate
from repro.estimation.schedule import (
    Allocation,
    ListScheduler,
    Schedule,
    ScheduledOp,
    estimate_latency_cycles,
)
from repro.estimation.tools import (
    AREA_TOOL,
    DELAY_TOOL,
    POWER_TOOL,
    area_tool,
    delay_tool,
    power_tool,
    register_estimators,
)

__all__ = [
    "AreaEstimate", "BehaviorAreaEstimator",
    "BehaviorDelayEstimator", "DelayEstimate",
    "OperatorCost", "OperatorCostModel",
    "BehaviorPowerEstimator", "PowerEstimate",
    "AREA_TOOL", "DELAY_TOOL", "POWER_TOOL",
    "area_tool", "delay_tool", "power_tool", "register_estimators",
    "Allocation", "ListScheduler", "Schedule", "ScheduledOp",
    "estimate_latency_cycles",
]
