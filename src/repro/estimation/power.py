"""Early power estimation — the paper's work-in-progress extension.

Sec 6 states the authors "are currently incorporating power consumption"
into their case studies.  This estimator completes that thread: average
dynamic power of a description is estimated from *dynamic* operation
counts (static counts weighted by loop trip counts), per-operation
switched energy, and the operation rate:

``P = sum_ops(energy(op)) * V^2-normalized-activity / exec_time``

Since there is no technology at this stage, energies are in arbitrary
units and the result is meaningful only for ranking — the same contract
as the delay estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.behavior.dfg import weighted_op_counts
from repro.behavior.ir import Behavior
from repro.estimation.models import OperatorCostModel
from repro.errors import EstimationError


@dataclass
class PowerEstimate:
    behavior_name: str
    #: Total switched energy of one execution (arbitrary units).
    energy_per_execution: float
    #: Average power assuming the given execution time (units/time).
    average_power: float
    by_symbol: Dict[str, float]


class BehaviorPowerEstimator:
    """Activity-based energy/power ranking of behavioral descriptions."""

    def __init__(self, width_bits: int = 32,
                 cost_model: Optional[OperatorCostModel] = None,
                 activity_factor: float = 0.5):
        if not 0.0 < activity_factor <= 1.0:
            raise EstimationError(
                f"activity factor must be in (0, 1], got {activity_factor}")
        self.cost_model = cost_model or OperatorCostModel(width_bits)
        self.activity_factor = activity_factor

    def estimate(self, behavior: Behavior, params: Mapping[str, int],
                 execution_time: float = 1.0) -> PowerEstimate:
        """``params`` binds the loop-bound variables (e.g. ``n``);
        ``execution_time`` converts energy to average power."""
        if not isinstance(behavior, Behavior):
            raise EstimationError(
                f"BehaviorPowerEstimator needs a Behavior, got "
                f"{type(behavior).__name__}")
        if execution_time <= 0:
            raise EstimationError(
                f"execution time must be positive, got {execution_time}")
        counts = weighted_op_counts(behavior, params)
        by_symbol = {
            symbol: count * self.cost_model.energy(symbol) * self.activity_factor
            for symbol, count in counts.items()
        }
        energy = sum(by_symbol.values())
        return PowerEstimate(behavior.name, energy, energy / execution_time,
                             by_symbol)
