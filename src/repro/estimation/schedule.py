"""Resource-constrained scheduling: an early *latency* estimator.

CC2 gives a closed-form cycle count for one specific datapath family;
for arbitrary behavioral descriptions the layer needs a structural
estimate: given an allocation of operator units (so many adders, so
many multipliers, ...), how many control steps does one pass of the
description need?  That is classic list scheduling over the dataflow
graph, and it is the natural companion to the
:class:`~repro.estimation.delay.BehaviorDelayEstimator` — delay bounds
the clock period, the schedule bounds the cycle count, their product
bounds the latency.

The scheduler is exact in its own terms: it produces a *valid* schedule
(dependences respected, per-step resource usage within the allocation),
checked by the test suite, and reports the resource that limited it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.behavior.dfg import DataflowGraph, DfgNode
from repro.behavior.ir import Behavior
from repro.errors import EstimationError

#: Resource classes: operator symbols are mapped onto these unit types.
ADD_UNIT = "adder"
MUL_UNIT = "multiplier"
DIV_UNIT = "divider"
MISC_UNIT = "misc"

#: Default mapping of operator symbols to resource classes.  Shifts,
#: digit selects and comparisons run on the misc/steering logic.
DEFAULT_UNIT_OF_SYMBOL: Dict[str, str] = {
    "+": ADD_UNIT, "-": ADD_UNIT,
    "*": MUL_UNIT,
    "div": DIV_UNIT, "mod": DIV_UNIT,
    "<<": MISC_UNIT, ">>": MISC_UNIT,
    ">": MISC_UNIT, "<": MISC_UNIT, ">=": MISC_UNIT, "<=": MISC_UNIT,
    "==": MISC_UNIT, "!=": MISC_UNIT,
    "&": MISC_UNIT, "|": MISC_UNIT, "^": MISC_UNIT,
    "digit": MISC_UNIT, "inv_mod": MISC_UNIT,
}


@dataclass(frozen=True)
class Allocation:
    """How many units of each resource class the datapath provides.

    Zero of a class the description needs is an estimation error —
    the schedule would never finish.
    """

    adders: int = 1
    multipliers: int = 1
    dividers: int = 1
    misc: int = 2

    def limit(self, unit: str) -> int:
        return {ADD_UNIT: self.adders, MUL_UNIT: self.multipliers,
                DIV_UNIT: self.dividers, MISC_UNIT: self.misc}[unit]

    def describe(self) -> str:
        return (f"{self.adders} adder(s), {self.multipliers} "
                f"multiplier(s), {self.dividers} divider(s), "
                f"{self.misc} misc unit(s)")


@dataclass
class ScheduledOp:
    """One operation placed in the schedule."""

    node_id: int
    symbol: str
    unit: str
    step: int


@dataclass
class Schedule:
    """A complete resource-constrained schedule of one behavior pass."""

    behavior_name: str
    allocation: Allocation
    steps: int
    ops: List[ScheduledOp]
    #: resource class -> fraction of step-slots occupied (pressure).
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def bottleneck(self) -> Optional[str]:
        """The busiest resource class (None for empty schedules)."""
        if not self.utilization:
            return None
        return max(self.utilization, key=lambda u: self.utilization[u])

    def ops_at(self, step: int) -> List[ScheduledOp]:
        return [op for op in self.ops if op.step == step]

    def step_of(self, node_id: int) -> int:
        for op in self.ops:
            if op.node_id == node_id:
                return op.step
        raise EstimationError(f"node {node_id} is not scheduled")

    def describe(self) -> str:
        lines = [f"schedule of {self.behavior_name!r} on "
                 f"{self.allocation.describe()}: {self.steps} steps"]
        for step in range(self.steps):
            ops = ", ".join(f"{op.symbol}@{op.unit}"
                            for op in self.ops_at(step))
            lines.append(f"  step {step}: {ops}")
        return "\n".join(lines)


class ListScheduler:
    """Dependence-aware list scheduling with unit resource constraints.

    Priority: critical-path distance to the sink (longest remaining
    chain first) — the standard heuristic, deterministic by node id on
    ties.  Every operation takes one control step; chaining within a
    step is the clock-period estimator's concern, not this one's.
    """

    def __init__(self, allocation: Allocation = Allocation(),
                 unit_of_symbol: Optional[Mapping[str, str]] = None):
        self.allocation = allocation
        self.unit_of_symbol = dict(DEFAULT_UNIT_OF_SYMBOL)
        if unit_of_symbol:
            self.unit_of_symbol.update(unit_of_symbol)

    def _unit_for(self, symbol: str) -> str:
        return self.unit_of_symbol.get(symbol, MISC_UNIT)

    def schedule(self, behavior: Behavior) -> Schedule:
        if not isinstance(behavior, Behavior):
            raise EstimationError(
                f"ListScheduler needs a Behavior, got "
                f"{type(behavior).__name__}")
        graph = DataflowGraph.from_behavior(behavior)
        operations = [node for node in graph.nodes
                      if node.symbol != "source"]
        for node in operations:
            unit = self._unit_for(node.symbol)
            if self.allocation.limit(unit) < 1:
                raise EstimationError(
                    f"behavior {behavior.name!r} needs a {unit} but the "
                    f"allocation provides none")
        priority = self._priorities(graph)
        # Earliest step each node may start: 0, or 1 + max(pred steps).
        placed: Dict[int, int] = {}
        ready = {node.node_id for node in operations
                 if not self._op_preds(graph, node)}
        pending = {node.node_id for node in operations} - ready
        ops: List[ScheduledOp] = []
        step = 0
        guard = 0
        while ready or pending:
            guard += 1
            if guard > len(operations) + len(graph.nodes) + 8:
                raise EstimationError(
                    "scheduler failed to converge (cyclic graph?)")
            budget = {unit: self.allocation.limit(unit)
                      for unit in (ADD_UNIT, MUL_UNIT, DIV_UNIT, MISC_UNIT)}
            for node_id in sorted(ready,
                                  key=lambda n: (-priority[n], n)):
                node = graph.nodes[node_id]
                unit = self._unit_for(node.symbol)
                if budget[unit] <= 0:
                    continue
                budget[unit] -= 1
                placed[node_id] = step
                ops.append(ScheduledOp(node_id, node.symbol, unit, step))
            ready -= set(placed)
            newly_ready = set()
            for node_id in pending:
                preds = self._op_preds(graph, graph.nodes[node_id])
                if all(p in placed and placed[p] <= step for p in preds):
                    newly_ready.add(node_id)
            pending -= newly_ready
            ready |= newly_ready
            step += 1
        total_steps = step if ops else 0
        utilization: Dict[str, float] = {}
        if total_steps:
            for unit in (ADD_UNIT, MUL_UNIT, DIV_UNIT, MISC_UNIT):
                used = sum(1 for op in ops if op.unit == unit)
                capacity = self.allocation.limit(unit) * total_steps
                if capacity:
                    utilization[unit] = used / capacity
        return Schedule(behavior.name, self.allocation, total_steps, ops,
                        utilization)

    # ------------------------------------------------------------------
    def _op_preds(self, graph: DataflowGraph, node: DfgNode) -> List[int]:
        """Transitive predecessors that are operations (sources are
        always available and impose no ordering)."""
        out: List[int] = []
        stack = list(node.preds)
        seen = set()
        while stack:
            pred_id = stack.pop()
            if pred_id in seen:
                continue
            seen.add(pred_id)
            pred = graph.nodes[pred_id]
            if pred.symbol == "source":
                continue
            out.append(pred_id)
        return out

    def _priorities(self, graph: DataflowGraph) -> Dict[int, float]:
        """Length of the longest chain of operations from each node to
        any sink (list-scheduling priority)."""
        succs: Dict[int, List[int]] = {node.node_id: []
                                       for node in graph.nodes}
        for node in graph.nodes:
            for pred in node.preds:
                succs[pred].append(node.node_id)
        priority: Dict[int, float] = {}
        for node in reversed(graph.nodes):
            own = 0.0 if node.symbol == "source" else 1.0
            below = max((priority[s] for s in succs[node.node_id]),
                        default=0.0)
            priority[node.node_id] = own + below
        return priority


def estimate_latency_cycles(behavior: Behavior,
                            allocation: Allocation = Allocation(),
                            iterations: int = 1) -> int:
    """Cycle estimate for ``iterations`` sequential passes of the
    description's loop body — the number the designer compares against
    a latency budget before any core exists."""
    if iterations < 1:
        raise EstimationError(f"iterations must be >= 1, got {iterations}")
    schedule = ListScheduler(allocation).schedule(behavior)
    return schedule.steps * iterations
