"""The BehaviorDelayEstimator of the paper's CC3.

"CC3 defines the context of utilization of an early estimation tool,
denoted BehaviorDelayEstimator, used to assign a rank to alternative
algorithmic-level behavioral descriptions with respect to
MaxCombinationalDelay" (paper Sec 5.2).  The estimator is useful when no
suitable hard cores are found in the reuse library.

Implementation: critical path of the behavior's dataflow graph under an
operator-level delay model.  Loop bodies contribute their single-pass
combinational path (the quantity a datapath synthesizer must close timing
on); loop-carried repetition is a *latency* matter, covered by CC2-style
cycle formulas, not by this estimator.

Width inference: digit-serial algorithms mix full-width operations with
digit-sized ones (``mod r``, quotient-digit products).  Charging the
digit ops at full operand width would invert the ranking the paper
relies on (Montgomery best), so subexpressions recognisably *narrow* —
small constants, digit-extraction calls, variables named like the radix
or a quotient digit, and compositions thereof — are costed at a narrow
width instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from repro.behavior.dfg import DataflowGraph, DfgNode
from repro.behavior.ir import Behavior, BinOp, Call, Const, Expr, Var
from repro.estimation.models import OperatorCostModel
from repro.errors import EstimationError

#: Variable names conventionally holding digit-sized values.
DEFAULT_NARROW_NAMES = frozenset({"r", "radix", "Q", "q", "Qi", "carry"})

#: Width (bits) assumed for narrow (digit-valued) operations.
NARROW_BITS = 8


@dataclass
class DelayEstimate:
    """Result of one estimation: the maximum combinational delay in gate
    levels and the operator chain realizing it."""

    behavior_name: str
    max_combinational_delay: float
    critical_chain: List[str]


class BehaviorDelayEstimator:
    """Rank algorithm-level descriptions by maximum combinational delay."""

    def __init__(self, width_bits: int = 32,
                 cost_model: Optional[OperatorCostModel] = None,
                 narrow_names: FrozenSet[str] = DEFAULT_NARROW_NAMES):
        self.cost_model = cost_model or OperatorCostModel(width_bits)
        self.narrow_model = OperatorCostModel(NARROW_BITS)
        self.double_model = OperatorCostModel(2 * self.cost_model.width_bits)
        self.narrow_names = frozenset(narrow_names)

    def _is_narrow(self, expr: Optional[Expr]) -> bool:
        if expr is None:
            return False
        if isinstance(expr, Const):
            return abs(expr.value) < 256
        if isinstance(expr, Var):
            return expr.name in self.narrow_names
        if isinstance(expr, Call):
            return expr.name in ("digit", "inv_mod")
        if isinstance(expr, BinOp):
            return self._is_narrow(expr.left) and self._is_narrow(expr.right)
        return False

    def _node_delay(self, node: DfgNode) -> float:
        expr = node.expr
        if isinstance(expr, BinOp):
            if self._is_narrow(expr):
                return self.narrow_model.delay(expr.op)
            if expr.op in ("div", "mod") and self._is_narrow(expr.right):
                # Division by a digit-sized power of two is a shift /
                # low-bit select, not a full divider.
                return self.cost_model.delay("digit")
            if (expr.op in ("div", "mod")
                    and isinstance(expr.left, BinOp) and expr.left.op == "*"
                    and not self._is_narrow(expr.left)):
                # Reducing a full double-width product (the pencil-and-
                # paper pattern) pays for the 2w-bit partial remainders.
                return self.double_model.delay(expr.op)
            if expr.op == "*" and (self._is_narrow(expr.left)
                                   or self._is_narrow(expr.right)):
                # digit x word product: one partial-product row.
                return self.cost_model.delay("+")
        if isinstance(expr, Call) and self._is_narrow(expr):
            return self.narrow_model.delay(expr.name)
        return self.cost_model.delay(node.symbol)

    def estimate(self, behavior: Behavior) -> DelayEstimate:
        if not isinstance(behavior, Behavior):
            raise EstimationError(
                f"BehaviorDelayEstimator needs a Behavior, got "
                f"{type(behavior).__name__}")
        graph = DataflowGraph.from_behavior(behavior)
        delay, chain = graph.critical_path_nodes(self._node_delay)
        symbols = [node.symbol for node in chain if node.symbol != "source"]
        return DelayEstimate(behavior.name, delay, symbols)

    def rank(self, behaviors: Sequence[Behavior]) -> List[DelayEstimate]:
        """Estimates sorted best (smallest delay) first — the "rank" the
        paper's CC3 assigns to alternative descriptions."""
        estimates = [self.estimate(b) for b in behaviors]
        estimates.sort(key=lambda e: e.max_combinational_delay)
        return estimates
