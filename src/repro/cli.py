"""Command-line interface: ``python -m repro <command>``.

Exposes the library's main entry points without writing Python:

* ``describe`` — self-documentation of a bundled layer (text/markdown);
* ``table1`` / ``fig6`` / ``fig9`` / ``fig12`` — regenerate the paper's
  artifacts on stdout;
* ``explore`` — a scripted exploration: requirements and decisions from
  the command line, survivors and ranges on stdout (``--trace`` records
  a replayable JSONL trace);
* ``trace`` — summarize, render, or replay-verify a recorded trace;
* ``stats`` — metrics from a traced scripted exploration
  (human-readable or Prometheus text format);
* ``query`` — direct core retrieval with property/merit filters;
* ``export`` — serialize a bundled layer to JSON.

* ``serve`` — long-lived HTTP/JSON server: the same verbs plus
  token-keyed concurrent sessions and a ``/metrics`` endpoint
  (see ``docs/serving.md``);

* ``lint`` — structural static analysis (``DSL0xx`` diagnostics);
* ``verify`` — semantic verification: dead-branch proofs, unsat cores
  and constraint strata (``DSL1xx`` diagnostics).

``lint``, ``verify``, ``trace`` and ``stats`` share one parent parser
for the ``--json`` / ``--output PATH`` output options.

The bundled layers are ``crypto`` (the Sec 5 case study) and ``idct``
(the Sec 2 example); ``--eol`` rebuilds the crypto libraries for another
operand length.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core import (
    CoreQuery,
    ExplorationSession,
    layer_to_dict,
    render_markdown,
    render_table,
)
from repro.core.layer import DesignSpaceLayer
from repro.errors import ReproError


def _build_layer(name: str, eol: int) -> DesignSpaceLayer:
    if name == "crypto":
        from repro.domains.crypto import build_crypto_layer
        return build_crypto_layer(eol=eol)
    if name == "idct":
        from repro.domains.idct import build_idct_layer
        return build_idct_layer()
    raise ReproError(f"unknown layer {name!r}; bundled: crypto, idct")


def _parse_binding(text: str) -> Tuple[str, object]:
    """``Name=value`` with int/float coercion where it parses."""
    name, sep, raw = text.partition("=")
    if not sep or not name or not raw:
        raise ReproError(f"expected Name=value, got {text!r}")
    for caster in (int, float):
        try:
            return name, caster(raw)
        except ValueError:
            continue
    return name, raw


def _emit(args: argparse.Namespace, text: str) -> None:
    """Write a command's report to ``--output PATH`` or stdout."""
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as fp:
            fp.write(text)
            if not text.endswith("\n"):
                fp.write("\n")
        print(f"wrote {output}")
    else:
        print(text)


def _emit_json(args: argparse.Namespace, data: object) -> None:
    _emit(args, json.dumps(data, indent=2, sort_keys=True, default=repr))


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_describe(args: argparse.Namespace) -> int:
    layer = _build_layer(args.layer, args.eol)
    if args.markdown:
        print(render_markdown(layer))
    else:
        print(layer.describe())
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.hw.synthesis import (
        TABLE1_RECIPES,
        TABLE1_SLICE_WIDTHS,
        synthesize_table1_cell,
    )
    headers = ["#", "radix", "algorithm", "adder", "multiplier"]
    for width in TABLE1_SLICE_WIDTHS:
        headers += [f"A{width}", f"L{width}", f"C{width}"]
    rows = []
    for number in sorted(TABLE1_RECIPES):
        radix, algorithm, adder, multiplier = TABLE1_RECIPES[number]
        row: List[object] = [f"#{number}", radix, algorithm, adder,
                             multiplier]
        for width in TABLE1_SLICE_WIDTHS:
            design = synthesize_table1_cell(number, width,
                                            args.technology)
            row += [round(design.area), round(design.latency_ns),
                    round(design.clock_ns, 2)]
        rows.append(row)
    print(render_table(headers, rows,
                       title=f"Table 1 (modelled, {args.technology}; "
                             f"latency for EOL = slice width)"))
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from repro.hw.synthesis import synthesize_sliced
    from repro.sw.cpu import pentium_suite
    rows: List[List[object]] = []
    for number, width in ((5, 16), (2, 128), (8, 64)):
        design = synthesize_sliced(number, width, args.eol)
        rows.append([design.name, "Hardware",
                     round(design.latency_us, 2)])
    for label, multiplier in pentium_suite(args.eol).items():
        rows.append([label, "Software", round(multiplier.delay_us(args.eol), 1)])
    rows.sort(key=lambda r: r[2])
    print(render_table(["design", "family", "delay (us)"], rows,
                       title=f"Fig 6 — one {args.eol}-bit modular "
                             f"multiplication"))
    return 0


def _scatter_rows(points) -> List[List[object]]:
    return [[name, round(delay), round(area)]
            for name, (delay, area) in sorted(points.items())]


def cmd_fig9(args: argparse.Namespace) -> int:
    from repro.hw.synthesis import synthesize_sliced
    points = {}
    for number in (2, 8):
        for width in (8, 16, 32, 64, 128):
            if args.eol % width:
                continue
            design = synthesize_sliced(number, width, args.eol)
            points[design.name] = (design.latency_ns, design.area)
    print(render_table(["design", "delay (ns)", "area"],
                       _scatter_rows(points),
                       title=f"Fig 9 — Montgomery (#2) vs Brickell (#8) "
                             f"at {args.eol} bits"))
    return 0


def cmd_fig12(args: argparse.Namespace) -> int:
    from repro.hw.synthesis import synthesize_table1_cell
    points = {}
    for number in (1, 2, 3, 4, 5, 6):
        design = synthesize_table1_cell(number, 64)
        points[design.name] = (design.latency_ns, design.area)
    print(render_table(["design", "delay (ns)", "area"],
                       _scatter_rows(points),
                       title="Fig 12 — 64-bit Montgomery multipliers on "
                             "64-bit slices"))
    return 0


def _run_scripted_session(layer: DesignSpaceLayer,
                          args: argparse.Namespace) -> ExplorationSession:
    """The shared explore/stats walk: requirements, then decisions."""
    session = ExplorationSession(
        layer, args.start,
        merit_metrics=tuple(args.metrics.split(",")))
    for binding in args.require or ():
        name, value = _parse_binding(binding)
        session.set_requirement(name, value)
    for binding in args.decide or ():
        name, value = _parse_binding(binding)
        outcome = session.decide(name, value)
        print(f"  {outcome.describe()}")
    return session


def _automated_explore(args: argparse.Namespace) -> int:
    """``repro explore --strategy NAME``: run the exploration engine on
    the bundled problem instead of a scripted manual walk."""
    from dataclasses import replace

    from repro.core.explore import ExplorationEngine

    if args.layer == "crypto":
        from repro.domains.crypto import crypto_exploration_problem
        problem = crypto_exploration_problem(
            eol=args.eol, with_estimator=args.estimate)
    else:
        from repro.domains.idct import idct_exploration_problem
        problem = idct_exploration_problem()
    problem = replace(problem, metrics=tuple(args.metrics.split(",")))
    if args.require:
        overrides = dict(problem.requirements)
        for binding in args.require:
            name, value = _parse_binding(binding)
            overrides[name] = value
        problem = replace(problem, requirements=tuple(overrides.items()))
    if args.decide:
        prefix = tuple(_parse_binding(b) for b in args.decide)
        problem = replace(problem, decisions=problem.decisions + prefix)
    # The engine's serial/probe path works on this layer (traced when
    # asked); parallel workers hydrate their own layers from the
    # problem's factory/snapshot and ship span buffers back for the
    # engine's deterministic trace merge.
    layer = _build_layer(args.layer, args.eol)
    if args.trace:
        layer.observe()
    problem = replace(problem, layer=layer)
    options = {}
    if args.strategy in ("evolutionary", "ga"):
        options.update(seed=args.seed, population=args.population,
                       generations=args.generations)
    elif args.strategy == "beam":
        options["width"] = args.beam_width
    with ExplorationEngine(problem, strategy=args.strategy,
                           jobs=args.jobs, backend=args.backend,
                           strategy_options=options,
                           chunk_size=getattr(args, "chunk_size", None),
                           keep_pool=getattr(args, "keep_pool", False),
                           trace_sample_rate=getattr(args, "trace_sample",
                                                     None)
                           ) as engine:
        result = engine.run()
    if getattr(args, "json", False):
        _emit_json(args, result.to_dict())
    else:
        _emit(args, result.render_text(limit=args.top))
    if (result.pool or {}).get("rebuilds"):
        print("note: workers rebuilt the layer per task; attach a "
              "LayerSnapshot (problem.snapshot) or a cacheable "
              "layer_factory for one-time hydration", file=sys.stderr)
    if args.trace:
        from repro.core.obs import write_jsonl
        events = layer.observer.events
        write_jsonl(events, args.trace)
        print(f"trace: {len(events)} events written to {args.trace}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    if args.strategy:
        return _automated_explore(args)
    layer = _build_layer(args.layer, args.eol)
    if args.trace:
        layer.observe()
    session = _run_scripted_session(layer, args)
    print(session.report())
    if args.trace:
        from repro.core.obs import write_jsonl
        events = layer.observer.events
        write_jsonl(events, args.trace)
        print(f"trace: {len(events)} events written to {args.trace}")
    if args.options:
        for info in session.available_options(args.options):
            status = "eliminated" if info.eliminated else \
                f"{info.candidate_count} candidates"
            print(f"  option {info.option}: {status} {info.ranges}")
    if args.list:
        for core in session.candidates():
            print(f"  {core.describe()}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    layer = _build_layer(args.layer, args.eol)
    query = CoreQuery(layer)
    if args.under:
        query = query.under(args.under)
    for binding in args.where or ():
        name, value = _parse_binding(binding)
        query = query.where(**{name: value})
    if args.max_merit:
        name, value = _parse_binding(args.max_merit)
        query = query.merit_at_most(name, float(value))
    if args.order_by:
        query = query.order_by(args.order_by)
    if args.limit:
        query = query.limit(args.limit)
    cores = query.all()
    for core in cores:
        print(core.describe())
    print(f"({len(cores)} cores)")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.lint import (
        DEFAULT_REGISTRY,
        LintConfig,
        parse_severity,
    )
    if args.list_rules:
        for lint_rule in DEFAULT_REGISTRY:
            print(lint_rule.describe())
        return 0
    layer = _build_layer(args.layer, args.eol)
    config = LintConfig(select=args.select or None,
                        disable=tuple(args.disable or ()))
    report = layer.lint(config=config)
    if args.json or args.format == "json":
        _emit_json(args, report.to_dict())
    else:
        _emit(args, report.render_text())
    threshold = parse_severity(args.fail_on)
    return 1 if report.has_at_least(threshold) else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEFAULT_REGISTRY as ANALYSIS_REGISTRY,
        AnalysisConfig,
        analyze_package,
        analyze_paths,
    )
    from repro.core.lint import parse_severity
    if args.list_rules:
        for analysis_rule in ANALYSIS_REGISTRY:
            print(analysis_rule.describe())
        return 0
    if args.lock_graph:
        from repro.analysis import lock_graph_package, lock_graph_paths
        if args.path:
            graph = lock_graph_paths(args.path)
        else:
            graph = lock_graph_package(args.package)
        if args.json or args.format == "json":
            _emit_json(args, graph.to_dict())
        else:
            _emit(args, graph.render_text())
        return 0 if graph.acyclic else 1
    config = AnalysisConfig(select=args.select or None,
                            disable=tuple(args.disable or ()))
    if args.path:
        report = analyze_paths(args.path, config=config)
    else:
        report = analyze_package(args.package, config=config)
    if args.json or args.format == "json":
        _emit_json(args, report.to_dict())
    else:
        _emit(args, report.render_text())
    threshold = parse_severity(args.fail_on)
    return 1 if report.has_at_least(threshold) else 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.lint import parse_severity
    layer = _build_layer(args.layer, args.eol)
    requirements = tuple(_parse_binding(b) for b in args.require or ())
    report = layer.verify(requirements=requirements, start=args.start)
    if args.json or args.format == "json":
        _emit_json(args, report.to_dict())
    else:
        _emit(args, report.render_text())
        for core in report.analysis.unsat_cores:
            print(f"fix-it: region {core.region}:")
            for hint in core.hints:
                print(f"  - {hint}")
    threshold = parse_severity(args.fail_on)
    return 1 if report.has_at_least(threshold) else 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.obs import read_jsonl, render_timeline, summarize, \
        summarize_dict
    from repro.core.obs.replay import session_ids
    from repro.errors import ReplayError
    try:
        events = read_jsonl(args.trace_file)
    except OSError as exc:
        raise ReplayError(
            f"cannot read trace file {args.trace_file}: {exc}") from exc
    if args.replay:
        from repro.core.obs.replay import replay_trace
        layer = _build_layer(args.layer, args.eol)
        report = replay_trace(layer, events, session=args.session)
        if args.json:
            _emit_json(args, report.to_dict())
        else:
            _emit(args, report.render_text())
        return 0 if report.ok else 1
    if args.session is not None:
        # The summary/timeline honor --session too: keep the selected
        # session's events plus the session-less ones (index builds,
        # lint runs) that give the timeline its context.
        if args.session not in session_ids(events):
            raise ReplayError(f"no session {args.session} in trace "
                              f"(recorded: {session_ids(events)})")
        events = [e for e in events
                  if e.payload.get("session", args.session) == args.session]
    if args.timeline:
        _emit(args, render_timeline(events))
    elif args.json:
        _emit_json(args, summarize_dict(events))
    else:
        _emit(args, summarize(events))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.obs import profile_events, read_jsonl
    from repro.errors import ReplayError
    try:
        events = read_jsonl(args.trace_file)
    except OSError as exc:
        raise ReplayError(
            f"cannot read trace file {args.trace_file}: {exc}") from exc
    profile = profile_events(events)
    if args.json:
        _emit_json(args, profile.to_dict(top=args.top))
    elif args.flame:
        _emit(args, profile.render_flame(max_depth=args.max_depth))
    else:
        _emit(args, profile.render_table(top=args.top) + "\n\n"
              + profile.render_flame(max_depth=args.max_depth))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    layer = _build_layer(args.layer, args.eol)
    recorder = layer.observe()
    session = _run_scripted_session(layer, args)
    # Exercise the query path too, so the dump covers prune/cache
    # metrics and not just the mutation counters.
    session.prune_report()
    session.prune_report()
    metrics = recorder.metrics
    if args.json:
        _emit_json(args, metrics.to_dict())
    elif args.prometheus:
        _emit(args, metrics.render_prometheus())
    else:
        _emit(args, metrics.render_text())
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import run_shell
    layer = _build_layer(args.layer, args.eol)
    start = args.start if args.layer == "crypto" else "IDCT"
    run_shell(layer, start)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import DesignSpaceService, serve
    service = DesignSpaceService(eol=args.eol, jobs=args.jobs,
                                 default_layer=args.layer,
                                 session_ttl=args.session_ttl)

    def ready(server) -> None:
        print(f"serving design-space layers "
              f"({', '.join(sorted(service.verbs))}) on {server.url} "
              f"- scrape {server.url}/metrics", file=sys.stderr)

    return serve(service, host=args.host, port=args.port,
                 json_logs=args.json_logs, ready=ready)


def cmd_export(args: argparse.Namespace) -> int:
    layer = _build_layer(args.layer, args.eol)
    json.dump(layer_to_dict(layer), sys.stdout, indent=None if args.compact
              else 2, sort_keys=True)
    print()
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Design Space Layer (DATE 1999) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_layer_args(p):
        p.add_argument("--layer", default="crypto",
                       choices=("crypto", "idct"),
                       help="bundled layer to operate on")
        p.add_argument("--eol", type=int, default=768,
                       help="operand length the crypto libraries are "
                            "characterized for")

    # Output options shared (as an argparse parent) by lint/trace/stats.
    output_parent = argparse.ArgumentParser(add_help=False)
    output_group = output_parent.add_argument_group("output")
    output_group.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON")
    output_group.add_argument("--output", metavar="PATH",
                              help="write the report to PATH instead of "
                                   "stdout")

    def add_session_args(p):
        p.add_argument("--start", default="OMM",
                       help="CDO (or alias) the session starts at")
        p.add_argument("--require", action="append", metavar="NAME=VALUE",
                       help="enter a requirement value (repeatable)")
        p.add_argument("--decide", action="append", metavar="ISSUE=OPTION",
                       help="decide a design issue (repeatable, in order)")
        p.add_argument("--metrics", default="area,latency_ns,delay_us",
                       help="comma-separated merit metrics to report")

    p = sub.add_parser("describe", help="self-documentation of a layer")
    add_layer_args(p)
    p.add_argument("--markdown", action="store_true",
                   help="emit Markdown instead of plain text")
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--technology", default="0.35u")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("fig6", help="regenerate Fig 6")
    p.add_argument("--eol", type=int, default=1024)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig9", help="regenerate Fig 9")
    p.add_argument("--eol", type=int, default=768)
    p.set_defaults(fn=cmd_fig9)

    p = sub.add_parser("fig12", help="regenerate Fig 12")
    p.set_defaults(fn=cmd_fig12)

    p = sub.add_parser("explore",
                       help="scripted or automated exploration",
                       parents=[output_parent])
    add_layer_args(p)
    add_session_args(p)
    p.add_argument("--options", metavar="ISSUE",
                   help="annotate the options of an issue")
    p.add_argument("--list", action="store_true",
                   help="list surviving cores")
    p.add_argument("--trace", metavar="PATH",
                   help="record the session as a replayable JSONL trace")
    engine = p.add_argument_group(
        "automated search (enabled by --strategy; --require adds to and "
        "--decide prefixes the bundled problem)")
    engine.add_argument("--strategy", default=None,
                        choices=("exhaustive", "bnb", "branch-and-bound",
                                 "beam", "evolutionary", "ga"),
                        help="run the exploration engine instead of a "
                             "scripted walk")
    engine.add_argument("--jobs", type=int, default=1,
                        help="parallel branch evaluators (1 = serial)")
    engine.add_argument("--backend", default="thread",
                        choices=("thread", "process", "async"),
                        help="worker pool backend for --jobs > 1 "
                             "(async overlaps estimator-bound branches "
                             "on one event loop)")
    engine.add_argument("--chunk-size", type=int, default=None,
                        metavar="N",
                        help="branches per dispatched chunk (default: "
                             "tasks // (jobs * 4); idle workers steal "
                             "pending chunks)")
    engine.add_argument("--keep-pool", action="store_true",
                        help="keep the worker pool (and its hydrated "
                             "layers) warm until the command exits "
                             "instead of closing it after the dispatch")
    engine.add_argument("--seed", type=int, default=0,
                        help="evolutionary strategy seed (deterministic)")
    engine.add_argument("--beam-width", type=int, default=4,
                        help="beam strategy width")
    engine.add_argument("--population", type=int, default=16,
                        help="evolutionary population size")
    engine.add_argument("--generations", type=int, default=8,
                        help="evolutionary generations")
    engine.add_argument("--estimate", action="store_true",
                        help="estimate merits of empty surviving sets "
                             "with the layer's estimation tools (crypto)")
    engine.add_argument("--top", type=int, default=10,
                        help="frontier rows to print")
    engine.add_argument("--trace-sample", type=float, default=None,
                        metavar="RATE",
                        help="per-branch trace sampling rate in [0, 1] "
                             "for parallel dispatches (default: adaptive "
                             "— full below 16 branches, decaying after)")
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser("query", help="direct core retrieval")
    add_layer_args(p)
    p.add_argument("--under", help="CDO (or alias) to search below")
    p.add_argument("--where", action="append", metavar="PROP=VALUE",
                   help="property equality filter (repeatable)")
    p.add_argument("--max-merit", metavar="MERIT=BOUND",
                   help="upper bound on a figure of merit")
    p.add_argument("--order-by", metavar="MERIT")
    p.add_argument("--limit", type=int)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("lint", help="static analysis of a layer",
                       parents=[output_parent])
    add_layer_args(p)
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (legacy spelling of --json)")
    p.add_argument("--fail-on", default="error",
                   choices=("error", "warning", "info"),
                   help="exit non-zero when findings at or above this "
                        "severity exist")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="run only these rules (code, slug or category; "
                        "repeatable)")
    p.add_argument("--disable", action="append", metavar="RULE",
                   help="skip these rules (code, slug or category; "
                        "repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("analyze",
                       help="concurrency/invariant analysis of the "
                            "repo's own source (DSA rules)",
                       parents=[output_parent])
    p.add_argument("path", nargs="*",
                   help="files or directories to analyze (default: the "
                        "installed repro package)")
    p.add_argument("--package", default="repro",
                   help="importable package to analyze when no paths "
                        "are given (default: repro)")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (legacy spelling of --json)")
    p.add_argument("--fail-on", default="error",
                   choices=("error", "warning", "info"),
                   help="exit non-zero when unsuppressed findings at or "
                        "above this severity exist")
    p.add_argument("--select", action="append", metavar="RULE",
                   help="run only these rules (code, slug or category; "
                        "repeatable)")
    p.add_argument("--disable", action="append", metavar="RULE",
                   help="skip these rules (code, slug or category; "
                        "repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the DSA rule catalogue and exit")
    p.add_argument("--lock-graph", action="store_true",
                   help="emit the lock-acquisition graph instead of "
                        "findings; exits non-zero when the graph has a "
                        "cycle (an ABBA deadlock)")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("verify",
                       help="semantic verification of a layer "
                            "(dead branches, unsat cores, strata)",
                       parents=[output_parent])
    add_layer_args(p)
    p.add_argument("--start", default=None, metavar="CDO",
                   help="restrict the analysis to this CDO's subtree "
                        "(default: the whole layer)")
    p.add_argument("--require", action="append", metavar="NAME=VALUE",
                   help="requirement value to verify against "
                        "(repeatable)")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (legacy spelling of --json)")
    p.add_argument("--fail-on", default="error",
                   choices=("error", "warning", "info"),
                   help="exit non-zero when findings at or above this "
                        "severity exist")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("trace", help="summarize, render or replay a "
                                     "recorded exploration trace",
                       parents=[output_parent])
    add_layer_args(p)
    p.add_argument("trace_file", metavar="FILE",
                   help="JSONL trace recorded by 'explore --trace' or "
                        "the shell's 'trace save'")
    p.add_argument("--timeline", action="store_true",
                   help="render the nested event timeline instead of "
                        "the summary")
    p.add_argument("--replay", action="store_true",
                   help="re-apply the trace against the bundled layer "
                        "and verify surviving-core digests (exit 1 on "
                        "divergence)")
    p.add_argument("--session", type=int, default=None,
                   help="session id to replay when the trace holds "
                        "several")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("profile", help="span profile of a recorded "
                                       "trace: hot sites and flame tree",
                       parents=[output_parent])
    p.add_argument("trace_file", metavar="FILE",
                   help="JSONL trace recorded by 'explore --trace' or "
                        "the shell's 'trace save'")
    p.add_argument("--top", type=int, default=20,
                   help="site rows in the table (and in --json output)")
    p.add_argument("--flame", action="store_true",
                   help="render only the flame tree")
    p.add_argument("--max-depth", type=int, default=None, metavar="N",
                   help="truncate the flame tree below N levels")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("stats", help="metrics from a traced scripted "
                                     "exploration",
                       parents=[output_parent])
    add_layer_args(p)
    add_session_args(p)
    p.add_argument("--prometheus", action="store_true",
                   help="Prometheus text exposition format instead of "
                        "the human-readable table")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("export", help="serialize a layer to JSON")
    add_layer_args(p)
    p.add_argument("--compact", action="store_true")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("serve",
                       help="long-lived HTTP/JSON server multiplexing "
                            "concurrent exploration sessions")
    add_layer_args(p)
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker threads of the shared explore pool "
                        "(1 = serial explores)")
    p.add_argument("--json-logs", action="store_true",
                   help="structured JSON access logs on stderr")
    p.add_argument("--session-ttl", type=float, default=900.0,
                   metavar="SECONDS",
                   help="idle lifetime before a session is evicted")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("shell", help="interactive exploration shell")
    add_layer_args(p)
    p.add_argument("--start", default="OMM",
                   help="CDO (or alias) the session starts at")
    p.set_defaults(fn=cmd_shell)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
