"""repro — a reproduction of "The Design Space Layer: Supporting Early
Design Space Exploration for Core-Based Designs" (Peixoto, Jacome, Royo,
Lopez — DATE 1999).

Packages
--------
``repro.core``
    The design space layer itself: classes of design objects, design
    issues, consistency constraints, exploration sessions, reuse-library
    indexing, evaluation-space analytics.
``repro.behavior``
    A small behavioral IR standing in for HDL descriptions, with
    dataflow analysis and the ``oper(...)`` path selector.
``repro.estimation``
    Early estimation tools (delay/area/power) invoked through
    consistency constraints.
``repro.hw``
    The hardware substrate: technology models, adder/multiplier
    generators, sliced Montgomery/Brickell datapaths and an analytical
    "synthesis" flow replacing the paper's commercial CAD tools.
``repro.sw``
    The software substrate: word-level Montgomery variants and a
    Pentium-60-class CPU cost model replacing the paper's measured
    routines.
``repro.arith``
    Integer-level reference algorithms (modular multiplication and
    exponentiation, RSA) used as correctness oracles and application
    drivers.
``repro.domains``
    Fully instantiated design space layers: the cryptography case study
    of Sec 5 and the IDCT example of Sec 2.
``repro.data``
    Reference numbers transcribed from the paper for shape comparison.
"""

__version__ = "1.0.0"

from repro.core import (  # noqa: F401
    ClassOfDesignObjects,
    ConsistencyConstraint,
    DesignIssue,
    DesignObject,
    DesignSpaceLayer,
    EvaluationSpace,
    ExplorationSession,
    Requirement,
    ReuseLibrary,
)
