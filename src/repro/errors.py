"""Exception hierarchy for the design space layer.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers embedding the layer in a larger CAD environment can catch one base
class.  The sub-classes mirror the paper's vocabulary: properties, classes
of design objects (CDOs), consistency constraints, exploration sessions and
reuse libraries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DomainError(ReproError):
    """A value falls outside a property's set of values."""


class PropertyError(ReproError):
    """A property is ill-defined, duplicated or unknown."""


class HierarchyError(ReproError):
    """An invalid CDO hierarchy operation (cycles, duplicate children,
    more than one generalized design issue on a class, ...)."""


class PathError(ReproError):
    """A property path (e.g. ``Radix@*.Hardware.Montgomery``) failed to
    parse or to resolve against a layer."""


class ConstraintError(ReproError):
    """A consistency constraint is ill-formed or cannot be evaluated."""


class ConstraintViolation(ReproError):
    """An exploration decision violates a consistency constraint.

    Carries the violated constraint and a human-readable explanation so
    that interactive front-ends can show *why* a decision was rejected.
    """

    def __init__(self, constraint_name: str, explanation: str):
        self.constraint_name = constraint_name
        self.explanation = explanation
        super().__init__(f"constraint {constraint_name!r} violated: {explanation}")


class SessionError(ReproError):
    """An invalid exploration-session operation (deciding an issue whose
    independents are unresolved, undoing an empty history, ...)."""


class LibraryError(ReproError):
    """A reuse-library operation failed (duplicate core names, indexing a
    core under an unknown CDO, ...)."""


class ObservabilityError(ReproError):
    """A trace file is malformed or an observability operation failed."""


class ReplayError(ObservabilityError):
    """A recorded trace cannot be replayed against the given layer
    (no session_open event, unknown event kinds, ...)."""


class LintError(ReproError):
    """The static-analysis pass found error-severity diagnostics (strict
    mode), or the linter itself was misconfigured.

    When raised by strict linting, ``report`` carries the full
    :class:`~repro.core.lint.diagnostics.LintReport` so callers can show
    every finding, not just the first.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class AnalysisError(ReproError):
    """The concurrency/invariant analyzer over the repo's own source was
    misconfigured (unknown rule, unreadable path, bad suppression)."""


class SanitizerError(ReproError):
    """The runtime mutation sanitizer (``DSL_SANITIZE=1``) caught a
    mutation of a sealed, hydrated layer — worker-side code tried to
    change representation state that is shared across tasks."""


class ExplorationError(ReproError):
    """An automated exploration run was misconfigured (unknown strategy,
    missing layer factory for process-backed parallelism, ...)."""


class EstimationError(ReproError):
    """An early-estimation tool was invoked outside its utilization
    context or on an unsupported description."""


class SynthesisError(ReproError):
    """The hardware substrate could not build or evaluate a datapath."""
