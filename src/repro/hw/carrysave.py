"""Carry-save (redundant) arithmetic.

The paper's best modular multipliers keep the running residue in
carry-save form (sum word + carry word) so that each loop iteration is a
constant-delay 3:2 compression instead of a full carry propagation —
that is the whole point of CC4 ("only Carry-Save Adders should be used
for implementing the additions in the loop").  This module implements
that representation functionally so the cycle-accurate simulators in
:mod:`repro.hw.montgomery_hw` and :mod:`repro.hw.brickell_hw` route
their datapath additions through real redundant arithmetic.

The invariant throughout: ``value == sum_word + carry_word``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import SynthesisError


def compress32(sum_word: int, carry_word: int, addend: int
               ) -> Tuple[int, int]:
    """One 3:2 compressor row over arbitrary-width integers.

    Bitwise: ``s' = a ^ b ^ c``, ``c' = majority(a, b, c) << 1``.
    Preserves the total: ``s' + c' == a + b + c`` (for non-negative
    inputs).
    """
    if sum_word < 0 or carry_word < 0 or addend < 0:
        raise SynthesisError("carry-save compression needs non-negative words")
    new_sum = sum_word ^ carry_word ^ addend
    new_carry = ((sum_word & carry_word) | (sum_word & addend)
                 | (carry_word & addend)) << 1
    return new_sum, new_carry


@dataclass
class CarrySaveAccumulator:
    """A residue held in redundant form.

    ``compressions`` counts 3:2 rows exercised; the simulators use it to
    cross-check their cycle models against the functional activity.
    """

    sum_word: int = 0
    carry_word: int = 0
    compressions: int = 0

    @property
    def value(self) -> int:
        return self.sum_word + self.carry_word

    def add(self, addend: int) -> None:
        """Absorb an addend with one 3:2 compression."""
        if addend < 0:
            raise SynthesisError("carry-save accumulator is unsigned")
        self.sum_word, self.carry_word = compress32(
            self.sum_word, self.carry_word, addend)
        self.compressions += 1

    def shift_right(self, bits: int) -> None:
        """Divide the residue by ``2**bits``.

        The Montgomery update divides an exactly-divisible total; a pure
        per-word shift would lose carries straddling the cut, so the
        words are resolved across the low ``bits`` before shifting — in
        hardware this is the small ripple across the slice boundary.
        """
        if bits < 0:
            raise SynthesisError(f"negative shift {bits}")
        mask = (1 << bits) - 1
        low_total = (self.sum_word & mask) + (self.carry_word & mask)
        if low_total & mask:
            raise SynthesisError(
                f"shift_right({bits}) would truncate a non-zero residue "
                f"({low_total & mask})")
        self.sum_word = (self.sum_word >> bits) + (low_total >> bits)
        self.carry_word >>= bits

    def low_bits(self, bits: int) -> int:
        """Exact low ``bits`` of the represented value (the quotient
        logic resolves only this narrow window, which is why it stays
        off the critical carry path)."""
        mask = (1 << bits) - 1
        return ((self.sum_word & mask) + (self.carry_word & mask)) & mask

    def resolve(self) -> int:
        """Final carry-propagate conversion to non-redundant form.

        Models the end-of-operation CPA pass the CSA designs pay for in
        their latency (the extra conversion cycles of Table 1's #2/#4/#5
        rows); returns the value and collapses the carry word.
        """
        total = self.value
        self.sum_word = total
        self.carry_word = 0
        return total
