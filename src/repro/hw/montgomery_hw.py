"""Cycle-accurate functional simulation of the Montgomery datapaths.

The analytical model in :mod:`repro.hw.datapath` predicts cycles; this
module *executes* the digit-serial Montgomery recurrence the way the
sliced hardware does — one radix-``r`` digit per iteration, the residue
held in carry-save form for CSA designs — and counts the cycles it
actually spends.  Tests assert both that the arithmetic is correct
(against plain integers) and that the counted cycles equal the
analytical model, which is what licenses using the fast model in the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.hw.adders import CSA
from repro.hw.carrysave import CarrySaveAccumulator
from repro.hw.datapath import MONTGOMERY, DatapathSpec
from repro.hw.multipliers import digit_product


@dataclass
class SimulationResult:
    """Outcome of one simulated modular multiplication."""

    result: int
    cycles: int
    iterations: int
    compressions: int

    def latency_ns(self, clock_ns: float) -> float:
        return self.cycles * clock_ns


class MontgomeryMultiplierHW:
    """A sliced hardware Montgomery multiplier.

    Computes ``A * B * r^(-(digits+1)) mod M`` for ``0 <= A, B < M`` and
    odd ``M < r^digits``, where ``digits = ceil(EOL / log2(r))`` and
    ``EOL = slice_width * num_slices``.  The ``+1`` is Fig 10's guard
    iteration (``FOR i=1 TO n+1``), which keeps the residue below ``2M``
    so one conditional subtraction suffices.
    """

    def __init__(self, spec: DatapathSpec):
        if spec.algorithm != MONTGOMERY:
            raise SynthesisError(
                f"spec is for {spec.algorithm}, not Montgomery")
        self.spec = spec

    @property
    def eol(self) -> int:
        return self.spec.operand_width

    @property
    def digits(self) -> int:
        return -(-self.eol // self.spec.digit_bits)

    def montgomery_factor(self, modulus: int) -> int:
        """``r^(digits+1) mod M`` — the domain factor this datapath
        divides out per pass (guard iteration included)."""
        return pow(self.spec.radix, self.digits + 1, modulus)

    def simulate(self, a: int, b: int, modulus: int) -> SimulationResult:
        """Run one multiplication and count cycles.

        Cycle accounting mirrors the datapath model: one cycle per digit
        iteration plus one extra guard iteration, ``num_slices - 1``
        skew cycles for the carry staging between slices, and two
        carry-resolve cycles for CSA designs.
        """
        self._check_operands(a, b, modulus)
        r = self.spec.radix
        minv = pow(r - modulus % r, -1, r)  # (-M)^-1 mod r, as in Fig 10
        use_csa = self.spec.adder_style == CSA
        acc = CarrySaveAccumulator()
        cycles = 0
        iterations = self.digits + 1  # guard iteration keeps R < 2M
        for i in range(iterations):
            ai = (a // r ** i) % r if i < self.digits else 0
            partial = digit_product(ai, b, r)
            if use_csa:
                acc.add(partial)
                low = acc.low_bits(self.spec.digit_bits)
            else:
                acc.sum_word = acc.value + partial
                acc.carry_word = 0
                low = acc.sum_word % r
            q = (low * minv) % r
            if use_csa:
                acc.add(digit_product(q, modulus, r))
            else:
                acc.sum_word += digit_product(q, modulus, r)
            acc.shift_right(self.spec.digit_bits)
            cycles += 1
        cycles += self.spec.num_slices - 1
        if use_csa:
            cycles += 2
        result = acc.resolve()
        if result >= modulus:
            result -= modulus  # final conditional subtraction (Fig 10 l.5-6)
        return SimulationResult(result, cycles, iterations, acc.compressions)

    def multiply_mod(self, a: int, b: int, modulus: int) -> SimulationResult:
        """Plain ``A * B mod M`` via domain conversion round trips.

        Three Montgomery passes (A -> A*r^n, times B, result already
        plain); used by tests to check end-to-end correctness without
        callers handling Montgomery form.
        """
        factor_sq = pow(self.montgomery_factor(modulus), 2, modulus)
        step1 = self.simulate(a, factor_sq % modulus, modulus)
        step2 = self.simulate(step1.result, b, modulus)
        return SimulationResult(step2.result,
                                step1.cycles + step2.cycles,
                                step1.iterations + step2.iterations,
                                step1.compressions + step2.compressions)

    def _check_operands(self, a: int, b: int, modulus: int) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise SynthesisError(
                f"Montgomery needs an odd modulus >= 3, got {modulus}")
        if modulus.bit_length() > self.eol:
            raise SynthesisError(
                f"modulus needs {modulus.bit_length()} bits, datapath "
                f"covers {self.eol}")
        if not (0 <= a < modulus and 0 <= b < modulus):
            raise SynthesisError("operands must satisfy 0 <= A, B < M")
