"""Technology library abstraction.

The paper's Table 1 designs were synthesized with the Synopsys Design
Compiler onto the LSI 0.35u G10 standard-cell library; the IDCT
discussion contrasts 0.35u and 0.7u libraries.  Having no commercial
flow, we model a technology as four calibrated constants:

* ``gate_delay_ns`` — delay of one unit gate level (2-input NAND class);
* ``ff_overhead_ns`` — register clock-to-Q plus setup, charged once per
  clock period;
* ``wire_ns_per_bit`` — broadcast/wire penalty linear in datapath width
  (the digit of A fans out across the whole slice);
* ``area_unit`` — library area units per gate equivalent, so modelled
  areas land in the same magnitude as Table 1's numbers.

The 0.35u constants were calibrated against the legible cells of
Table 1 (see ``repro.data.paper_table1``); 0.7u is a straight 2x
linear-shrink scaling (2x delay, ~3.4x area per function is observed in
practice between these nodes — we keep 2x delay / 4x area, the classical
constant-field values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SynthesisError


@dataclass(frozen=True)
class TechnologyLibrary:
    """Calibrated constants of one standard-cell library."""

    name: str
    feature_um: float
    gate_delay_ns: float
    ff_overhead_ns: float
    wire_ns_per_bit: float
    area_unit: float
    #: mW per (gate equivalent x MHz) at typical activity, for the power
    #: extension figures of merit.
    power_coeff_mw: float

    def clock_ns(self, levels: float, width_bits: int) -> float:
        """Clock period for a path of ``levels`` unit gates across a
        ``width_bits``-wide datapath."""
        if levels < 0 or width_bits < 1:
            raise SynthesisError(
                f"bad path: levels={levels}, width={width_bits}")
        return (self.ff_overhead_ns + levels * self.gate_delay_ns
                + width_bits * self.wire_ns_per_bit)

    def area(self, gates: float) -> float:
        """Library area units for a gate-equivalent count."""
        if gates < 0:
            raise SynthesisError(f"negative gate count {gates}")
        return gates * self.area_unit

    def power_mw(self, gates: float, clock_ns: float,
                 activity: float = 0.25) -> float:
        """Average dynamic power estimate for the modelled datapath."""
        if clock_ns <= 0:
            raise SynthesisError(f"non-positive clock {clock_ns}")
        freq_mhz = 1000.0 / clock_ns
        return self.power_coeff_mw * gates * freq_mhz * activity


#: LSI G10-class 0.35u standard cells (calibrated to Table 1 anchors).
TECH_035 = TechnologyLibrary(
    name="0.35u",
    feature_um=0.35,
    gate_delay_ns=0.22,
    ff_overhead_ns=1.00,
    wire_ns_per_bit=0.005,
    area_unit=11.7,
    power_coeff_mw=4.0e-5,
)

#: A 0.7u library, constant-field scaled from the 0.35u constants.
TECH_07 = TechnologyLibrary(
    name="0.7u",
    feature_um=0.7,
    gate_delay_ns=0.44,
    ff_overhead_ns=2.00,
    wire_ns_per_bit=0.010,
    area_unit=46.8,
    power_coeff_mw=3.2e-4,
)

#: An intermediate 0.5u node, for richer fabrication-technology sweeps.
TECH_05 = TechnologyLibrary(
    name="0.5u",
    feature_um=0.5,
    gate_delay_ns=0.31,
    ff_overhead_ns=1.43,
    wire_ns_per_bit=0.007,
    area_unit=23.9,
    power_coeff_mw=1.1e-4,
)

_REGISTRY: Dict[str, TechnologyLibrary] = {
    tech.name: tech for tech in (TECH_035, TECH_05, TECH_07)
}


def technology(name: str) -> TechnologyLibrary:
    """Look a technology up by its design-issue option name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SynthesisError(
            f"unknown technology {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def technologies() -> Dict[str, TechnologyLibrary]:
    return dict(_REGISTRY)
