"""Structural netlist elaboration for the modular-multiplier slices.

Fig 2(b) of the paper shows each core's design data partitioned into
views — algorithm, RT, logic, physical.  Our cores carry executable
algorithm views (behaviors) and RT views (the synthesized design); this
module supplies the *logic* view: a structural netlist of component
instances and nets elaborated from a :class:`~repro.hw.datapath.DatapathSpec`,
cross-checked against the analytical area model and emitted as a
readable structural-HDL-style text.

The netlist is schematic-level (registers, compressor rows, look-ahead
blocks, multiplexer trees, product planes, control), not gate-level —
the granularity at which the paper's design issues act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SynthesisError
from repro.hw.adders import CLA, CSA, RIPPLE, adder_cost
from repro.hw.datapath import BRICKELL, DatapathSpec
from repro.hw.multipliers import MUL, MUX, NONE, multiplier_cost


@dataclass(frozen=True)
class Component:
    """One instantiated block in the netlist."""

    instance: str
    kind: str
    width_bits: int
    area_gates: float
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]

    def render(self) -> str:
        ins = ", ".join(self.inputs)
        outs = ", ".join(self.outputs)
        return (f"{self.kind} #(.WIDTH({self.width_bits})) {self.instance} "
                f"(.in({{{ins}}}), .out({{{outs}}}));")


@dataclass
class Netlist:
    """A structural netlist: components plus named nets."""

    name: str
    spec: DatapathSpec
    components: List[Component] = field(default_factory=list)
    nets: List[str] = field(default_factory=list)

    def add(self, component: Component) -> None:
        self.components.append(component)
        for net in component.outputs:
            if net not in self.nets:
                self.nets.append(net)

    def count(self, kind: str) -> int:
        return sum(1 for c in self.components if c.kind == kind)

    def area_gates(self) -> float:
        return sum(c.area_gates for c in self.components)

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for component in self.components:
            out[component.kind] = out.get(component.kind, 0) + 1
        return out

    def to_structural_text(self) -> str:
        """Readable structural-HDL-style rendition of the netlist."""
        lines = [f"module {self.name};  "
                 f"// {self.spec.algorithm} radix-{self.spec.radix}, "
                 f"{self.spec.num_slices}x{self.spec.slice_width}b, "
                 f"{self.spec.adder_style}/{self.spec.multiplier_style}"]
        for net in self.nets:
            lines.append(f"  wire {net};")
        for component in self.components:
            lines.append(f"  {component.render()}")
        lines.append("endmodule")
        return "\n".join(lines)


def _slice_components(spec: DatapathSpec, slice_index: int
                      ) -> List[Component]:
    """The component population of one slice, mirroring the area model
    in :meth:`DatapathSpec._slice_gates` block by block."""
    w = spec.slice_width
    s = f"s{slice_index}"
    components: List[Component] = []

    def reg(name: str) -> Component:
        return Component(f"{s}_{name}", "register", w, 4.0 * w,
                         (f"{s}_{name}_d",), (f"{s}_{name}_q",))

    components.append(reg("B"))
    components.append(reg("M"))
    components.append(reg("R_sum"))
    if spec.adder_style == CSA:
        components.append(reg("R_carry"))
        for row in (0, 1):
            components.append(Component(
                f"{s}_csa{row}", "csa_row", w,
                adder_cost(CSA, w).area_gates,
                (f"{s}_csa{row}_a", f"{s}_csa{row}_b", f"{s}_csa{row}_c"),
                (f"{s}_csa{row}_s", f"{s}_csa{row}_cy")))
        components.append(Component(
            f"{s}_conv", "carry_resolve_cpa", w, 10.0 * w,
            (f"{s}_conv_s", f"{s}_conv_c"), (f"{s}_conv_out",)))
        components.append(Component(
            f"{s}_qres", "quotient_resolver", spec.digit_bits, 2.0 * w,
            (f"{s}_qres_in",), (f"{s}_qres_q",)))
    else:
        components.append(Component(
            f"{s}_csa0", "csa_row", w, adder_cost(CSA, w).area_gates,
            (f"{s}_csa0_a", f"{s}_csa0_b", f"{s}_csa0_c"),
            (f"{s}_csa0_s", f"{s}_csa0_cy")))
        kind = "cla_adder" if spec.adder_style == CLA else "ripple_adder"
        components.append(Component(
            f"{s}_cpa", kind, w,
            adder_cost(spec.adder_style, w).area_gates,
            (f"{s}_cpa_a", f"{s}_cpa_b"), (f"{s}_cpa_sum",)))
    mult_kind = {MUL: "array_multiplier", MUX: "mux_multiplier",
                 NONE: "and_plane"}[spec.multiplier_style]
    mult_area = multiplier_cost(spec.multiplier_style, spec.radix,
                                w).area_gates
    for port, source in (("ab", "A_digit"), ("qm", "Q_digit")):
        components.append(Component(
            f"{s}_mult_{port}", mult_kind, w, mult_area,
            (f"{s}_{source}", f"{s}_mult_{port}_op"),
            (f"{s}_mult_{port}_p",)))
    mux_gates = {CSA: 6.0, CLA: 4.0, RIPPLE: 4.0}[spec.adder_style]
    components.append(Component(
        f"{s}_steer", "steering_mux", w, mux_gates * w,
        (f"{s}_steer_a", f"{s}_steer_b"), (f"{s}_steer_y",)))
    components.append(Component(
        f"{s}_io", "io_shift", w, 6.0 * w,
        (f"{s}_io_in",), (f"{s}_io_out",)))
    if spec.algorithm == BRICKELL:
        gates = (16.0 if spec.adder_style == CSA else 6.0) * w + 150.0
        components.append(Component(
            f"{s}_reduce", "reduction_network", w, gates,
            (f"{s}_reduce_r", f"{s}_reduce_m"), (f"{s}_reduce_out",)))
    components.append(Component(
        f"{s}_ctl", "slice_control", 1, 60.0,
        (f"{s}_ctl_state",), (f"{s}_ctl_en",)))
    return components


def elaborate(spec: DatapathSpec, name: str = "") -> Netlist:
    """Elaborate the structural netlist of a sliced datapath."""
    netlist = Netlist(name or f"mm_{spec.label()}".replace("#", "d"),
                      spec)
    for index in range(spec.num_slices):
        for component in _slice_components(spec, index):
            netlist.add(component)
    netlist.add(Component(
        "top_ctl", "design_control", 1, 150.0,
        ("clk", "rst"), ("top_state",)))
    return netlist


def check_against_model(netlist: Netlist,
                        tolerance: float = 1e-6) -> None:
    """Cross-validate the structural view against the analytical model.

    The netlist's summed component areas must equal the datapath
    model's gate count — the two are independent encodings of the same
    microarchitecture, so any drift is a bug.
    """
    structural = netlist.area_gates()
    analytical = netlist.spec.gates()
    if analytical <= 0:
        raise SynthesisError("analytical model reports no gates")
    relative = abs(structural - analytical) / analytical
    if relative > tolerance:
        raise SynthesisError(
            f"structural view ({structural:.0f} gates) diverges from "
            f"the analytical model ({analytical:.0f} gates) by "
            f"{relative:.2%}")
