"""The "synthesis flow": design points -> characterized hardware designs.

This module replaces the paper's Synopsys Design Compiler + LSI physical
tools: given a :class:`~repro.hw.datapath.DatapathSpec` and a target
operand length, it produces a fully characterized
:class:`HardwareDesign` (area, clock, cycles, latency, power) using the
calibrated analytical models, with the functional simulators available
for verification.

It also carries the catalog of Table 1's eight design recipes (#1-#8),
so every benchmark and the crypto layer instantiate exactly the same
design points the paper evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.hw.adders import CLA, CSA
from repro.hw.brickell_hw import BrickellMultiplierHW
from repro.hw.datapath import (
    BRICKELL,
    MONTGOMERY,
    DatapathSpec,
    spec_for_eol,
)
from repro.hw.montgomery_hw import MontgomeryMultiplierHW
from repro.hw.multipliers import MUL, MUX, NONE

#: Table 1's design recipes: number -> (radix, algorithm, adder, multiplier).
TABLE1_RECIPES: Dict[int, Tuple[int, str, str, str]] = {
    1: (2, MONTGOMERY, CLA, NONE),
    2: (2, MONTGOMERY, CSA, NONE),
    3: (4, MONTGOMERY, CLA, MUL),
    4: (4, MONTGOMERY, CSA, MUL),
    5: (4, MONTGOMERY, CSA, MUX),
    6: (4, MONTGOMERY, CLA, MUX),
    7: (2, BRICKELL, CLA, NONE),
    8: (2, BRICKELL, CSA, NONE),
}

#: Slice widths of Table 1's columns.
TABLE1_SLICE_WIDTHS = (8, 16, 32, 64, 128)


def table1_spec(design_number: int, slice_width: int, num_slices: int = 1,
                technology_name: str = "0.35u") -> DatapathSpec:
    """The spec of one Table 1 design at a given slice width."""
    try:
        radix, algorithm, adder, multiplier = TABLE1_RECIPES[design_number]
    except KeyError:
        raise SynthesisError(
            f"Table 1 has designs 1..8, got {design_number}") from None
    return DatapathSpec(algorithm=algorithm, radix=radix, adder_style=adder,
                        multiplier_style=multiplier, slice_width=slice_width,
                        num_slices=num_slices,
                        technology_name=technology_name)


@dataclass(frozen=True)
class HardwareDesign:
    """One synthesized modular-multiplier core.

    ``name`` follows the paper's labels: ``#2_64`` is design recipe #2
    built from 64-bit slices; the slice count is implied by the EOL.
    """

    name: str
    spec: DatapathSpec
    eol: int
    area: float
    clock_ns: float
    cycles: int
    latency_ns: float
    power_mw: float
    design_number: Optional[int] = None

    @property
    def latency_us(self) -> float:
        return self.latency_ns / 1000.0

    def simulator(self):
        """A functional simulator matching this design."""
        if self.spec.algorithm == MONTGOMERY:
            return MontgomeryMultiplierHW(self.spec)
        return BrickellMultiplierHW(self.spec)

    def describe(self) -> str:
        return (f"{self.name}: {self.spec.algorithm} radix-{self.spec.radix} "
                f"{self.spec.adder_style}/{self.spec.multiplier_style}, "
                f"{self.spec.num_slices}x{self.spec.slice_width}b slices, "
                f"{self.spec.technology_name}: area {self.area:.0f}, "
                f"clk {self.clock_ns:.2f} ns, {self.cycles} cycles, "
                f"latency {self.latency_ns:.0f} ns")


def synthesize(spec: DatapathSpec, eol: Optional[int] = None,
               name: Optional[str] = None,
               design_number: Optional[int] = None) -> HardwareDesign:
    """Characterize a datapath for operands of ``eol`` bits.

    When ``eol`` exceeds the spec's coverage, the design is re-sliced
    (same slice width, more slices), mirroring how the paper builds
    wide multipliers from fixed slices.
    """
    eol = eol if eol is not None else spec.operand_width
    if eol != spec.operand_width:
        spec = spec_for_eol(DatapathSpec(
            algorithm=spec.algorithm, radix=spec.radix,
            adder_style=spec.adder_style,
            multiplier_style=spec.multiplier_style,
            slice_width=spec.slice_width, num_slices=1,
            technology_name=spec.technology_name), eol)
    clock = spec.clock_ns()
    cycles = spec.cycles(eol)
    label = name if name is not None else spec.label()
    return HardwareDesign(
        name=label,
        spec=spec,
        eol=eol,
        area=spec.area(),
        clock_ns=clock,
        cycles=cycles,
        latency_ns=cycles * clock,
        power_mw=spec.power_mw(),
        design_number=design_number,
    )


def synthesize_table1_cell(design_number: int, slice_width: int,
                           technology_name: str = "0.35u") -> HardwareDesign:
    """One cell of Table 1: latency computed for EOL = slice width
    (the table's own convention, see its footnote b)."""
    spec = table1_spec(design_number, slice_width,
                       technology_name=technology_name)
    return synthesize(spec, eol=slice_width,
                      name=f"#{design_number}_{slice_width}",
                      design_number=design_number)


def synthesize_sliced(design_number: int, slice_width: int, eol: int,
                      technology_name: str = "0.35u") -> HardwareDesign:
    """A Table 1 recipe re-sliced for a wide operand (Fig 9 / Fig 6
    style: ``#2_64`` at EOL 768 uses twelve 64-bit slices)."""
    if eol % slice_width:
        raise SynthesisError(
            f"EOL {eol} is not a multiple of slice width {slice_width}")
    spec = table1_spec(design_number, slice_width, eol // slice_width,
                       technology_name)
    return synthesize(spec, eol=eol,
                      name=f"#{design_number}_{slice_width}",
                      design_number=design_number)


def table1_grid(technology_name: str = "0.35u") -> List[HardwareDesign]:
    """All 8 x 5 cells of Table 1."""
    return [synthesize_table1_cell(number, width, technology_name)
            for number in sorted(TABLE1_RECIPES)
            for width in TABLE1_SLICE_WIDTHS]
