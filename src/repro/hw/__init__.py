"""Hardware substrate: technology models, component generators, sliced
modular-multiplier datapaths and the analytical synthesis flow."""

from repro.hw.adders import (
    ADDER_STYLES,
    CLA,
    CSA,
    RIPPLE,
    AdderCost,
    adder_cost,
    cla_add,
    cla_cost,
    csa_cost,
    ripple_add,
    ripple_cost,
)
from repro.hw.brickell_hw import BrickellMultiplierHW
from repro.hw.carrysave import CarrySaveAccumulator, compress32
from repro.hw.datapath import (
    ALGORITHMS,
    BRICKELL,
    MONTGOMERY,
    DatapathSpec,
    spec_for_eol,
)
from repro.hw.exponentiator_hw import (
    BINARY_SCHEDULE,
    MARY_SCHEDULE,
    SCHEDULES,
    ExponentiationRun,
    ExponentiatorHW,
    ExponentiatorSpec,
    synthesize_exponentiator,
)
from repro.hw.floorplan import (
    Floorplan,
    LayoutParams,
    floorplan,
    gate_area_um2,
    layout_params,
    layout_styles,
    styled_area,
    styled_clock_ns,
)
from repro.hw.montgomery_hw import MontgomeryMultiplierHW, SimulationResult
from repro.hw.netlist import (
    Component,
    Netlist,
    check_against_model,
    elaborate,
)
from repro.hw.multipliers import (
    MULTIPLIER_STYLES,
    MUL,
    MUX,
    NONE,
    MultiplierCost,
    array_multiplier_cost,
    digit_product,
    multiplier_cost,
    mux_multiplier_cost,
)
from repro.hw.synthesis import (
    TABLE1_RECIPES,
    TABLE1_SLICE_WIDTHS,
    HardwareDesign,
    synthesize,
    synthesize_sliced,
    synthesize_table1_cell,
    table1_grid,
    table1_spec,
)
from repro.hw.tech import (
    TECH_035,
    TECH_05,
    TECH_07,
    TechnologyLibrary,
    technologies,
    technology,
)

__all__ = [
    "ADDER_STYLES", "CLA", "CSA", "RIPPLE", "AdderCost", "adder_cost",
    "cla_add", "cla_cost", "csa_cost", "ripple_add", "ripple_cost",
    "CarrySaveAccumulator", "compress32",
    "ALGORITHMS", "BRICKELL", "MONTGOMERY", "DatapathSpec", "spec_for_eol",
    "MontgomeryMultiplierHW", "BrickellMultiplierHW", "SimulationResult",
    "MULTIPLIER_STYLES", "MUL", "MUX", "NONE", "MultiplierCost",
    "array_multiplier_cost", "digit_product", "multiplier_cost",
    "mux_multiplier_cost",
    "TABLE1_RECIPES", "TABLE1_SLICE_WIDTHS", "HardwareDesign", "synthesize",
    "synthesize_sliced", "synthesize_table1_cell", "table1_grid",
    "table1_spec",
    "TECH_035", "TECH_05", "TECH_07", "TechnologyLibrary", "technologies",
    "technology",
    "BINARY_SCHEDULE", "MARY_SCHEDULE", "SCHEDULES", "ExponentiationRun",
    "ExponentiatorHW", "ExponentiatorSpec", "synthesize_exponentiator",
    "Component", "Netlist", "check_against_model", "elaborate",
    "Floorplan", "LayoutParams", "floorplan", "gate_area_um2",
    "layout_params", "layout_styles", "styled_area", "styled_clock_ns",
]
