"""Physical-view estimation: floorplans and layout-style effects.

The crypto layer's DI5 ("Layout Style") discriminates "the 'real'
design options collapsed into the generalized 'hardware' category" —
which only means something if layout styles actually change the
numbers.  This module supplies that:

* per-style physical parameters (placement utilization, delay derate)
  for standard-cell, gate-array and full-custom implementations;
* a standard-cell-style floorplan estimate (die dimensions, row count)
  from a design's gate count — the core's *physical* view (Fig 2(b));
* style-adjusted area/clock figures so the layer can index gate-array
  variants whose trade-offs are visible in the evaluation space.

Standard cell is the neutral reference (derates 1.0), so the Table 1
calibration is untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import SynthesisError
from repro.hw.tech import TechnologyLibrary

STANDARD_CELL = "Standard-Cell"
GATE_ARRAY = "Gate-Array"
FULL_CUSTOM = "Full-Custom"


@dataclass(frozen=True)
class LayoutParams:
    """Physical characteristics of one layout style."""

    style: str
    #: Fraction of placed area that is active cells (rest is routing).
    utilization: float
    #: Multiplier on the achievable clock period.
    delay_derate: float
    #: Multiplier on engineering effort (documentation only).
    effort_factor: float


_PARAMS: Dict[str, LayoutParams] = {
    # Prediffused gate arrays waste area in unused sites and pay wire
    # detours; full custom packs tighter and runs faster at much higher
    # design effort.  Standard cell is the calibrated reference.
    STANDARD_CELL: LayoutParams(STANDARD_CELL, 0.85, 1.00, 1.0),
    GATE_ARRAY: LayoutParams(GATE_ARRAY, 0.60, 1.18, 0.5),
    FULL_CUSTOM: LayoutParams(FULL_CUSTOM, 0.95, 0.85, 4.0),
}


def layout_params(style: str) -> LayoutParams:
    try:
        return _PARAMS[style]
    except KeyError:
        raise SynthesisError(
            f"unknown layout style {style!r}; known: "
            f"{sorted(_PARAMS)}") from None


def layout_styles() -> Dict[str, LayoutParams]:
    return dict(_PARAMS)


#: Active area of one gate equivalent at the 0.35u node, in um^2.
_GATE_UM2_AT_035 = 54.0

#: Standard-cell row height in um, as a multiple of the feature size.
_ROW_HEIGHT_FEATURES = 12.0


def gate_area_um2(tech: TechnologyLibrary) -> float:
    """Active silicon of one gate equivalent at a technology node."""
    scale = tech.feature_um / 0.35
    return _GATE_UM2_AT_035 * scale * scale


@dataclass(frozen=True)
class Floorplan:
    """A row-based floorplan estimate (the physical view)."""

    style: str
    technology_name: str
    gates: float
    active_um2: float
    placed_um2: float
    rows: int
    die_width_um: float
    die_height_um: float

    @property
    def aspect_ratio(self) -> float:
        return self.die_width_um / self.die_height_um

    @property
    def utilization(self) -> float:
        return self.active_um2 / self.placed_um2

    def describe(self) -> str:
        return (f"{self.style} floorplan ({self.technology_name}): "
                f"{self.gates:.0f} gates in {self.rows} rows, "
                f"{self.die_width_um:.0f} x {self.die_height_um:.0f} um "
                f"({self.utilization:.0%} utilization)")


def floorplan(gates: float, tech: TechnologyLibrary,
              style: str = STANDARD_CELL,
              target_aspect: float = 1.0) -> Floorplan:
    """Estimate the die of a design with ``gates`` gate equivalents.

    Rows are sized so the die approaches ``target_aspect``
    (width/height); utilization comes from the layout style.
    """
    if gates <= 0:
        raise SynthesisError(f"gate count must be positive, got {gates}")
    if target_aspect <= 0:
        raise SynthesisError(
            f"aspect ratio must be positive, got {target_aspect}")
    params = layout_params(style)
    active = gates * gate_area_um2(tech)
    placed = active / params.utilization
    row_height = _ROW_HEIGHT_FEATURES * tech.feature_um
    # placed = rows * row_height * width; width / (rows * row_height)
    # = target_aspect  =>  rows = sqrt(placed / (target_aspect)) / rh
    rows = max(1, round(math.sqrt(placed / target_aspect) / row_height))
    width = placed / (rows * row_height)
    return Floorplan(style, tech.name, gates, active, placed, rows,
                     width, rows * row_height)


def styled_area(base_area: float, style: str) -> float:
    """Library-unit area adjusted for a layout style (standard cell is
    the reference the model was calibrated in)."""
    params = layout_params(style)
    reference = layout_params(STANDARD_CELL)
    return base_area * reference.utilization / params.utilization


def styled_clock_ns(base_clock_ns: float, style: str) -> float:
    """Clock period adjusted for a layout style."""
    return base_clock_ns * layout_params(style).delay_derate
