"""Digit-multiplier structures for high-radix modular multipliers.

A radix-``r`` modular multiplier forms ``digit * operand`` products
every iteration, where the digit has ``log2(r)`` bits.  Table 1 compares
two realizations:

* ``MUL`` — a small array multiplier: partial-product generation plus a
  carry-save reduction of the ``log2(r)`` rows (designs #3/#4);
* ``MUX`` — a multiplexer-based multiplier selecting among precomputed
  multiples ``{0, M, 2M, ..., (r-1)M}`` (designs #5/#6); faster, at the
  price of the precompute registers.

Radix-2 designs need neither (the "digit product" is an AND gate row),
which Table 1 writes as ``N/A``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SynthesisError

MUL = "Array-Multiplier"
MUX = "Multiplexer-Based"
NONE = "N/A"

MULTIPLIER_STYLES = (MUL, MUX, NONE)


@dataclass(frozen=True)
class MultiplierCost:
    style: str
    radix: int
    width_bits: int
    delay_levels: float
    area_gates: float


def _check(radix: int, width_bits: int) -> int:
    if width_bits < 1:
        raise SynthesisError(f"multiplier width must be >= 1, got {width_bits}")
    if radix < 2 or radix & (radix - 1):
        raise SynthesisError(f"radix must be a power of two >= 2, got {radix}")
    return int(math.log2(radix))


def array_multiplier_cost(radix: int, width_bits: int) -> MultiplierCost:
    """``log2(r)``-bit x ``w``-bit array multiplier.

    Partial product generation (1 level of ANDs) plus ``digit_bits - 1``
    carry-save rows and a level of product select, calibrated so that
    radix-4 MUL designs add ~6 levels over their radix-2 baseline
    (Table 1 #3 vs #1).
    """
    digit_bits = _check(radix, width_bits)
    if radix == 2:
        return MultiplierCost(MUL, radix, width_bits, 1.0, 1.0 * width_bits)
    levels = 1.0 + 2.0 * digit_bits + 1.0
    area = (2.0 * digit_bits * width_bits      # AND plane + pp select
            + (digit_bits - 1) * 7.0 * width_bits)  # CSA reduction rows
    return MultiplierCost(MUL, radix, width_bits, levels, area)


def mux_multiplier_cost(radix: int, width_bits: int) -> MultiplierCost:
    """Multiplexer tree over precomputed multiples.

    ``log2(r)`` levels of 2:1 muxes per bit; the precomputed odd
    multiples cost one register plus adder share each, charged as
    ``(r/2 - 1)`` extra word registers (even multiples are shifts).
    """
    digit_bits = _check(radix, width_bits)
    if radix == 2:
        return MultiplierCost(MUX, radix, width_bits, 1.0, 1.0 * width_bits)
    levels = float(digit_bits) + 1.0
    precompute_regs = max(0, radix // 2 - 1)
    area = ((radix - 1) * width_bits           # mux tree
            + precompute_regs * 4.0 * width_bits)
    return MultiplierCost(MUX, radix, width_bits, levels, area)


def none_multiplier_cost(radix: int, width_bits: int) -> MultiplierCost:
    """Radix-2 digit product: a row of AND gates."""
    _check(radix, width_bits)
    if radix != 2:
        raise SynthesisError(
            f"multiplier style {NONE!r} only applies to radix 2, got "
            f"radix {radix}")
    return MultiplierCost(NONE, radix, width_bits, 1.0, 1.0 * width_bits)


def multiplier_cost(style: str, radix: int, width_bits: int
                    ) -> MultiplierCost:
    if style == MUL:
        return array_multiplier_cost(radix, width_bits)
    if style == MUX:
        return mux_multiplier_cost(radix, width_bits)
    if style == NONE:
        return none_multiplier_cost(radix, width_bits)
    raise SynthesisError(
        f"unknown multiplier style {style!r}; known: {MULTIPLIER_STYLES}")


def digit_product(digit: int, operand: int, radix: int) -> int:
    """Functional model shared by the simulators: ``digit * operand``
    with the digit range-checked against the radix."""
    if not 0 <= digit < radix:
        raise SynthesisError(f"digit {digit} out of range for radix {radix}")
    if operand < 0:
        raise SynthesisError("operand must be non-negative")
    return digit * operand
