"""Cycle-accurate functional simulation of the Brickell datapaths.

Brickell's algorithm consumes the operand from the most significant
digit down and performs a ``mod M`` reduction at every partial product
(paper Sec 5.1.1), so it works for *any* modulus — that is exactly why
CC1 only forbids Montgomery when the modulus is not guaranteed odd.

The reduction step is simulated the way the hardware does it: a bounded
number of trial subtractions of ``k*M`` per iteration, never a full
division.  Reduction work beyond one subtraction per iteration is what
the datapath model's ten extra Brickell iterations amortize.
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.hw.adders import CSA
from repro.hw.carrysave import CarrySaveAccumulator
from repro.hw.datapath import BRICKELL, DatapathSpec
from repro.hw.montgomery_hw import SimulationResult
from repro.hw.multipliers import digit_product


class BrickellMultiplierHW:
    """A sliced hardware Brickell (MSB-first interleaved) multiplier.

    Computes plain ``A * B mod M`` for ``0 <= A, B < M``; no parity
    requirement on ``M``.
    """

    def __init__(self, spec: DatapathSpec):
        if spec.algorithm != BRICKELL:
            raise SynthesisError(
                f"spec is for {spec.algorithm}, not Brickell")
        self.spec = spec

    @property
    def eol(self) -> int:
        return self.spec.operand_width

    @property
    def digits(self) -> int:
        return -(-self.eol // self.spec.digit_bits)

    def simulate(self, a: int, b: int, modulus: int) -> SimulationResult:
        self._check_operands(a, b, modulus)
        r = self.spec.radix
        use_csa = self.spec.adder_style == CSA
        acc = CarrySaveAccumulator()
        cycles = 0
        reductions = 0
        for i in range(self.digits - 1, -1, -1):
            ai = (a // r ** i) % r
            # R := R*r + a_i*B  (shift is wiring; one compression for the
            # partial product).
            shifted = acc.value * r
            acc.sum_word, acc.carry_word = shifted, 0
            partial = digit_product(ai, b, r)
            if use_csa:
                acc.add(partial)
            else:
                acc.sum_word += partial
            cycles += 1
            # Per-step reduction: R < r*M + r*M before reduction; trial
            # subtractions bring it back under M.  Hardware does this
            # with a small multiple-select network, never a divider.
            value = acc.value
            k = value // modulus
            if k >= 2 * r + 1:
                raise SynthesisError(
                    "reduction bound exceeded — operand check failed")
            value -= k * modulus
            reductions += 1 if k else 0
            acc.sum_word, acc.carry_word = value, 0
        # The ten extra iterations of the cycle model cover the reduction
        # network's pipelining and the guard-digit handling.
        cycles += 10
        cycles += self.spec.num_slices - 1
        if use_csa:
            cycles += 2
            acc.compressions += 1  # final conversion pass
        result = acc.resolve()
        return SimulationResult(result, cycles, self.digits, acc.compressions)

    def _check_operands(self, a: int, b: int, modulus: int) -> None:
        if modulus < 2:
            raise SynthesisError(f"modulus must be >= 2, got {modulus}")
        if modulus.bit_length() > self.eol:
            raise SynthesisError(
                f"modulus needs {modulus.bit_length()} bits, datapath "
                f"covers {self.eol}")
        if not (0 <= a < modulus and 0 <= b < modulus):
            raise SynthesisError("operands must satisfy 0 <= A, B < M")
