"""Adder structures: unit-gate cost models and functional behaviour.

Three adder styles appear in the paper's Table 1 and in the crypto
layer's decomposition issue (DI7): carry-look-ahead (CLA), carry-save
(CSA) and — as the textbook baseline the layer can still describe —
ripple-carry.  Costs are expressed in unit gate levels (delay) and gate
equivalents (area); the technology library turns those into ns and
library area units.

Calibration notes (against Table 1's legible cells):

* CSA: one 3:2 row is 2 gate levels and 5 gates/bit, independent of
  width — which is why the #2/#4/#5 clock columns are nearly flat.
* CLA: a 4-ary look-ahead tree modelled as ``4*log2(w) - 6`` levels
  (min 6) and 14 gates/bit — reproducing the #1 column's growth from
  2.7ns at w=8 to 6.5ns at w=128 once register overhead and wire load
  are added.
* ripple: 2 levels/bit, 5 gates/bit; never competitive, present so the
  layer can *show* it dominated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SynthesisError

#: Option names used by the crypto layer's design issues.
RIPPLE = "Ripple-Carry"
CLA = "Carry-Look-Ahead"
CSA = "Carry-Save"

ADDER_STYLES = (RIPPLE, CLA, CSA)


@dataclass(frozen=True)
class AdderCost:
    """Unit-gate cost of one adder instance."""

    style: str
    width_bits: int
    delay_levels: float
    area_gates: float


def _check_width(width_bits: int) -> None:
    if width_bits < 1:
        raise SynthesisError(f"adder width must be >= 1, got {width_bits}")


def ripple_cost(width_bits: int) -> AdderCost:
    """Ripple-carry adder: linear delay, minimal area."""
    _check_width(width_bits)
    return AdderCost(RIPPLE, width_bits,
                     delay_levels=2.0 * width_bits,
                     area_gates=5.0 * width_bits)


def cla_cost(width_bits: int) -> AdderCost:
    """Carry-look-ahead adder (4-ary tree), calibrated to Table 1 #1."""
    _check_width(width_bits)
    levels = max(6.0, 4.0 * math.log2(width_bits) - 6.0)
    return AdderCost(CLA, width_bits,
                     delay_levels=levels,
                     area_gates=14.0 * width_bits)


def csa_cost(width_bits: int) -> AdderCost:
    """One carry-save 3:2 compressor row: constant delay."""
    _check_width(width_bits)
    return AdderCost(CSA, width_bits,
                     delay_levels=2.0,
                     area_gates=5.0 * width_bits)


def adder_cost(style: str, width_bits: int) -> AdderCost:
    """Cost of one adder of the given style."""
    if style == RIPPLE:
        return ripple_cost(width_bits)
    if style == CLA:
        return cla_cost(width_bits)
    if style == CSA:
        return csa_cost(width_bits)
    raise SynthesisError(
        f"unknown adder style {style!r}; known: {ADDER_STYLES}")


# ----------------------------------------------------------------------
# functional models (used by the cycle-accurate simulators and tests)
# ----------------------------------------------------------------------
def ripple_add(a: int, b: int, carry_in: int = 0) -> Tuple[int, int]:
    """Bit-serial ripple addition returning (sum, carry_out).

    Implemented bit by bit — deliberately not ``a + b`` — so tests can
    check the structural model against Python integers.
    """
    if a < 0 or b < 0 or carry_in not in (0, 1):
        raise SynthesisError("ripple_add needs non-negative operands")
    width = max(a.bit_length(), b.bit_length(), 1)
    carry = carry_in
    total = 0
    for i in range(width):
        bit_a = (a >> i) & 1
        bit_b = (b >> i) & 1
        s = bit_a ^ bit_b ^ carry
        carry = (bit_a & bit_b) | (bit_a & carry) | (bit_b & carry)
        total |= s << i
    return total, carry


def cla_add(a: int, b: int, width_bits: int) -> Tuple[int, int]:
    """Carry-look-ahead addition via generate/propagate recurrences.

    Returns (sum modulo 2**width, carry_out).  Group look-ahead and the
    flat recurrence compute identical carries, so the flat version is
    used for the functional model.
    """
    _check_width(width_bits)
    if a < 0 or b < 0:
        raise SynthesisError("cla_add needs non-negative operands")
    generate = a & b
    propagate = a ^ b
    carries = 0
    carry = 0
    for i in range(width_bits):
        carries |= carry << i
        g = (generate >> i) & 1
        p = (propagate >> i) & 1
        carry = g | (p & carry)
    mask = (1 << width_bits) - 1
    return (propagate ^ carries) & mask, carry
