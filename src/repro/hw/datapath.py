"""Sliced modular-multiplier datapath specifications and cost composition.

A :class:`DatapathSpec` captures exactly the design-issue options of the
paper's crypto layer — algorithm, radix, adder style, multiplier style,
slice width, number of slices, technology — and composes the component
cost models of :mod:`repro.hw.adders` / :mod:`repro.hw.multipliers` into
clock period, area, cycle count and latency.  This is the function the
Synopsys + LSI flow performed for the authors; the composition constants
are calibrated against Table 1's legible cells (see
``repro.data.paper_table1`` and the calibration tests).

Critical-path composition (gate levels)::

    levels = multiplier + adder-path + algorithm-specific logic

* adder-path: CSA = two 3:2 rows (4 levels, width-independent);
  CLA = one 3:2 row + look-ahead CPA (``2 + cla(w)``); ripple likewise
  with a linear CPA.
* algorithm logic: Montgomery radix-2 CLA has its quotient for free (the
  LSB), CSA pays 2 levels to resolve the low bit exactly; radix >= 4
  pays 2 levels of digit-inverse product; Brickell replaces quotient
  logic with the compare/trial-subtract network (5 levels CLA, 6 CSA).

Cycle-count composition::

    cycles = iterations + (slices - 1) + conversion
    iterations = ceil(EOL / log2(radix)) + 1   (Montgomery)
               = ceil(EOL / log2(radix)) + 10  (Brickell reduction steps)
    conversion = 2 extra carry-resolve cycles for CSA designs
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.hw.adders import ADDER_STYLES, CLA, CSA, RIPPLE, adder_cost
from repro.hw.multipliers import (
    MULTIPLIER_STYLES,
    MUL,
    MUX,
    NONE,
    multiplier_cost,
)
from repro.hw.tech import TechnologyLibrary, technology

MONTGOMERY = "Montgomery"
BRICKELL = "Brickell"
ALGORITHMS = (MONTGOMERY, BRICKELL)

#: Iteration overhead of Brickell's per-step reduction (trial
#: subtractions and guard-digit handling), in clock cycles — calibrated
#: to Table 1's #7/#8 rows (latency/clk = EOL + ~10 at EOL = w).
_BRICKELL_EXTRA_ITERATIONS = 10

#: Extra carry-resolve cycles CSA designs pay to convert the redundant
#: residue at the end of the operation.
_CSA_CONVERSION_CYCLES = 2

#: Per-slice and per-design control overheads (gate equivalents).
_SLICE_CONTROL_GATES = 60.0
_DESIGN_CONTROL_GATES = 150.0

#: Operand shift/IO buffering charged per datapath bit.
_IO_GATES_PER_BIT = 6.0

#: Register cost (gate equivalents per bit).
_REG_GATES_PER_BIT = 4.0

#: Steering-mux cost per bit (wider for redundant-form datapaths).
_MUX_GATES_PER_BIT = {CSA: 6.0, CLA: 4.0, RIPPLE: 4.0}


@dataclass(frozen=True)
class DatapathSpec:
    """One point of the hardware modular-multiplier design space."""

    algorithm: str
    radix: int
    adder_style: str
    multiplier_style: str
    slice_width: int
    num_slices: int = 1
    technology_name: str = "0.35u"

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise SynthesisError(
                f"unknown algorithm {self.algorithm!r}; known: {ALGORITHMS}")
        if self.adder_style not in ADDER_STYLES:
            raise SynthesisError(
                f"unknown adder style {self.adder_style!r}")
        if self.multiplier_style not in MULTIPLIER_STYLES:
            raise SynthesisError(
                f"unknown multiplier style {self.multiplier_style!r}")
        if self.radix < 2 or self.radix & (self.radix - 1):
            raise SynthesisError(
                f"radix must be a power of two >= 2, got {self.radix}")
        if self.radix == 2 and self.multiplier_style != NONE:
            raise SynthesisError(
                "radix-2 designs use no digit multiplier (style 'N/A')")
        if self.radix > 2 and self.multiplier_style == NONE:
            raise SynthesisError(
                f"radix-{self.radix} designs need a digit multiplier "
                f"(style {MUL!r} or {MUX!r})")
        if self.slice_width < 1:
            raise SynthesisError(
                f"slice width must be >= 1, got {self.slice_width}")
        if self.num_slices < 1:
            raise SynthesisError(
                f"slice count must be >= 1, got {self.num_slices}")
        technology(self.technology_name)  # fail fast on unknown tech

    # ------------------------------------------------------------------
    @property
    def digit_bits(self) -> int:
        return int(math.log2(self.radix))

    @property
    def operand_width(self) -> int:
        """Total operand width the sliced datapath covers."""
        return self.slice_width * self.num_slices

    @property
    def tech(self) -> TechnologyLibrary:
        return technology(self.technology_name)

    def label(self) -> str:
        """Short design label in the paper's style (#2_64 etc.)."""
        return (f"{self.algorithm[0]}r{self.radix}"
                f"{'CSA' if self.adder_style == CSA else 'CLA' if self.adder_style == CLA else 'RC'}"
                f"_{self.slice_width}x{self.num_slices}")

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def _adder_path_levels(self) -> float:
        if self.adder_style == CSA:
            return 4.0  # two 3:2 rows
        cpa = adder_cost(self.adder_style, self.slice_width).delay_levels
        return 2.0 + cpa  # one 3:2 row feeding the CPA

    def _algorithm_levels(self) -> float:
        if self.algorithm == BRICKELL:
            return 6.0 if self.adder_style == CSA else 5.0
        # Montgomery quotient logic.
        if self.radix > 2:
            return 2.0
        return 2.0 if self.adder_style == CSA else 0.0

    def critical_path_levels(self) -> float:
        mult = multiplier_cost(self.multiplier_style, self.radix,
                               self.slice_width)
        return (mult.delay_levels + self._adder_path_levels()
                + self._algorithm_levels())

    def clock_ns(self) -> float:
        """Achievable clock period of the slice datapath."""
        return self.tech.clock_ns(self.critical_path_levels(),
                                  self.slice_width)

    # ------------------------------------------------------------------
    # cycles / latency
    # ------------------------------------------------------------------
    def iterations(self, eol: int) -> int:
        """Digit iterations of one modular multiplication of width ``eol``."""
        if eol < 1:
            raise SynthesisError(f"EOL must be >= 1, got {eol}")
        digits = math.ceil(eol / self.digit_bits)
        if self.algorithm == MONTGOMERY:
            return digits + 1
        return digits + _BRICKELL_EXTRA_ITERATIONS

    def cycles(self, eol: int) -> int:
        """Clock cycles for one modular multiplication of width ``eol``."""
        conversion = _CSA_CONVERSION_CYCLES if self.adder_style == CSA else 0
        return self.iterations(eol) + (self.num_slices - 1) + conversion

    def latency_ns(self, eol: int) -> float:
        return self.cycles(eol) * self.clock_ns()

    # ------------------------------------------------------------------
    # area / power
    # ------------------------------------------------------------------
    def _slice_gates(self) -> float:
        w = float(self.slice_width)
        regs = 3.0 if self.adder_style != CSA else 4.0  # B, M, R (+R_carry)
        gates = regs * _REG_GATES_PER_BIT * w
        if self.adder_style == CSA:
            gates += 2 * adder_cost(CSA, self.slice_width).area_gates
            # Final converter (cheap CPA) + compare/subtract network.
            gates += 10.0 * w
            gates += 2.0 * w  # exact low-digit quotient resolution
        else:
            gates += adder_cost(CSA, self.slice_width).area_gates  # 3:2 row
            gates += adder_cost(self.adder_style, self.slice_width).area_gates
        mult = multiplier_cost(self.multiplier_style, self.radix,
                               self.slice_width)
        gates += 2 * mult.area_gates  # digit*B and Q*M paths
        gates += _MUX_GATES_PER_BIT[self.adder_style] * w
        gates += _IO_GATES_PER_BIT * w
        if self.algorithm == BRICKELL:
            # Per-slice reduction network: wide compare, multiple-select
            # of k*M, trial-subtract steering.  Redundant (CSA) residues
            # additionally need magnitude estimation.
            gates += (16.0 if self.adder_style == CSA else 6.0) * w
            gates += 150.0
        gates += _SLICE_CONTROL_GATES
        return gates

    def gates(self) -> float:
        """Total gate-equivalent count of the sliced design."""
        return self._slice_gates() * self.num_slices + _DESIGN_CONTROL_GATES

    def area(self) -> float:
        """Area in library units (comparable to Table 1's Area column)."""
        return self.tech.area(self.gates())

    def power_mw(self, activity: float = 0.25) -> float:
        return self.tech.power_mw(self.gates(), self.clock_ns(), activity)


def spec_for_eol(base: DatapathSpec, eol: int) -> DatapathSpec:
    """Rebuild ``base`` with enough slices of the same width for ``eol``.

    The paper composes wide multipliers from fixed-width slices
    (``#2_64`` = radix-2 CSA design built from 64-bit slices); the slice
    width must divide the EOL.
    """
    if eol % base.slice_width:
        raise SynthesisError(
            f"EOL {eol} is not a multiple of slice width {base.slice_width}")
    return DatapathSpec(
        algorithm=base.algorithm,
        radix=base.radix,
        adder_style=base.adder_style,
        multiplier_style=base.multiplier_style,
        slice_width=base.slice_width,
        num_slices=eol // base.slice_width,
        technology_name=base.technology_name,
    )
