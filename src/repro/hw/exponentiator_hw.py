"""The modular exponentiation coprocessor (paper refs [10]/[11]).

The case study's modular multiplier is one block of a larger
architectural component: a coprocessor computing ``M^E mod N`` for
digital signatures.  The paper's concluding remarks stress that "the
exact same behavioral/structural decomposition mechanisms would have
supported the transition between the conceptual design of the main
architectural component (the coprocessor) and ... its critical blocks
(including the modular multiplier)."

This module completes that transition: a coprocessor model that
*composes* a Montgomery multiplier datapath, with

* an analytical cost model — area (multiplier + exponent/result
  registers + control + optional m-ary precompute table) and cycle
  count as a function of exponent statistics and schedule;
* a cycle-accurate functional simulator that runs the whole
  exponentiation on the multiplier's own simulator, entirely inside
  the Montgomery domain (one conversion in, one out).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SynthesisError
from repro.hw.datapath import MONTGOMERY, DatapathSpec
from repro.hw.montgomery_hw import MontgomeryMultiplierHW

BINARY_SCHEDULE = "Binary"
MARY_SCHEDULE = "M-ary"
SCHEDULES = (BINARY_SCHEDULE, MARY_SCHEDULE)

#: Control overhead charged per modular multiplication (operand routing,
#: exponent scan), in clock cycles.
_PER_MUL_CONTROL_CYCLES = 3

#: Gate costs of the coprocessor shell.
_REG_GATES_PER_BIT = 4.0
_CONTROL_GATES = 600.0


@dataclass(frozen=True)
class ExponentiatorSpec:
    """A coprocessor design point: multiplier + schedule."""

    multiplier: DatapathSpec
    schedule: str = BINARY_SCHEDULE
    window_bits: int = 4

    def __post_init__(self) -> None:
        if self.multiplier.algorithm != MONTGOMERY:
            raise SynthesisError(
                "the coprocessor composes a Montgomery multiplier "
                f"(got {self.multiplier.algorithm})")
        if self.schedule not in SCHEDULES:
            raise SynthesisError(
                f"unknown schedule {self.schedule!r}; known: {SCHEDULES}")
        if self.schedule == MARY_SCHEDULE and not 2 <= self.window_bits <= 6:
            raise SynthesisError(
                f"m-ary window must be 2..6 bits, got {self.window_bits}")

    @property
    def eol(self) -> int:
        return self.multiplier.operand_width

    # ------------------------------------------------------------------
    # analytical model
    # ------------------------------------------------------------------
    def multiplication_count(self, exponent_bits: int,
                             average_case: bool = True) -> int:
        """Modular multiplications per exponentiation, conversions
        included.

        Binary: ``bits`` squarings plus ~``bits/2`` (average) or
        ``bits`` (worst-case) multiplies.  M-ary with window w:
        ``2^w - 2`` table builds, ``bits`` squarings, ``bits/w``
        multiplies.  Plus 2 domain conversions.
        """
        if exponent_bits < 1:
            raise SynthesisError(
                f"exponent bits must be >= 1, got {exponent_bits}")
        if self.schedule == BINARY_SCHEDULE:
            multiplies = exponent_bits // 2 if average_case else exponent_bits
            return exponent_bits + multiplies + 2
        table = (1 << self.window_bits) - 2
        windows = math.ceil(exponent_bits / self.window_bits)
        return table + exponent_bits + windows + 2

    def cycles(self, exponent_bits: int, average_case: bool = True) -> int:
        """Coprocessor cycles for one full exponentiation."""
        per_mul = self.multiplier.cycles(self.eol) + _PER_MUL_CONTROL_CYCLES
        return self.multiplication_count(exponent_bits, average_case) \
            * per_mul

    def latency_ns(self, exponent_bits: int,
                   average_case: bool = True) -> float:
        return self.cycles(exponent_bits, average_case) \
            * self.multiplier.clock_ns()

    def gates(self) -> float:
        shell = 2 * _REG_GATES_PER_BIT * self.eol  # exponent + base regs
        shell += _CONTROL_GATES
        if self.schedule == MARY_SCHEDULE:
            table_entries = (1 << self.window_bits) - 2
            shell += table_entries * _REG_GATES_PER_BIT * self.eol
        return self.multiplier.gates() + shell

    def area(self) -> float:
        return self.multiplier.tech.area(self.gates())

    def describe(self) -> str:
        window = (f", window {self.window_bits}"
                  if self.schedule == MARY_SCHEDULE else "")
        return (f"modexp coprocessor [{self.schedule}{window}] over "
                f"{self.multiplier.label()}")


@dataclass
class ExponentiationRun:
    """Result of one simulated exponentiation."""

    result: int
    multiplications: int
    cycles: int

    def latency_ns(self, clock_ns: float) -> float:
        return self.cycles * clock_ns


class ExponentiatorHW:
    """Cycle-accurate coprocessor built on a multiplier simulator."""

    def __init__(self, spec: ExponentiatorSpec):
        self.spec = spec
        self._multiplier = MontgomeryMultiplierHW(spec.multiplier)

    def simulate(self, base: int, exponent: int, modulus: int
                 ) -> ExponentiationRun:
        """Run ``base^exponent mod modulus`` on the datapath.

        The whole computation stays in the Montgomery domain: one
        conversion multiplication in, one out, raw MonPro passes in the
        loop — exactly why Fig 6 plots the multiplier's *loop* delay.
        """
        if exponent < 0:
            raise SynthesisError(f"exponent must be >= 0, got {exponent}")
        multiplier = self._multiplier
        factor = multiplier.montgomery_factor(modulus)
        cycles = 0
        count = 0

        def monpro(a: int, b: int) -> int:
            nonlocal cycles, count
            run = multiplier.simulate(a, b, modulus)
            cycles += run.cycles + _PER_MUL_CONTROL_CYCLES
            count += 1
            return run.result

        base_bar = monpro(base % modulus, pow(factor, 2, modulus))
        result_bar = factor % modulus  # 1 in the Montgomery domain
        if self.spec.schedule == BINARY_SCHEDULE:
            for i in range(exponent.bit_length() - 1, -1, -1):
                result_bar = monpro(result_bar, result_bar)
                if (exponent >> i) & 1:
                    result_bar = monpro(result_bar, base_bar)
        else:
            window = self.spec.window_bits
            table = [factor % modulus, base_bar]
            for _ in range(2, 1 << window):
                table.append(monpro(table[-1], base_bar))
            bits = exponent.bit_length()
            for w in range(math.ceil(bits / window) - 1, -1, -1):
                for _ in range(window):
                    result_bar = monpro(result_bar, result_bar)
                digit = (exponent >> (w * window)) & ((1 << window) - 1)
                if digit:
                    result_bar = monpro(result_bar, table[digit])
        result = monpro(result_bar, 1)
        return ExponentiationRun(result, count, cycles)


def synthesize_exponentiator(multiplier: DatapathSpec,
                             schedule: str = BINARY_SCHEDULE,
                             window_bits: int = 4,
                             exponent_bits: Optional[int] = None
                             ) -> Tuple[ExponentiatorSpec, dict]:
    """Characterize a coprocessor design point.

    Returns the spec and a merit dictionary shaped like the layer's
    figures of merit (exponent_bits defaults to the operand width, the
    RSA private-key case).
    """
    spec = ExponentiatorSpec(multiplier, schedule, window_bits)
    bits = exponent_bits if exponent_bits is not None else spec.eol
    clock = multiplier.clock_ns()
    cycles = spec.cycles(bits)
    merits = {
        "area": spec.area(),
        "clock_ns": clock,
        "cycles": cycles,
        "latency_ns": cycles * clock,
        "delay_us": cycles * clock / 1000.0,
        "power_mw": multiplier.tech.power_mw(spec.gates(), clock),
    }
    return spec, merits
