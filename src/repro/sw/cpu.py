"""CPU cost model for the software modular multipliers.

The paper's Fig 6 compares hardware cores against "a set of C routines
and a set of highly optimized assembly routines, both executing on a
Pentium 60".  We replace the measurements with a cost model over the
operation counts of :mod:`repro.sw.montgomery_sw`:

``time_us = sum(count[cat] * cycles[cat]) * variant_factor / clock_mhz``

Calibration (documented so it can be audited):

* **ASM**: P5 integer MUL is ~10 cycles unpipelined; with address
  generation and register pressure the per-multiply cost lands at 13
  cycles, memory at 2, adds at 1, loop control at 2 — which puts CIOS
  at 1024 bits within 1% of the paper's 799 us figure.
* **C**: 1996-era compilers had no 32x32->64 intrinsic, so the C
  routines synthesize double-word products from 16-bit halves (or call
  a helper), costing ~146 cycles per multiply; this reproduces the
  paper's ~5700 us CIOS figure and its ~7x C/ASM gap.
* **variant factors** model scheduling effects the op counts alone
  cannot see (the three-word accumulator of FIPS, CIHS's extra passes);
  they are calibrated to the published ranking (CIOS fastest, CIHS
  ~1.3x slower).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ReproError
from repro.sw.bignum import OpCounter
from repro.sw.montgomery_sw import MontgomeryRoutine

#: Scheduling-efficiency factors by Montgomery variant (dimensionless).
VARIANT_FACTORS: Dict[str, float] = {
    "CIOS": 1.00,
    "FIOS": 1.05,
    "SOS": 1.08,
    "FIPS": 1.15,
    "CIHS": 1.28,
}


@dataclass(frozen=True)
class CpuModel:
    """A processor + language implementation cost model."""

    name: str
    clock_mhz: float
    cycle_costs: Mapping[str, float]
    language: str
    variant_factors: Mapping[str, float] = field(
        default_factory=lambda: dict(VARIANT_FACTORS))

    def cycles(self, ops: OpCounter, variant: Optional[str] = None) -> float:
        total = 0.0
        for category, count in ops.counts.items():
            cost = self.cycle_costs.get(category)
            if cost is None:
                raise ReproError(
                    f"{self.name}: no cycle cost for category {category!r}")
            total += count * cost
        if variant is not None:
            total *= self.variant_factors.get(variant, 1.0)
        return total

    def microseconds(self, ops: OpCounter,
                     variant: Optional[str] = None) -> float:
        return self.cycles(ops, variant) / self.clock_mhz


PENTIUM60_ASM = CpuModel(
    name="Pentium-60 (assembly)",
    clock_mhz=60.0,
    cycle_costs={"mul": 13.0, "add": 1.0, "mem": 2.0, "loop": 2.0},
    language="ASM",
)

PENTIUM60_C = CpuModel(
    name="Pentium-60 (C)",
    clock_mhz=60.0,
    cycle_costs={"mul": 146.0, "add": 2.0, "mem": 3.0, "loop": 6.0},
    language="C",
)


@dataclass(frozen=True)
class SoftwareMultiplier:
    """A characterized software modular-multiplier core.

    Pairs a Montgomery variant/geometry with a CPU model; the
    figure-of-merit extraction runs the *real* routine on a worst-case
    operand pattern, so the counted operations are exercised, not
    assumed.
    """

    variant: str
    num_words: int
    word_bits: int
    cpu: CpuModel

    @property
    def name(self) -> str:
        return f"{self.variant} {self.cpu.language}"

    @property
    def operand_bits(self) -> int:
        return self.num_words * self.word_bits

    def routine(self) -> MontgomeryRoutine:
        return MontgomeryRoutine(self.variant, self.num_words, self.word_bits)

    def characterize(self) -> float:
        """Delay of one modular multiplication in microseconds.

        Uses the all-ones odd modulus and maximal operands — the longest
        carry chains the routine can see.
        """
        modulus = (1 << self.operand_bits) - 1  # odd by construction
        operand = modulus - 2
        result = self.routine().monpro(operand, operand, modulus)
        return self.cpu.microseconds(result.ops, self.variant)

    def delay_us(self, eol: int) -> float:
        """Delay for an ``eol``-bit multiplication.

        The geometry must cover the EOL; the routine always runs at its
        full word count (the paper's routines are fixed-size unrolled
        loops).
        """
        if eol > self.operand_bits:
            raise ReproError(
                f"{self.name} covers {self.operand_bits} bits, asked for "
                f"{eol}")
        return self.characterize()

    def exponentiation_us(self, exponent_bits: int,
                          average_case: bool = True) -> float:
        """Delay of a full modular exponentiation on this routine.

        Binary square-and-multiply: ``bits`` squarings plus ``bits/2``
        (average) or ``bits`` (worst-case) multiplies, plus the two
        Montgomery-domain conversions — the software counterpart of the
        hardware coprocessor's latency model.
        """
        if exponent_bits < 1:
            raise ReproError(
                f"exponent bits must be >= 1, got {exponent_bits}")
        multiplies = exponent_bits // 2 if average_case else exponent_bits
        operations = exponent_bits + multiplies + 2
        return operations * self.characterize()


def pentium_suite(eol: int, word_bits: int = 32,
                  variants: Optional[Mapping[str, str]] = None
                  ) -> Dict[str, SoftwareMultiplier]:
    """The Fig 6 software line-up for a given operand size.

    Returns multipliers keyed by display name; by default the four
    combinations the paper plots (CIOS/CIHS in ASM and C).
    """
    if eol % word_bits:
        raise ReproError(f"EOL {eol} not a multiple of {word_bits}")
    num_words = eol // word_bits
    combos = variants or {"CIOS ASM": ("CIOS", "ASM"),
                          "CIHS ASM": ("CIHS", "ASM"),
                          "CIOS C": ("CIOS", "C"),
                          "CIHS C": ("CIHS", "C")}
    out: Dict[str, SoftwareMultiplier] = {}
    for label, (variant, language) in combos.items():
        cpu = PENTIUM60_ASM if language == "ASM" else PENTIUM60_C
        out[label] = SoftwareMultiplier(variant, num_words, word_bits, cpu)
    return out
