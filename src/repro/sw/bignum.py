"""Word-array multiprecision arithmetic with operation accounting.

The software modular multipliers of the paper's Fig 6 are the C and
assembly routines of Koc/Acar/Kaliski (the paper's [11]) running on a
Pentium 60.  To reproduce their behaviour without the hardware, we
implement the same word-level algorithms over explicit word arrays and
*count* the single-precision operations they execute; the CPU model in
:mod:`repro.sw.cpu` then turns counts into microseconds.

All routines work on little-endian word lists with a configurable word
size (the Pentium routines use 32-bit words).  The :class:`OpCounter`
records the categories the cost model prices:

* ``mul``    — w x w -> 2w single-precision multiply;
* ``add``    — w-bit add with carry;
* ``mem``    — word load/store traffic;
* ``loop``   — loop-control overhead per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError


class BignumError(ReproError):
    """Malformed word vectors or out-of-range operands."""


@dataclass
class OpCounter:
    """Single-precision operation counts of one routine execution."""

    counts: Dict[str, int] = field(default_factory=dict)

    def tick(self, category: str, amount: int = 1) -> None:
        self.counts[category] = self.counts.get(category, 0) + amount

    def get(self, category: str) -> int:
        return self.counts.get(category, 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def merged_with(self, other: "OpCounter") -> "OpCounter":
        merged = OpCounter(dict(self.counts))
        for category, amount in other.counts.items():
            merged.tick(category, amount)
        return merged


def to_words(value: int, word_bits: int, num_words: int) -> List[int]:
    """Little-endian word decomposition; rejects values that overflow."""
    if value < 0:
        raise BignumError(f"negative value {value}")
    if word_bits < 1 or num_words < 1:
        raise BignumError(
            f"bad geometry: word_bits={word_bits}, num_words={num_words}")
    mask = (1 << word_bits) - 1
    words = []
    rest = value
    for _ in range(num_words):
        words.append(rest & mask)
        rest >>= word_bits
    if rest:
        raise BignumError(
            f"value needs more than {num_words} x {word_bits}-bit words")
    return words


def from_words(words: List[int], word_bits: int) -> int:
    value = 0
    for i, word in enumerate(words):
        if not 0 <= word < (1 << word_bits):
            raise BignumError(f"word {i} out of range: {word}")
        value |= word << (i * word_bits)
    return value


def mul_word(a: int, b: int, word_bits: int, ops: OpCounter
             ) -> Tuple[int, int]:
    """Single-precision multiply: returns (high, low) words."""
    ops.tick("mul")
    product = a * b
    mask = (1 << word_bits) - 1
    return product >> word_bits, product & mask


def add_words(a: int, b: int, carry: int, word_bits: int, ops: OpCounter
              ) -> Tuple[int, int]:
    """Word addition with carry in/out: returns (carry_out, sum_word)."""
    ops.tick("add")
    total = a + b + carry
    mask = (1 << word_bits) - 1
    return total >> word_bits, total & mask


def compare(a_words: List[int], b_words: List[int], ops: OpCounter) -> int:
    """-1/0/+1 comparison, counting per-word work."""
    if len(a_words) != len(b_words):
        raise BignumError("compare needs equal-length vectors")
    for a, b in zip(reversed(a_words), reversed(b_words)):
        ops.tick("add")  # a comparison costs like a subtract
        if a != b:
            return 1 if a > b else -1
    return 0


def sub_in_place(a_words: List[int], b_words: List[int], word_bits: int,
                 ops: OpCounter) -> int:
    """``a -= b`` over equal-length vectors; returns the final borrow."""
    if len(a_words) != len(b_words):
        raise BignumError("subtract needs equal-length vectors")
    borrow = 0
    mask = (1 << word_bits) - 1
    for i in range(len(a_words)):
        ops.tick("add")
        ops.tick("mem", 2)
        total = a_words[i] - b_words[i] - borrow
        borrow = 1 if total < 0 else 0
        a_words[i] = total & mask
    return borrow


def n_prime(modulus: int, word_bits: int) -> int:
    """``-m^-1 mod 2^w`` — the per-word Montgomery constant ``n'``."""
    if modulus % 2 == 0:
        raise BignumError("Montgomery needs an odd modulus")
    base = 1 << word_bits
    return (-pow(modulus, -1, base)) % base
