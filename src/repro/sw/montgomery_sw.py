"""Word-level Montgomery multiplication variants (Koc/Acar/Kaliski).

The paper's software cores are the Pentium-60 routines analysed in its
ref [11] ("Analyzing and Comparing Montgomery Multiplication
Algorithms", IEEE Micro 1996), which organise the interleaving of
multiplication and reduction in five ways:

* **SOS**  — Separated Operand Scanning: full product, then reduction;
* **CIOS** — Coarsely Integrated Operand Scanning: reduction folded
  into each row of the multiplication (the fastest variant);
* **FIOS** — Finely Integrated Operand Scanning: one fused inner loop;
* **FIPS** — Finely Integrated Product Scanning: Comba-style column
  accumulation of product and reduction together;
* **CIHS** — Coarsely Integrated Hybrid Scanning: the multiplication is
  split so its high half is folded into the reduction loop.

All compute ``MonPro(a, b) = a * b * R^-1 mod m`` with ``R = 2^(s*w)``
for odd ``m``, over little-endian ``w``-bit word arrays, counting
single-precision operations as they go.  CIHS is reconstructed from the
published description (the scan of the original lists only its op
counts); its structure follows the split-multiplication idea and its counted
memory traffic exceeds CIOS's, matching the published ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.sw.bignum import (
    BignumError,
    OpCounter,
    add_words,
    compare,
    from_words,
    mul_word,
    n_prime,
    sub_in_place,
    to_words,
)

VARIANTS = ("SOS", "CIOS", "FIOS", "FIPS", "CIHS")


@dataclass
class MonProResult:
    """Result and operation counts of one MonPro execution."""

    result: int
    ops: OpCounter
    variant: str
    num_words: int
    word_bits: int


class MontgomeryRoutine:
    """One software Montgomery multiplier (fixed geometry and variant)."""

    def __init__(self, variant: str, num_words: int, word_bits: int = 32):
        if variant not in VARIANTS:
            raise ReproError(
                f"unknown variant {variant!r}; known: {VARIANTS}")
        if num_words < 1 or word_bits < 2:
            raise ReproError(
                f"bad geometry: s={num_words}, w={word_bits}")
        self.variant = variant
        self.num_words = num_words
        self.word_bits = word_bits

    # ------------------------------------------------------------------
    @property
    def operand_bits(self) -> int:
        return self.num_words * self.word_bits

    def r_factor(self, modulus: int) -> int:
        """``R mod m = 2^(s*w) mod m``."""
        return pow(2, self.operand_bits, modulus)

    def monpro(self, a: int, b: int, modulus: int) -> MonProResult:
        """``a * b * R^-1 mod m`` with operation accounting."""
        if modulus < 3 or modulus % 2 == 0:
            raise BignumError(
                f"Montgomery needs an odd modulus >= 3, got {modulus}")
        if not (0 <= a < modulus and 0 <= b < modulus):
            raise BignumError("operands must satisfy 0 <= a, b < m")
        if modulus.bit_length() > self.operand_bits:
            raise BignumError(
                f"modulus needs {modulus.bit_length()} bits, geometry "
                f"covers {self.operand_bits}")
        s, w = self.num_words, self.word_bits
        ops = OpCounter()
        a_words = to_words(a, w, s)
        b_words = to_words(b, w, s)
        m_words = to_words(modulus, w, s)
        np0 = n_prime(modulus, w) % (1 << w)
        kernel = _KERNELS[self.variant]
        u_words = kernel(a_words, b_words, m_words, np0, w, ops)
        # Final conditional subtraction: u may be in [0, 2m).
        extended_m = m_words + [0] * (len(u_words) - s)
        if compare(u_words, extended_m, ops) >= 0:
            sub_in_place(u_words, extended_m, w, ops)
        result = from_words(u_words, w)
        return MonProResult(result, ops, self.variant, s, w)

    def multiply_mod(self, a: int, b: int, modulus: int) -> MonProResult:
        """Plain ``a * b mod m`` via two MonPro passes (conversion of one
        operand into the Montgomery domain, then the combining pass)."""
        r2 = pow(self.r_factor(modulus), 2, modulus)
        step1 = self.monpro(a, r2, modulus)
        step2 = self.monpro(step1.result, b, modulus)
        return MonProResult(step2.result, step1.ops.merged_with(step2.ops),
                            self.variant, self.num_words, self.word_bits)


# ----------------------------------------------------------------------
# kernels — each returns u as a word list of length s+1 with value < 2m
# ----------------------------------------------------------------------
def _add_carry(t: List[int], index: int, carry: int, w: int,
               ops: OpCounter) -> None:
    """The ADD(t[index], C) primitive: propagate a carry upward."""
    while carry:
        if index >= len(t):
            raise BignumError("carry propagated past the end of t")
        ops.tick("add")
        ops.tick("mem", 2)
        total = t[index] + carry
        t[index] = total & ((1 << w) - 1)
        carry = total >> w
        index += 1


def _sos(a: List[int], b: List[int], m: List[int], np0: int, w: int,
         ops: OpCounter) -> List[int]:
    s = len(a)
    mask = (1 << w) - 1
    t = [0] * (2 * s + 1)
    for i in range(s):
        carry = 0
        for j in range(s):
            ops.tick("loop")
            ops.tick("mem", 3)
            hi, lo = mul_word(a[j], b[i], w, ops)
            carry_out, total = add_words(t[i + j], lo, 0, w, ops)
            carry_out2, total = add_words(total, carry, 0, w, ops)
            t[i + j] = total
            carry = hi + carry_out + carry_out2
        t[i + s] = carry & mask
    for i in range(s):
        carry = 0
        mm = (t[i] * np0) & mask
        ops.tick("mul")
        ops.tick("mem", 1)
        for j in range(s):
            ops.tick("loop")
            ops.tick("mem", 3)
            hi, lo = mul_word(mm, m[j], w, ops)
            carry_out, total = add_words(t[i + j], lo, 0, w, ops)
            carry_out2, total = add_words(total, carry, 0, w, ops)
            t[i + j] = total
            carry = hi + carry_out + carry_out2
        _add_carry(t, i + s, carry, w, ops)
    return t[s:2 * s + 1]


def _cios(a: List[int], b: List[int], m: List[int], np0: int, w: int,
          ops: OpCounter) -> List[int]:
    s = len(a)
    mask = (1 << w) - 1
    t = [0] * (s + 2)
    for i in range(s):
        carry = 0
        for j in range(s):
            ops.tick("loop")
            ops.tick("mem", 3)
            hi, lo = mul_word(a[j], b[i], w, ops)
            c1, total = add_words(t[j], lo, 0, w, ops)
            c2, total = add_words(total, carry, 0, w, ops)
            t[j] = total
            carry = hi + c1 + c2
        c1, total = add_words(t[s], carry, 0, w, ops)
        ops.tick("mem", 2)
        t[s] = total
        t[s + 1] = c1
        mm = (t[0] * np0) & mask
        ops.tick("mul")
        ops.tick("mem", 1)
        hi, lo = mul_word(mm, m[0], w, ops)
        c1, total = add_words(t[0], lo, 0, w, ops)
        carry = hi + c1  # total is 0 by construction of mm
        for j in range(1, s):
            ops.tick("loop")
            ops.tick("mem", 3)
            hi, lo = mul_word(mm, m[j], w, ops)
            c1, total = add_words(t[j], lo, 0, w, ops)
            c2, total = add_words(total, carry, 0, w, ops)
            t[j - 1] = total
            carry = hi + c1 + c2
        c1, total = add_words(t[s], carry, 0, w, ops)
        ops.tick("mem", 2)
        t[s - 1] = total
        t[s] = t[s + 1] + c1
        t[s + 1] = 0
    return t[:s + 1]


def _fios(a: List[int], b: List[int], m: List[int], np0: int, w: int,
          ops: OpCounter) -> List[int]:
    s = len(a)
    mask = (1 << w) - 1
    t = [0] * (s + 2)
    for i in range(s):
        hi, lo = mul_word(a[0], b[i], w, ops)
        ops.tick("mem", 2)
        c1, total = add_words(t[0], lo, 0, w, ops)
        _add_carry(t, 1, hi + c1, w, ops)
        mm = (total * np0) & mask
        ops.tick("mul")
        hi, lo = mul_word(mm, m[0], w, ops)
        c1, _discard = add_words(total, lo, 0, w, ops)
        carry = hi + c1
        for j in range(1, s):
            ops.tick("loop")
            ops.tick("mem", 4)
            hi, lo = mul_word(a[j], b[i], w, ops)
            c1, total = add_words(t[j], lo, 0, w, ops)
            c2, total = add_words(total, carry, 0, w, ops)
            # The a*b product's carry propagates upward immediately.
            _add_carry(t, j + 1, hi + c1 + c2, w, ops)
            hi2, lo2 = mul_word(mm, m[j], w, ops)
            c3, total = add_words(total, lo2, 0, w, ops)
            t[j - 1] = total
            carry = hi2 + c3
        c1, total = add_words(t[s], carry, 0, w, ops)
        ops.tick("mem", 2)
        t[s - 1] = total
        t[s] = t[s + 1] + c1
        t[s + 1] = 0
    return t[:s + 1]


def _fips(a: List[int], b: List[int], m: List[int], np0: int, w: int,
          ops: OpCounter) -> List[int]:
    s = len(a)
    mask = (1 << w) - 1
    acc = 0  # three-word accumulator, held as a Python int
    mm = [0] * s
    u = [0] * (s + 1)
    for i in range(s):
        for j in range(i):
            ops.tick("loop")
            ops.tick("mem", 4)
            hi, lo = mul_word(a[j], b[i - j], w, ops)
            acc += (hi << w) | lo
            ops.tick("add", 2)
            hi, lo = mul_word(mm[j], m[i - j], w, ops)
            acc += (hi << w) | lo
            ops.tick("add", 2)
        hi, lo = mul_word(a[i], b[0], w, ops)
        ops.tick("mem", 2)
        acc += (hi << w) | lo
        ops.tick("add", 2)
        mm[i] = (acc & mask) * np0 & mask
        ops.tick("mul")
        ops.tick("mem", 1)
        hi, lo = mul_word(mm[i], m[0], w, ops)
        acc += (hi << w) | lo
        ops.tick("add", 2)
        acc >>= w
    for i in range(s, 2 * s):
        for j in range(i - s + 1, s):
            ops.tick("loop")
            ops.tick("mem", 4)
            hi, lo = mul_word(a[j], b[i - j], w, ops)
            acc += (hi << w) | lo
            ops.tick("add", 2)
            hi, lo = mul_word(mm[j], m[i - j], w, ops)
            acc += (hi << w) | lo
            ops.tick("add", 2)
        u[i - s] = acc & mask
        ops.tick("mem", 1)
        acc >>= w
    u[s] = acc & mask
    return u


def _cihs(a: List[int], b: List[int], m: List[int], np0: int, w: int,
          ops: OpCounter) -> List[int]:
    """Hybrid scanning: the multiplication's low triangle is computed
    up-front; the high triangle is folded into the reduction loop, which
    re-reads ``b`` — the extra memory traffic that makes CIHS trail CIOS
    in the published measurements."""
    s = len(a)
    mask = (1 << w) - 1
    t = [0] * (s + 2)
    # First loop: partial products a[j]*b[i] with i + j < s.
    for i in range(s):
        carry = 0
        for j in range(s - i):
            ops.tick("loop")
            ops.tick("mem", 3)
            hi, lo = mul_word(a[j], b[i], w, ops)
            c1, total = add_words(t[i + j], lo, 0, w, ops)
            c2, total = add_words(total, carry, 0, w, ops)
            t[i + j] = total
            carry = hi + c1 + c2
        _add_carry(t, s, carry, w, ops)
    # Second loop: one reduction step per word, then fold in the
    # deferred high-triangle products that become position-aligned
    # after the shift.
    for i in range(s):
        mm = (t[0] * np0) & mask
        ops.tick("mul")
        ops.tick("mem", 1)
        hi, lo = mul_word(mm, m[0], w, ops)
        c1, _zero = add_words(t[0], lo, 0, w, ops)
        carry = hi + c1
        for j in range(1, s):
            ops.tick("loop")
            ops.tick("mem", 3)
            hi, lo = mul_word(mm, m[j], w, ops)
            c1, total = add_words(t[j], lo, 0, w, ops)
            c2, total = add_words(total, carry, 0, w, ops)
            t[j - 1] = total
            carry = hi + c1 + c2
        c1, total = add_words(t[s], carry, 0, w, ops)
        ops.tick("mem", 2)
        t[s - 1] = total
        t[s] = t[s + 1] + c1
        t[s + 1] = 0
        # Deferred products a[j]*b[i'] with j + i' == s + i land on the
        # current word s-1 after i+1 shifts.
        carry = 0
        for j in range(i + 1, s):
            ops.tick("loop")
            ops.tick("mem", 4)
            hi, lo = mul_word(a[j], b[s + i - j], w, ops)
            c1, total = add_words(t[s - 1], lo, 0, w, ops)
            t[s - 1] = total
            carry += hi + c1
        _add_carry(t, s, carry, w, ops)
    return t[:s + 1]


_KERNELS: Dict[str, Callable[..., List[int]]] = {
    "SOS": _sos,
    "CIOS": _cios,
    "FIOS": _fios,
    "FIPS": _fips,
    "CIHS": _cihs,
}
