"""Software substrate: word-level Montgomery routines and CPU cost models."""

from repro.sw.bignum import (
    BignumError,
    OpCounter,
    add_words,
    compare,
    from_words,
    mul_word,
    n_prime,
    sub_in_place,
    to_words,
)
from repro.sw.cpu import (
    PENTIUM60_ASM,
    PENTIUM60_C,
    VARIANT_FACTORS,
    CpuModel,
    SoftwareMultiplier,
    pentium_suite,
)
from repro.sw.montgomery_sw import (
    VARIANTS,
    MonProResult,
    MontgomeryRoutine,
)

__all__ = [
    "BignumError", "OpCounter", "add_words", "compare", "from_words",
    "mul_word", "n_prime", "sub_in_place", "to_words",
    "PENTIUM60_ASM", "PENTIUM60_C", "VARIANT_FACTORS", "CpuModel",
    "SoftwareMultiplier", "pentium_suite",
    "VARIANTS", "MonProResult", "MontgomeryRoutine",
]
