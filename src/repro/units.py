"""Small unit helpers shared across the layer.

Figures of merit in the paper are reported in nanoseconds (clock period,
latency), microseconds (single-operation latency requirements, Fig 6),
square microns / equivalent gates (area) and milliwatts (power, the
paper's work-in-progress extension).  We keep units as plain floats tagged
by convention — a ``Quantity`` wrapper would add friction for the numeric
code in :mod:`repro.hw` — and centralise the conversions here so the
convention lives in one place.
"""

from __future__ import annotations

NS_PER_US = 1000.0
US_PER_MS = 1000.0
MS_PER_S = 1000.0
NS_PER_S = 1e9


def ns_to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / NS_PER_US


def us_to_ns(value_us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return value_us * NS_PER_US


def ns_to_s(value_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return value_ns / NS_PER_S


def mhz_to_period_ns(freq_mhz: float) -> float:
    """Clock period in ns for a frequency in MHz."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return 1000.0 / freq_mhz


def period_ns_to_mhz(period_ns: float) -> float:
    """Clock frequency in MHz for a period in ns."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return 1000.0 / period_ns


def format_quantity(value: float, unit: str, precision: int = 2) -> str:
    """Render ``value`` with its unit, trimming trailing zeros.

    >>> format_quantity(8.0, 'us')
    '8 us'
    >>> format_quantity(2.37, 'ns')
    '2.37 ns'
    """
    text = f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return f"{text} {unit}"
