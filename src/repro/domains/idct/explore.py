"""Ready-made exploration problem for the IDCT layer.

The Sec 2 motivating example as an automated search: find the
non-dominated IDCT cores for a required block size, over every
addressable design issue of the Fig 3 generalization hierarchy
(implementation style, fabrication technology, algorithm, MAC units,
layout style / platform, language).  Defined at module level so the
default factory-backed problem pickles into process pools.
"""

from __future__ import annotations

import functools
from typing import Optional, Sequence

from repro.core.explore.problem import ExplorationProblem
from repro.core.layer import DesignSpaceLayer
from repro.domains.idct.cores import BLOCK_SIZE
from repro.domains.idct.layer import build_idct_layer


def idct_exploration_problem(
        layer: Optional[DesignSpaceLayer] = None,
        block_size: int = 8,
        metrics: Sequence[str] = ("area", "latency_ns"),
        max_depth: Optional[int] = None) -> ExplorationProblem:
    """Search the IDCT layer for non-dominated cores of one block size."""
    return ExplorationProblem(
        start="IDCT",
        metrics=tuple(metrics),
        requirements={BLOCK_SIZE: block_size},
        max_depth=max_depth,
        layer=layer,
        layer_factory=(functools.partial(build_idct_layer, block_size)
                       if layer is None else None))
