"""The five IDCT hard cores of the paper's Fig 2, plus software routines.

The paper's Fig 2/3 argument needs a concrete population: five hard
cores whose evaluation-space positions form two clusters — {1, 2, 5}
(0.35u) and {3, 4} (0.7u) — with "Designs 1 and 4 ... different
implementations of the exact same IDCT algorithm (say, one using a
0.35u standard cell library, and the other using a 0.7u standard cell
library)".  We generate them with a MAC-array datapath model whose
operation counts come from executing the real algorithms of
:mod:`repro.domains.idct.algorithms`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.designobject import AREA, CLOCK_NS, DELAY_US, LATENCY_NS, POWER_MW, DesignObject
from repro.domains.idct.algorithms import algorithm_flops
from repro.errors import LibraryError
from repro.hw.tech import technology
from repro.sw.bignum import OpCounter
from repro.sw.cpu import PENTIUM60_ASM, PENTIUM60_C

#: Gate cost of one 16-bit multiply-accumulate unit (array multiplier
#: half-square plus accumulator adder and pipeline registers).
_MAC_GATES = 180.0
_CONTROL_GATES = 800.0
_MAC_PIPELINE_LEVELS = 10.0
_DATA_BITS = 16

#: Design issue names of the IDCT layer.
IMPLEMENTATION_STYLE = "ImplementationStyle"
FAB_TECH = "FabricationTechnology"
ALGORITHM = "Algorithm"
MAC_UNITS = "MacUnits"
LAYOUT_STYLE = "LayoutStyle"
PLATFORM = "ProgrammablePlatform"
LANGUAGE = "Language"
BLOCK_SIZE = "BlockSize"
PRECISION = "Precision"

IDCT_SW_PATH = "IDCT.Software.Pentium-60"


def idct_hw_path(technology_name: str) -> str:
    """Qualified CDO name of a technology family ('0.35u' -> ...350nm)."""
    suffix = {"0.35u": "350nm", "0.5u": "500nm", "0.7u": "700nm"}
    return f"IDCT.Hardware.{suffix[technology_name]}"


@dataclass(frozen=True)
class IdctHardwareRecipe:
    """One hard core's design point (Fig 2's numbered designs)."""

    number: int
    algorithm: str
    mac_units: int
    technology_name: str
    layout_style: str = "Standard-Cell"


#: Fig 2's five cores: {1,2,5} on 0.35u, {3,4} on 0.7u.
FIG2_RECIPES: Sequence[IdctHardwareRecipe] = (
    IdctHardwareRecipe(1, "RowColumn-Lee", 4, "0.35u"),
    IdctHardwareRecipe(2, "RowColumn-Lee", 2, "0.35u"),
    # Designs 1 and 4 implement the exact same algorithm on different
    # technologies — the paper's Sec 2.1 example of why abstraction-only
    # organisation misleads.
    IdctHardwareRecipe(3, "RowColumn-Lee", 4, "0.7u"),
    IdctHardwareRecipe(4, "RowColumn-Lee", 2, "0.7u"),
    IdctHardwareRecipe(5, "RowColumn-Direct", 8, "0.35u"),
)


def synthesize_idct_core(recipe: IdctHardwareRecipe,
                         block_size: int = 8) -> DesignObject:
    """Characterize one IDCT hard core from executed operation counts."""
    if recipe.mac_units < 1:
        raise LibraryError(f"MAC count must be >= 1, got {recipe.mac_units}")
    tech = technology(recipe.technology_name)
    flops = algorithm_flops(recipe.algorithm, block_size)
    gates = _CONTROL_GATES + recipe.mac_units * _MAC_GATES
    clock_ns = tech.clock_ns(_MAC_PIPELINE_LEVELS, _DATA_BITS)
    # MACs fuse one multiply with one add; leftover additions run two
    # per cycle on the accumulate network.
    cycles = math.ceil(flops.multiplies / recipe.mac_units
                       + max(0, flops.additions - flops.multiplies)
                       / (2.0 * recipe.mac_units))
    latency_ns = cycles * clock_ns
    return DesignObject(
        f"idct_{recipe.number}",
        idct_hw_path(recipe.technology_name),
        {
            BLOCK_SIZE: block_size,
            FAB_TECH: recipe.technology_name,
            ALGORITHM: recipe.algorithm,
            MAC_UNITS: recipe.mac_units,
            LAYOUT_STYLE: recipe.layout_style,
            PRECISION: _DATA_BITS,
        },
        {
            AREA: tech.area(gates),
            CLOCK_NS: clock_ns,
            LATENCY_NS: latency_ns,
            DELAY_US: latency_ns / 1000.0,
            POWER_MW: tech.power_mw(gates, clock_ns),
        },
        doc=f"IDCT core #{recipe.number}: {recipe.algorithm} on "
            f"{recipe.mac_units} MACs, {recipe.technology_name} "
            f"{recipe.layout_style}")


def fig2_cores(block_size: int = 8) -> List[DesignObject]:
    """All five Fig 2 hard cores."""
    return [synthesize_idct_core(recipe, block_size)
            for recipe in FIG2_RECIPES]


def software_idct_core(algorithm: str, language: str,
                       block_size: int = 8) -> DesignObject:
    """A Pentium-60 software IDCT routine characterized from its
    executed floating-point operation counts."""
    flops = algorithm_flops(algorithm, block_size)
    ops = OpCounter()
    # FP multiply ~3 cycles pipelined on the P5 FPU, add ~1; memory
    # traffic roughly one load per operand.
    ops.tick("mul", flops.multiplies)
    ops.tick("add", flops.additions)
    ops.tick("mem", 2 * flops.total)
    ops.tick("loop", flops.total // 2)
    cpu = PENTIUM60_ASM if language == "ASM" else PENTIUM60_C
    delay_us = cpu.microseconds(ops)
    return DesignObject(
        f"idct_sw_{algorithm.lower()}_{language.lower()}",
        IDCT_SW_PATH,
        {BLOCK_SIZE: block_size, ALGORITHM: algorithm, LANGUAGE: language},
        {DELAY_US: delay_us, LATENCY_NS: delay_us * 1000.0},
        doc=f"{algorithm} software IDCT in {language} on a Pentium 60")


def software_cores(block_size: int = 8) -> List[DesignObject]:
    """Software IDCT routines: the three algorithms in ASM and C."""
    return [software_idct_core(algorithm, language, block_size)
            for algorithm in ("Direct", "RowColumn-Direct", "RowColumn-Lee")
            for language in ("ASM", "C")]
