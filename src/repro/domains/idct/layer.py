"""The IDCT design space layer (paper Sec 2, Figs 2-4).

Two hierarchies can organise the same five cores:

* :func:`build_idct_layer` — the generalization/specialization layer of
  Fig 3/4: implementation style first, then — inside Hardware — the
  fabrication technology, because *that* is the issue separating the
  clusters {1, 2, 5} and {3, 4} in the evaluation space;
* :func:`build_abstraction_layer` — the strawman of Fig 2(a), organised
  purely by level of abstraction, kept so the benchmarks can demonstrate
  why it guides the designer poorly (designs 1 and 4 share an algorithm
  yet sit in different clusters).
"""

from __future__ import annotations

from repro.core.cdo import ClassOfDesignObjects
from repro.core.layer import DesignSpaceLayer
from repro.core.library import ReuseLibrary
from repro.core.properties import DesignIssue, Requirement, RequirementSense
from repro.core.values import EnumDomain, IntRange
from repro.domains.idct.algorithms import IDCT_ALGORITHMS
from repro.domains.idct.cores import (
    ALGORITHM,
    BLOCK_SIZE,
    FAB_TECH,
    IMPLEMENTATION_STYLE,
    LANGUAGE,
    LAYOUT_STYLE,
    MAC_UNITS,
    PLATFORM,
    PRECISION,
    fig2_cores,
    software_cores,
)


def _tech_cdo_name(option: str) -> str:
    """CDO-safe name for a technology option ('0.35u' -> '350nm')."""
    return {"0.35u": "350nm", "0.5u": "500nm", "0.7u": "700nm"}[option]


def _idct_root() -> ClassOfDesignObjects:
    root = ClassOfDesignObjects(
        "IDCT",
        "Inverse Discrete Cosine Transform blocks (paper Sec 2's "
        "motivating class of design objects); all available IDCT cores "
        "are indexed through this node")
    root.add_property(Requirement(
        BLOCK_SIZE, EnumDomain([4, 8, 16]),
        "Transform block size required by the application (8 for "
        "JPEG/MPEG)", sense=RequirementSense.EXACT))
    root.add_property(Requirement(
        PRECISION, IntRange(lo=8, hi=32),
        "Required coefficient precision in bits",
        sense=RequirementSense.AT_LEAST_SUPPORT, unit="bits"))
    root.add_property(Requirement(
        "LatencySingleBlock", IntRange(lo=0),
        "Maximum latency of one block transform in nanoseconds",
        sense=RequirementSense.MAX, unit="ns"))
    return root


def build_idct_layer(block_size: int = 8,
                     strict_lint: bool = False) -> DesignSpaceLayer:
    """The generalization-based layer of Fig 3/4.

    ``strict_lint`` additionally runs the static-analysis rules and
    refuses to return a layer with error-severity findings.
    """
    layer = DesignSpaceLayer(
        "idct",
        "Design space layer for IDCT blocks, organised by "
        "generalization/specialization (paper Fig 3)")
    root = _idct_root()
    root.add_property(DesignIssue(
        IMPLEMENTATION_STYLE, EnumDomain(["Hardware", "Software"]),
        "Hardware cores vs software routines — radically different "
        "performance ranges, hence a generalized issue (Fig 4)",
        generalized=True))
    hardware = root.specialize(
        "Hardware", doc="IDCT hard cores")
    hardware.add_property(DesignIssue(
        FAB_TECH, EnumDomain(["0.35u", "0.7u"]),
        "Fabrication technology — the design issue that separates the "
        "area/performance clusters of Fig 3(b), promoted to a "
        "generalized issue exactly for that reason", generalized=True))
    for tech in ("0.35u", "0.7u"):
        # CDO names cannot contain the path separator, so the child is
        # named in nanometres while the issue option keeps the paper's
        # micron spelling.
        family = hardware.specialize(tech, name=_tech_cdo_name(tech))
        family.add_property(DesignIssue(
            ALGORITHM, EnumDomain(sorted(IDCT_ALGORITHMS)),
            "IDCT algorithm realised by the datapath; all derive from "
            "the same transform definition but differ in operation "
            "counts and critical paths"))
        family.add_property(DesignIssue(
            MAC_UNITS, EnumDomain([1, 2, 4, 8, 16]),
            "Parallel multiply-accumulate units in the datapath"))
        family.add_property(DesignIssue(
            LAYOUT_STYLE, EnumDomain(["Standard-Cell", "Gate-Array"]),
            "Physical design style"))
    software = root.specialize("Software", doc="IDCT software routines")
    software.add_property(DesignIssue(
        PLATFORM, EnumDomain(["Pentium-60", "Embedded-RISC"]),
        "Programmable platform executing the routine", generalized=True))
    pentium = software.specialize("Pentium-60")
    pentium.add_property(DesignIssue(
        ALGORITHM, EnumDomain(sorted(IDCT_ALGORITHMS)),
        "IDCT algorithm implemented by the routine"))
    pentium.add_property(DesignIssue(
        LANGUAGE, EnumDomain(["ASM", "C"]),
        "Implementation language"))
    software.specialize("Embedded-RISC")
    layer.add_root(root)
    library = ReuseLibrary("idct-cores", "The five hard cores of Fig 2 "
                                         "plus Pentium software routines")
    library.add_all(fig2_cores(block_size))
    library.add_all(software_cores(block_size))
    layer.attach_library(library)
    layer.validate()
    if strict_lint:
        layer.lint(strict=True)
    return layer


def build_abstraction_layer(block_size: int = 8) -> DesignSpaceLayer:
    """The strawman layer of Fig 2(a): organised by abstraction level.

    Its generalized issue is the *level of abstraction at which designs
    are first discriminated* — which tells the designer nothing about
    achievable figures of merit; the benchmark shows the algorithm-level
    region mixes both clusters.
    """
    layer = DesignSpaceLayer(
        "idct-abstraction",
        "Strawman IDCT layer organised strictly by level of design "
        "abstraction (paper Fig 2(a))")
    root = _idct_root()
    root.add_property(DesignIssue(
        "AbstractionLevel",
        EnumDomain(["Algorithm", "RT", "Logic", "Physical"]),
        "Level of abstraction at which the design space is first "
        "discriminated — the traditional top-down organisation",
        generalized=True))
    algorithm_level = root.specialize("Algorithm")
    algorithm_level.add_property(DesignIssue(
        ALGORITHM, EnumDomain(sorted(IDCT_ALGORITHMS)),
        "Algorithm chosen at the algorithm level"))
    for level in ("RT", "Logic", "Physical"):
        node = root.specialize(level)
        if level == "Physical":
            node.add_property(DesignIssue(
                FAB_TECH, EnumDomain(["0.35u", "0.7u"]),
                "Technology — only visible at the physical level in "
                "this organisation, despite its first-order impact"))
    layer.add_root(root)
    # Cores index under the algorithm-level region: with this schema a
    # designer explores algorithms first and cannot see the technology
    # split Fig 2(c) shows to matter most.
    library = ReuseLibrary("idct-cores",
                           "Fig 2 cores indexed at the algorithm level")
    for core in fig2_cores(block_size):
        clone_properties = dict(core.properties)
        library.add(type(core)(core.name, "IDCT.Algorithm",
                               clone_properties, core.merits,
                               doc=core.doc))
    layer.attach_library(library)
    layer.validate()
    return layer
