"""Inverse Discrete Cosine Transform implementations.

The paper's Sec 2 motivates the design space layer with an IDCT class of
design objects whose cores realize "different IDCT algorithms ...
obviously all derived from the same basic mathematical definition of the
transform, [with] different critical paths, different numbers of
operations, precisions".  We implement that algorithm space for real:

* the direct O(N^2) / O(N^4) definition;
* separable row-column decomposition;
* Lee's recursive fast algorithm (O(N log N) multiplies per vector).

All variants are instrumented with multiplication/addition counters so
the evaluation-space positions of the cores derive from executed
operation counts, not hand-waved estimates.

Convention: the 1-D transform here is the orthonormal DCT-III,
``x[n] = sum_k c_k X[k] cos(pi (2n+1) k / (2N))`` with
``c_0 = sqrt(1/N)`` and ``c_k = sqrt(2/N)`` — the inverse of the
orthonormal DCT-II used by JPEG/MPEG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ReproError


class IdctError(ReproError):
    """Invalid transform input."""


@dataclass
class FlopCounter:
    """Floating-point operation counts of one transform execution."""

    multiplies: int = 0
    additions: int = 0

    def mul(self, amount: int = 1) -> None:
        self.multiplies += amount

    def add(self, amount: int = 1) -> None:
        self.additions += amount

    @property
    def total(self) -> int:
        return self.multiplies + self.additions


def _check_vector(coeffs: Sequence[float]) -> int:
    n = len(coeffs)
    if n < 1 or (n & (n - 1)):
        raise IdctError(f"transform size must be a power of two, got {n}")
    return n


def idct_1d_naive(coeffs: Sequence[float],
                  flops: Optional[FlopCounter] = None) -> List[float]:
    """Direct evaluation of the DCT-III definition: N^2 multiplies."""
    n = _check_vector(coeffs)
    flops = flops if flops is not None else FlopCounter()
    scale0 = math.sqrt(1.0 / n)
    scale = math.sqrt(2.0 / n)
    out = []
    for sample in range(n):
        total = scale0 * coeffs[0]
        flops.mul()
        for k in range(1, n):
            angle = math.pi * (2 * sample + 1) * k / (2 * n)
            total += scale * coeffs[k] * math.cos(angle)
            flops.mul(2)
            flops.add()
        out.append(total)
    return out


def _dct3_unscaled(coeffs: List[float], flops: FlopCounter) -> List[float]:
    """Lee's recursion on the unscaled DCT-III
    ``y[n] = X[0]/2 + sum_{k>=1} X[k] cos(pi k (2n+1) / (2N))``."""
    n = len(coeffs)
    if n == 1:
        # y[0] = X[0]/2
        flops.mul()
        return [coeffs[0] * 0.5]
    half = n // 2
    even = [coeffs[2 * k] for k in range(half)]
    # H[0] = G[0] enters the half-size transform at full weight, but the
    # recursion halves its first input — pre-double to compensate.
    odd = [2.0 * coeffs[1]] + [coeffs[2 * k + 1] + coeffs[2 * k - 1]
                               for k in range(1, half)]
    flops.mul()
    flops.add(half - 1)
    upper = _dct3_unscaled(even, flops)
    lower = _dct3_unscaled(odd, flops)
    out = [0.0] * n
    for j in range(half):
        weight = 1.0 / (2.0 * math.cos(math.pi * (2 * j + 1) / (2 * n)))
        w = lower[j] * weight
        flops.mul()
        out[j] = upper[j] + w
        out[n - 1 - j] = upper[j] - w
        flops.add(2)
    return out


def idct_1d_lee(coeffs: Sequence[float],
                flops: Optional[FlopCounter] = None) -> List[float]:
    """Lee's fast recursive IDCT: O(N log N) multiplies."""
    n = _check_vector(coeffs)
    flops = flops if flops is not None else FlopCounter()
    scale0 = math.sqrt(1.0 / n)
    scale = math.sqrt(2.0 / n)
    # Pre-scale into the unscaled convention: X'[0] = 2*c0*X[0]/?  The
    # unscaled recursion computes X[0]/2 + sum X[k] cos(...), so feed
    # X'[0] = 2*scale0*X[0] and X'[k] = scale*X[k].
    prepared = [2.0 * scale0 * coeffs[0]] + [scale * c for c in coeffs[1:]]
    flops.mul(n)
    return _dct3_unscaled(prepared, flops)


def _check_block(block: Sequence[Sequence[float]]) -> int:
    n = len(block)
    if n < 1 or (n & (n - 1)):
        raise IdctError(f"block size must be a power of two, got {n}")
    for row in block:
        if len(row) != n:
            raise IdctError("block must be square")
    return n


def idct_2d_naive(block: Sequence[Sequence[float]],
                  flops: Optional[FlopCounter] = None) -> List[List[float]]:
    """Direct O(N^4) evaluation of the separable 2-D definition."""
    n = _check_block(block)
    flops = flops if flops is not None else FlopCounter()

    def c(k: int) -> float:
        return math.sqrt(1.0 / n) if k == 0 else math.sqrt(2.0 / n)

    out = [[0.0] * n for _ in range(n)]
    for x in range(n):
        for y in range(n):
            total = 0.0
            for u in range(n):
                for v in range(n):
                    total += (c(u) * c(v) * block[u][v]
                              * math.cos(math.pi * (2 * x + 1) * u / (2 * n))
                              * math.cos(math.pi * (2 * y + 1) * v / (2 * n)))
                    flops.mul(4)
                    flops.add()
            out[x][y] = total
    return out


def idct_2d_row_column(block: Sequence[Sequence[float]],
                       flops: Optional[FlopCounter] = None,
                       fast: bool = True) -> List[List[float]]:
    """Separable row-column 2-D IDCT: 2N 1-D transforms.

    ``fast`` selects Lee's algorithm for the 1-D passes; the slow
    variant uses the direct definition (the paper's cores differ in
    exactly this choice).
    """
    n = _check_block(block)
    flops = flops if flops is not None else FlopCounter()
    one_d = idct_1d_lee if fast else idct_1d_naive
    rows = [one_d(row, flops) for row in block]
    columns = [one_d([rows[i][j] for i in range(n)], flops)
               for j in range(n)]
    return [[columns[j][i] for j in range(n)] for i in range(n)]


IDCT_ALGORITHMS = {
    "Direct": lambda block, flops=None: idct_2d_naive(block, flops),
    "RowColumn-Direct": lambda block, flops=None: idct_2d_row_column(
        block, flops, fast=False),
    "RowColumn-Lee": lambda block, flops=None: idct_2d_row_column(
        block, flops, fast=True),
}


def algorithm_flops(algorithm: str, block_size: int = 8) -> FlopCounter:
    """Operation counts of one ``block_size`` x ``block_size`` transform."""
    try:
        fn = IDCT_ALGORITHMS[algorithm]
    except KeyError:
        raise IdctError(f"unknown IDCT algorithm {algorithm!r}; known: "
                        f"{sorted(IDCT_ALGORITHMS)}") from None
    flops = FlopCounter()
    block = [[float((i * block_size + j) % 7 - 3)
              for j in range(block_size)] for i in range(block_size)]
    fn(block, flops)
    return flops
