"""Fixed-point IDCT: the precision dimension of the algorithm space.

The paper notes that alternative IDCT algorithms have "different
critical paths, different numbers of operations, precisions" — and the
IDCT root CDO carries a ``Precision`` requirement.  This module makes
that requirement *measurable*: integer implementations of the direct
and Lee 1-D transforms with quantized cosine tables, an error harness
against the floating-point reference, and an achieved-precision metric
cores can document.

The engineering trade-off it exposes is real: Lee's recursion divides
by ``2*cos(pi(2j+1)/2N)``, whose last stage approaches zero, so its
quantization noise is *amplified* — at equal coefficient word lengths
the fast algorithm is measurably less accurate than the direct one.
Fewer multiplications, worse noise: exactly the kind of coupling the
design space layer exists to surface.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.domains.idct.algorithms import (
    IdctError,
    idct_1d_naive,
)


def _check(coeffs: Sequence[int], frac_bits: int) -> int:
    n = len(coeffs)
    if n < 1 or (n & (n - 1)):
        raise IdctError(f"transform size must be a power of two, got {n}")
    if not 2 <= frac_bits <= 30:
        raise IdctError(f"fractional bits must be 2..30, got {frac_bits}")
    return n


def _fx(value: float, frac_bits: int) -> int:
    """Round-to-nearest fixed-point quantization."""
    return int(round(value * (1 << frac_bits)))


def _descale(value: int, frac_bits: int) -> int:
    """Arithmetic right shift with round-to-nearest."""
    offset = 1 << (frac_bits - 1)
    return (value + offset) >> frac_bits


def fixed_idct_1d_direct(coeffs: Sequence[int], frac_bits: int
                         ) -> List[int]:
    """Direct N^2 fixed-point IDCT over integer inputs.

    Inputs are plain integers; outputs carry ``frac_bits`` fractional
    bits (divide by ``2**frac_bits`` for the value), so downstream
    stages — or the accuracy harness — see the full computed precision.
    The cosine/scale products are quantized to ``frac_bits``.
    """
    n = _check(coeffs, frac_bits)
    scale0 = math.sqrt(1.0 / n)
    scale = math.sqrt(2.0 / n)
    out = []
    for sample in range(n):
        acc = coeffs[0] * _fx(scale0, frac_bits)
        for k in range(1, n):
            angle = math.pi * (2 * sample + 1) * k / (2 * n)
            acc += coeffs[k] * _fx(scale * math.cos(angle), frac_bits)
        out.append(acc)
    return out


def fixed_idct_1d_lee(coeffs: Sequence[int], frac_bits: int) -> List[int]:
    """Lee's recursion in fixed point.

    Inputs are plain integers; outputs carry ``frac_bits`` fractional
    bits, like :func:`fixed_idct_1d_direct`.  Every intermediate value
    is re-quantized to ``frac_bits`` after each stage's secant product;
    the final-stage weights are large (up to ~N/pi), which is where the
    accuracy loss against the direct form comes from.
    """
    n = _check(coeffs, frac_bits)
    scale0 = math.sqrt(1.0 / n)
    scale = math.sqrt(2.0 / n)
    prepared = [coeffs[0] * _fx(2.0 * scale0, frac_bits)]
    prepared += [c * _fx(scale, frac_bits) for c in coeffs[1:]]

    def recurse(values: List[int], size: int) -> List[int]:
        if size == 1:
            return [values[0] // 2]
        half = size // 2
        even = [values[2 * k] for k in range(half)]
        odd = [2 * values[1]] + [values[2 * k + 1] + values[2 * k - 1]
                                 for k in range(1, half)]
        upper = recurse(even, half)
        lower = recurse(odd, half)
        out = [0] * size
        for j in range(half):
            weight = _fx(1.0 / (2.0 * math.cos(
                math.pi * (2 * j + 1) / (2 * size))), frac_bits)
            w = _descale(lower[j] * weight, frac_bits)
            out[j] = upper[j] + w
            out[size - 1 - j] = upper[j] - w
        return out

    return recurse(prepared, n)


FIXED_KERNELS: dict = {
    "Direct": fixed_idct_1d_direct,
    "Lee": fixed_idct_1d_lee,
}


@dataclass
class AccuracyReport:
    """Measured accuracy of a fixed-point kernel configuration."""

    kernel: str
    frac_bits: int
    size: int
    trials: int
    max_error: float
    rms_error: float

    @property
    def achieved_bits(self) -> float:
        """Effective fractional precision: ``-log2(max_error)`` relative
        to unit-scale inputs (capped for exact results)."""
        if self.max_error <= 0:
            return float(self.frac_bits)
        return -math.log2(self.max_error)


def measure_accuracy(kernel: str, frac_bits: int, size: int = 8,
                     trials: int = 200, amplitude: int = 255,
                     rng: Optional[random.Random] = None
                     ) -> AccuracyReport:
    """Error of the fixed-point kernel vs the float reference.

    Inputs are random integer coefficient vectors in
    ``[-amplitude, amplitude]`` (the video-codec range); errors are
    normalized by the amplitude so reports compare across ranges.
    """
    try:
        fixed = FIXED_KERNELS[kernel]
    except KeyError:
        raise IdctError(f"unknown fixed kernel {kernel!r}; known: "
                        f"{sorted(FIXED_KERNELS)}") from None
    if trials < 1:
        raise IdctError(f"trials must be >= 1, got {trials}")
    rng = rng or random.Random(0)
    worst = 0.0
    total_sq = 0.0
    count = 0
    unit = float(1 << frac_bits)
    for _ in range(trials):
        coeffs = [rng.randint(-amplitude, amplitude) for _ in range(size)]
        exact = idct_1d_naive([float(c) for c in coeffs])
        approx = fixed(coeffs, frac_bits)
        for a, b in zip(approx, exact):
            err = abs(a / unit - b) / amplitude
            worst = max(worst, err)
            total_sq += err * err
            count += 1
    return AccuracyReport(kernel, frac_bits, size, trials, worst,
                          math.sqrt(total_sq / count))


def accuracy_sweep(frac_bits_list: Sequence[int] = (8, 10, 12, 14, 16),
                   size: int = 8, trials: int = 100
                   ) -> List[AccuracyReport]:
    """Accuracy of both kernels across coefficient word lengths."""
    reports = []
    for kernel in sorted(FIXED_KERNELS):
        for frac_bits in frac_bits_list:
            reports.append(measure_accuracy(kernel, frac_bits, size,
                                            trials))
    return reports


def meets_precision(kernel: str, frac_bits: int, required_bits: int,
                    size: int = 8, trials: int = 100) -> bool:
    """Whether a kernel configuration satisfies a Precision requirement
    of ``required_bits`` effective bits — the measurable backing for the
    IDCT layer's Req."""
    report = measure_accuracy(kernel, frac_bits, size, trials)
    return report.achieved_bits >= required_bits
