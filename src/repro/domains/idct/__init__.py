"""The IDCT design space layer (paper Sec 2 motivating example)."""

from repro.domains.idct.algorithms import (
    IDCT_ALGORITHMS,
    FlopCounter,
    IdctError,
    algorithm_flops,
    idct_1d_lee,
    idct_1d_naive,
    idct_2d_naive,
    idct_2d_row_column,
)
from repro.domains.idct.cores import (
    FIG2_RECIPES,
    IdctHardwareRecipe,
    fig2_cores,
    software_cores,
    software_idct_core,
    synthesize_idct_core,
)
from repro.domains.idct.explore import idct_exploration_problem
from repro.domains.idct.layer import build_abstraction_layer, build_idct_layer
from repro.domains.idct.quantized import (
    AccuracyReport,
    accuracy_sweep,
    fixed_idct_1d_direct,
    fixed_idct_1d_lee,
    measure_accuracy,
    meets_precision,
)

__all__ = [
    "IDCT_ALGORITHMS", "FlopCounter", "IdctError", "algorithm_flops",
    "idct_1d_lee", "idct_1d_naive", "idct_2d_naive", "idct_2d_row_column",
    "FIG2_RECIPES", "IdctHardwareRecipe", "fig2_cores", "software_cores",
    "software_idct_core", "synthesize_idct_core",
    "build_abstraction_layer", "build_idct_layer",
    "idct_exploration_problem",
    "AccuracyReport", "accuracy_sweep", "fixed_idct_1d_direct",
    "fixed_idct_1d_lee", "measure_accuracy", "meets_precision",
]
