"""Ready-made exploration problems for the cryptography layer.

:func:`crypto_exploration_problem` packages the paper's Sec 5 case study
as an :class:`~repro.core.explore.problem.ExplorationProblem`: the five
Fig 8 requirement values, the modular-multiplier subtree as the start
position, and the decision sequence the paper's designer walks manually
(implementation style, algorithm, adder implementation, slice width).
Running it with any exact strategy reproduces — and ranks — every
surviving-core set the manual walk in ``examples/crypto_coprocessor.py``
could have reached.

:func:`conceptual_estimator` is the paper's fallback for empty surviving
sets: it invokes the layer's registered early-estimation tools on the
algorithm's behavioral description to produce estimated figures of
merit for the conceptual design.  Everything here is defined at module
level, so problems built with the default factory pickle cleanly into
process-backed worker pools.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Sequence, Tuple

from repro.core.explore.problem import ExplorationProblem
from repro.core.layer import DesignSpaceLayer
from repro.core.session import ExplorationSession
from repro.domains.crypto import vocab as v
from repro.domains.crypto.layer import build_crypto_layer
from repro.estimation.tools import AREA_TOOL, DELAY_TOOL

#: The decision sequence of the paper's case study (Sec 5 / Fig 11).
CASE_STUDY_ISSUES: Tuple[str, ...] = (
    v.IMPLEMENTATION_STYLE, v.ALGORITHM, v.ADDER_IMPL, v.SLICE_WIDTH)

#: Nanoseconds per estimated combinational gate level (matches the
#: rough technology assumption of the delay estimator's unit model).
_NS_PER_LEVEL = 0.5


def case_study_requirements(eol: int = 768, latency_us: float = 8.0
                            ) -> Dict[str, object]:
    """The five requirement values of paper Fig 8."""
    return {
        v.EOL: eol,
        v.OPERAND_CODING: v.CODING_2SC,
        v.RESULT_CODING: v.CODING_REDUNDANT,
        v.MODULO_IS_ODD: v.GUARANTEED,
        v.LATENCY_US: latency_us,
    }


def conceptual_estimator(session: ExplorationSession) -> Dict[str, float]:
    """Estimated merits for a terminal position with no surviving core.

    Invokes the layer's registered area/delay estimation tools on the
    behavioral description visible from the session's position (the
    Montgomery and Brickell CDOs each carry one); positions without a
    description or tools fall back to a closed-form unit-gate model so
    the estimator never leaves a branch unassessed.
    """
    layer = session.layer
    context = session.context()
    eol = context.get(v.EOL, 768)
    eol = int(eol) if isinstance(eol, (int, float)) else 768
    behavior = None
    try:
        prop = session.current_cdo.find_property(v.BEHAVIORAL_DESCRIPTION)
        behavior = getattr(prop, "description", None)
    except Exception:
        behavior = None
    tools = layer.tools
    if behavior is not None and AREA_TOOL in tools and DELAY_TOOL in tools:
        bindings = {"B": behavior, "EOL": eol}
        area = float(tools[AREA_TOOL](bindings))
        levels = float(tools[DELAY_TOOL](bindings))
        # One pass of the combinational datapath per operand bit.
        return {"area": area, "latency_ns": _NS_PER_LEVEL * levels * eol}
    width = context.get(v.SLICE_WIDTH, eol)
    width = int(width) if isinstance(width, (int, float)) and width else eol
    slices = max(1, eol // max(1, width))
    return {"area": 600.0 * width + 150.0 * eol,
            "latency_ns": 3.0 * eol * slices}


def crypto_exploration_problem(
        layer: Optional[DesignSpaceLayer] = None,
        eol: int = 768, latency_us: float = 8.0,
        metrics: Sequence[str] = ("area", "latency_ns"),
        issues: Optional[Sequence[str]] = CASE_STUDY_ISSUES,
        with_estimator: bool = False) -> ExplorationProblem:
    """The Sec 5 case study as an automated exploration problem.

    Without ``layer`` the problem carries a picklable factory
    (``functools.partial(build_crypto_layer, eol)``), making it directly
    usable with the process-backed :class:`BranchEvaluator`.
    ``with_estimator`` enables the conceptual-design fallback; note that
    branch-and-bound then disables bound pruning to stay exact.
    """
    return ExplorationProblem(
        start=v.OMM_PATH,
        metrics=tuple(metrics),
        requirements=case_study_requirements(eol, latency_us),
        issues=tuple(issues) if issues is not None else None,
        layer=layer,
        layer_factory=(functools.partial(build_crypto_layer, eol)
                       if layer is None else None),
        estimator=conceptual_estimator if with_estimator else None)
