"""Populating the reuse libraries of the crypto layer.

Three libraries stand in for the paper's "Library A/B/C" (Fig 1):

* ``asic-cores`` — the hardware modular multipliers of Table 1, built by
  our synthesis flow for the target operand length (8 recipes x the
  slice widths that tile the EOL x requested technologies);
* ``sw-routines`` — the Pentium-60 software multipliers (five scanning
  variants x ASM/C), characterized by the CPU cost model;
* ``arith-cells`` — plain adder/multiplier macro-cells indexed under the
  Arithmetic CDOs, used by the DI7 decomposition examples.

Every core documents its position in the design space (issue values)
and its figures of merit; the latency requirement Req5 is mirrored as a
merit under the requirement's own name so requirement entry prunes
exactly the way Sec 5.1.4 describes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.designobject import (
    AREA,
    CLOCK_NS,
    CYCLES,
    DELAY_US,
    LATENCY_NS,
    POWER_MW,
    DesignObject,
)
from repro.core.library import ReuseLibrary
from repro.domains.crypto import vocab as v
from repro.errors import LibraryError
from repro.hw.adders import adder_cost
from repro.hw.multipliers import multiplier_cost
from repro.hw.floorplan import (
    STANDARD_CELL,
    floorplan,
    styled_area,
    styled_clock_ns,
)
from repro.hw.netlist import elaborate
from repro.hw.exponentiator_hw import (
    BINARY_SCHEDULE,
    MARY_SCHEDULE,
    synthesize_exponentiator,
)
from repro.hw.synthesis import (
    TABLE1_RECIPES,
    TABLE1_SLICE_WIDTHS,
    HardwareDesign,
    synthesize_sliced,
    table1_spec,
)
from repro.hw.tech import technology
from repro.sw.cpu import PENTIUM60_ASM, PENTIUM60_C, SoftwareMultiplier
from repro.sw.montgomery_sw import VARIANTS


def hardware_core(design: HardwareDesign, cdo_name: str, name: str,
                  layout_style: str = STANDARD_CELL) -> DesignObject:
    """Wrap a synthesized design as a reusable core.

    The synthesis model is calibrated in standard cells; other layout
    styles adjust area (placement utilization) and clock (routing
    derate) through :mod:`repro.hw.floorplan`, so DI5's options are
    visible in the evaluation space.
    """
    spec = design.spec
    properties = {
        v.EOL: design.eol,
        v.LAYOUT_STYLE: layout_style,
        v.FAB_TECH: spec.technology_name,
        v.RADIX: spec.radix,
        v.SLICE_WIDTH: spec.slice_width,
        v.NUM_SLICES: spec.num_slices,
        v.ADDER_IMPL: spec.adder_style,
        v.MULT_IMPL: spec.multiplier_style,
        v.ALGORITHM: spec.algorithm,
    }
    if spec.algorithm == v.MONTGOMERY:
        properties[v.MODULO_IS_ODD] = v.GUARANTEED
    area = styled_area(design.area, layout_style)
    clock = styled_clock_ns(design.clock_ns, layout_style)
    latency_ns = design.cycles * clock
    merits = {
        AREA: area,
        CLOCK_NS: clock,
        CYCLES: design.cycles,
        LATENCY_NS: latency_ns,
        DELAY_US: latency_ns / 1000.0,
        POWER_MW: spec.tech.power_mw(spec.gates(), clock),
        v.LATENCY_US: latency_ns / 1000.0,
    }
    return DesignObject(
        name, cdo_name, properties, merits,
        doc=f"{design.describe()} [{layout_style}]",
        views={"rt": design, "algorithm": spec,
               "logic": elaborate(spec, name=f"mm_{name.strip('#')}"),
               "physical": floorplan(spec.gates(), spec.tech,
                                     layout_style)})


def hardware_cores(eol: int,
                   technologies: Sequence[str] = ("0.35u",),
                   slice_widths: Iterable[int] = TABLE1_SLICE_WIDTHS,
                   layout_styles: Sequence[str] = (STANDARD_CELL,),
                   ) -> List[DesignObject]:
    """Table 1's recipe grid re-sliced for the target EOL.

    ``layout_styles`` adds DI5 variants: gate-array or full-custom
    editions of every design point, with style-adjusted figures.
    """
    if eol < 8:
        raise LibraryError(f"EOL must be >= 8, got {eol}")
    cores: List[DesignObject] = []
    usable_widths = [w for w in slice_widths if eol % w == 0]
    if not usable_widths:
        raise LibraryError(
            f"no slice width in {list(slice_widths)} tiles EOL {eol}")
    style_suffix = {STANDARD_CELL: "", "Gate-Array": "/ga",
                    "Full-Custom": "/fc"}
    for tech_name in technologies:
        technology(tech_name)  # fail fast
        tech_suffix = "" if tech_name == "0.35u" else f"/{tech_name}"
        for number, recipe in sorted(TABLE1_RECIPES.items()):
            algorithm = recipe[1]
            cdo_name = (v.OMM_HM_PATH if algorithm == v.MONTGOMERY
                        else v.OMM_HB_PATH)
            for width in usable_widths:
                design = synthesize_sliced(number, width, eol, tech_name)
                for style in layout_styles:
                    suffix = style_suffix.get(style)
                    if suffix is None:
                        raise LibraryError(
                            f"unknown layout style {style!r}")
                    name = f"#{number}_{width}{tech_suffix}{suffix}"
                    cores.append(hardware_core(design, cdo_name, name,
                                               layout_style=style))
    return cores


def software_core(multiplier: SoftwareMultiplier, eol: int) -> DesignObject:
    """Wrap a characterized software routine as a reusable core."""
    delay_us = multiplier.delay_us(eol)
    properties = {
        v.EOL: multiplier.operand_bits,
        v.LANGUAGE: multiplier.cpu.language,
        v.SCAN_VARIANT: multiplier.variant,
        v.WORD_SIZE: multiplier.word_bits,
    }
    merits = {
        DELAY_US: delay_us,
        LATENCY_NS: delay_us * 1000.0,
        v.LATENCY_US: delay_us,
    }
    return DesignObject(
        multiplier.name, f"{v.OMM_S_PATH}.{v.PENTIUM}",
        properties, merits,
        doc=f"{multiplier.variant} word-scanning Montgomery routine in "
            f"{multiplier.cpu.language} on a Pentium 60 "
            f"({multiplier.num_words} x {multiplier.word_bits}-bit words)",
        views={"algorithm": multiplier})


def software_cores(eol: int, word_bits: int = 32) -> List[DesignObject]:
    """All variant/language combinations of the Pentium suite."""
    if eol % word_bits:
        raise LibraryError(
            f"EOL {eol} is not a multiple of the {word_bits}-bit word")
    num_words = eol // word_bits
    cores: List[DesignObject] = []
    for variant in VARIANTS:
        for cpu in (PENTIUM60_ASM, PENTIUM60_C):
            multiplier = SoftwareMultiplier(variant, num_words, word_bits,
                                            cpu)
            cores.append(software_core(multiplier, eol))
    return cores


def arithmetic_cores(widths: Sequence[int] = (8, 16, 32, 64),
                     technologies: Sequence[str] = ("0.35u",),
                     ) -> List[DesignObject]:
    """Adder/multiplier macro-cells for the decomposition CDOs."""
    cores: List[DesignObject] = []
    for tech_name in technologies:
        tech = technology(tech_name)
        suffix = "" if tech_name == "0.35u" else f"/{tech_name}"
        for style in v.ADDER_OPTIONS:
            for width in widths:
                cost = adder_cost(style, width)
                clock = tech.clock_ns(cost.delay_levels, width)
                short = {"Ripple-Carry": "ripple", "Carry-Look-Ahead": "cla",
                         "Carry-Save": "csa"}[style]
                cores.append(DesignObject(
                    f"{short}_adder_{width}{suffix}",
                    f"{v.ADDER_PATH}.{style}",
                    {v.EOL: width, v.FAB_TECH: tech_name,
                     v.ADDER_STYLE: style},
                    {AREA: tech.area(cost.area_gates), LATENCY_NS: clock,
                     CLOCK_NS: clock},
                    doc=f"{width}-bit {style} adder macro-cell "
                        f"({tech_name})"))
        for style in (v.MULT_OPTIONS[0], v.MULT_OPTIONS[1]):  # MUX, MUL
            for width in widths:
                cost = multiplier_cost(style, 4, width)
                clock = tech.clock_ns(cost.delay_levels, width)
                short = "mux" if style == v.MULT_OPTIONS[0] else "array"
                cores.append(DesignObject(
                    f"{short}_mult_{width}{suffix}",
                    f"{v.MULT_PATH}.{style}",
                    {v.EOL: width, v.FAB_TECH: tech_name,
                     v.MULT_STYLE: style},
                    {AREA: tech.area(cost.area_gates), LATENCY_NS: clock,
                     CLOCK_NS: clock},
                    doc=f"{width}-bit radix-4 {style} digit multiplier "
                        f"({tech_name})"))
    return cores


def exponentiator_cores(eol: int,
                        slice_width: int = 64,
                        technology_name: str = "0.35u"
                        ) -> List[DesignObject]:
    """Modular exponentiation coprocessors for the OME CDO.

    Composes the two best Montgomery multiplier recipes (#2 and #5)
    with the binary and m-ary schedules — the coprocessor-level design
    points the paper's concluding remarks describe.  Exponent length is
    taken equal to the EOL (the RSA private-key case).
    """
    if eol % slice_width:
        raise LibraryError(
            f"EOL {eol} is not a multiple of slice width {slice_width}")
    cores: List[DesignObject] = []
    for number in (2, 5):
        multiplier = table1_spec(number, slice_width, eol // slice_width,
                                 technology_name)
        for schedule in (BINARY_SCHEDULE, MARY_SCHEDULE):
            spec, merits = synthesize_exponentiator(
                multiplier, schedule, window_bits=4, exponent_bits=eol)
            merits[v.LATENCY_US] = merits["delay_us"]
            tag = "bin" if schedule == BINARY_SCHEDULE else "m4"
            name = f"modexp_{tag}_#{number}_{slice_width}"
            cores.append(DesignObject(
                name, v.OME_PATH,
                {
                    v.EOL: eol,
                    v.EXP_SCHEDULE: schedule,
                    v.FAB_TECH: technology_name,
                    v.RADIX: multiplier.radix,
                    v.ADDER_IMPL: multiplier.adder_style,
                    v.SLICE_WIDTH: slice_width,
                },
                merits,
                doc=spec.describe(),
                views={"rt": spec}))
    return cores


def build_libraries(eol: int,
                    technologies: Sequence[str] = ("0.35u",),
                    include_software: bool = True,
                    include_arithmetic: bool = True,
                    word_bits: int = 32,
                    include_exponentiators: bool = True
                    ) -> List[ReuseLibrary]:
    """The full library federation for one target operand length."""
    asic = ReuseLibrary(
        "asic-cores",
        f"Hardware modular multipliers synthesized for EOL {eol}")
    asic.add_all(hardware_cores(eol, technologies))
    if include_exponentiators and eol % 64 == 0:
        asic.add_all(exponentiator_cores(eol))
    libraries = [asic]
    if include_software:
        routines = ReuseLibrary(
            "sw-routines",
            "Pentium-60 Montgomery multiplication routines")
        routines.add_all(software_cores(eol, word_bits))
        libraries.append(routines)
    if include_arithmetic:
        cells = ReuseLibrary(
            "arith-cells", "Adder/multiplier macro-cells for decomposition")
        cells.add_all(arithmetic_cores(technologies=technologies))
        libraries.append(cells)
    return libraries
