"""Shared vocabulary of the cryptography design space layer.

Property names, option constants and CDO aliases used across the
hierarchy, constraints, cores and benchmarks — one module so the names
cannot drift apart.
"""

from __future__ import annotations

from repro.hw.adders import CLA, CSA, RIPPLE
from repro.hw.multipliers import MUL, MUX, NONE

# ----------------------------------------------------------------------
# requirement names (paper Fig 8)
# ----------------------------------------------------------------------
EOL = "EffectiveOperandLength"          # Req1, bits
OPERAND_CODING = "OperandCoding"        # Req2
RESULT_CODING = "ResultCoding"          # Req3
MODULO_IS_ODD = "ModuloIsOdd"           # Req4
LATENCY_US = "LatencySingleOperation"   # Req5, microseconds

#: derived requirements computed by consistency constraints
LATENCY_CYCLES = "LatencyCycles"        # CC2's dependent
MAX_COMB_DELAY = "MaxCombinationalDelay"  # CC3's dependent

# ----------------------------------------------------------------------
# design issue names (paper Fig 11)
# ----------------------------------------------------------------------
IMPLEMENTATION_STYLE = "ImplementationStyle"   # DI1 (generalized)
ALGORITHM = "Algorithm"                        # DI2 (generalized)
RADIX = "Radix"                                # DI3
NUM_SLICES = "NumberOfSlices"                  # DI4
SLICE_WIDTH = "SliceWidth"
LAYOUT_STYLE = "LayoutStyle"                   # DI5
FAB_TECH = "FabricationTechnology"             # DI6
DECOMPOSITION = "BehavioralDecomposition"      # DI7
ADDER_IMPL = "AdderImplementation"             # DI7's adder selection
MULT_IMPL = "MultiplierImplementation"         # DI7's multiplier selection
BEHAVIORAL_DESCRIPTION = "BehavioralDescription"

# software-side issues
PLATFORM = "ProgrammablePlatform"              # generalized
LANGUAGE = "Language"
SCAN_VARIANT = "ScanningVariant"
WORD_SIZE = "WordSize"

# operator-family splits (the functional levels of Fig 5)
OPERATOR_CLASS = "OperatorClass"
LA_FUNCTION = "LogicArithmeticFunction"
ARITH_FUNCTION = "ArithmeticFunction"
MODULAR_FUNCTION = "ModularFunction"
ADDER_STYLE = "AdderStyle"
MULT_STYLE = "MultiplierStyle"
EXP_SCHEDULE = "ExponentiationSchedule"

# ----------------------------------------------------------------------
# option constants
# ----------------------------------------------------------------------
HARDWARE = "Hardware"
SOFTWARE = "Software"

MONTGOMERY = "Montgomery"
BRICKELL = "Brickell"

GUARANTEED = "Guaranteed"
NOT_GUARANTEED = "notGuaranteed"

CODING_2SC = "2s-complement"
CODING_SIGNED = "signed-magnitude"
CODING_REDUNDANT = "redundant"
CODING_UNSIGNED = "unsigned"
CODINGS = (CODING_2SC, CODING_SIGNED, CODING_REDUNDANT, CODING_UNSIGNED)

STANDARD_CELL = "Standard-Cell"
GATE_ARRAY = "Gate-Array"
FULL_CUSTOM = "Full-Custom"
LAYOUT_STYLES = (STANDARD_CELL, GATE_ARRAY, FULL_CUSTOM)

TECH_OPTIONS = ("0.35u", "0.5u", "0.7u")

ADDER_OPTIONS = (CSA, CLA, RIPPLE)
MULT_OPTIONS = (MUX, MUL, NONE)

PENTIUM = "Pentium-60"
EMBEDDED_RISC = "Embedded-RISC"
EMBEDDED_DSP = "Embedded-DSP"
PLATFORMS = (PENTIUM, EMBEDDED_RISC, EMBEDDED_DSP)

ASM = "ASM"
C = "C"
LANGUAGES = (ASM, C)

SW_VARIANTS = ("SOS", "CIOS", "FIOS", "FIPS", "CIHS")

BINARY = "Binary"
MARY = "M-ary"
SCHEDULES = (BINARY, MARY)

# ----------------------------------------------------------------------
# CDO aliases (the paper's abbreviations)
# ----------------------------------------------------------------------
ALIAS_OMM = "OMM"         # Operator.Modular.Multiplier
ALIAS_OMM_H = "OMM-H"     # ...Hardware
ALIAS_OMM_HM = "OMM-HM"   # ...Hardware.Montgomery
ALIAS_OMM_HB = "OMM-HB"   # ...Hardware.Brickell
ALIAS_OMM_S = "OMM-S"     # ...Software
ALIAS_OME = "OME"         # Operator.Modular.Exponentiator

OMM_PATH = "Operator.Modular.Multiplier"
OMM_H_PATH = OMM_PATH + ".Hardware"
OMM_HM_PATH = OMM_H_PATH + ".Montgomery"
OMM_HB_PATH = OMM_H_PATH + ".Brickell"
OMM_S_PATH = OMM_PATH + ".Software"
OMM_S_PENTIUM_PATH = OMM_S_PATH + "." + PENTIUM
OME_PATH = "Operator.Modular.Exponentiator"
ADDER_PATH = "Operator.LogicArithmetic.Arithmetic.Adder"
MULT_PATH = "Operator.LogicArithmetic.Arithmetic.Multiplier"
