"""A co-existing, power-first specialization hierarchy (paper Sec 6).

The primary crypto hierarchy partitions by implementation style, then
algorithm — the right order when latency dominates.  A designer whose
binding constraint is the power budget wants the *same cores* organised
by power class first.  This module builds that alternative hierarchy
and re-indexes the layer's hardware modular multipliers into it,
demonstrating the co-existence mechanism end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cdo import ClassOfDesignObjects
from repro.core.designobject import POWER_MW, DesignObject
from repro.core.layer import DesignSpaceLayer
from repro.core.library import ReuseLibrary
from repro.core.properties import DesignIssue
from repro.core.reindex import attach_alternative_hierarchy
from repro.core.values import EnumDomain
from repro.domains.crypto import vocab as v

LOW_POWER = "LowPower"
MID_POWER = "MidPower"
HIGH_PERFORMANCE = "HighPerformance"
POWER_CLASSES = (LOW_POWER, MID_POWER, HIGH_PERFORMANCE)

POWER_CLASS_ISSUE = "PowerClass"
ROOT_NAME = "MultiplierByPower"

#: Class boundaries in milliwatts (derived from the 768-bit library's
#: power distribution; see the power-aware example).
LOW_LIMIT_MW = 80.0
MID_LIMIT_MW = 130.0


def classify_power(core: DesignObject) -> Optional[str]:
    """Mirror-library classifier: hardware multipliers by power class."""
    if not core.has_merit(POWER_MW):
        return None
    if v.OMM_H_PATH not in core.cdo_name:
        return None
    power = core.merit(POWER_MW)
    if power <= LOW_LIMIT_MW:
        family = LOW_POWER
    elif power <= MID_LIMIT_MW:
        family = MID_POWER
    else:
        family = HIGH_PERFORMANCE
    return f"{ROOT_NAME}.{family}"


def build_power_hierarchy() -> ClassOfDesignObjects:
    """The alternative root: one generalized issue, by power class."""
    root = ClassOfDesignObjects(
        ROOT_NAME,
        "Hardware modular multipliers organised by power class — a "
        "co-existing specialization hierarchy for power-constrained "
        "exploration (paper Sec 6)")
    root.add_property(DesignIssue(
        POWER_CLASS_ISSUE, EnumDomain(list(POWER_CLASSES)),
        f"Power family: <= {LOW_LIMIT_MW:.0f} mW, <= {MID_LIMIT_MW:.0f} "
        f"mW, or above", generalized=True))
    for family in POWER_CLASSES:
        child = root.specialize(family)
        child.add_property(DesignIssue(
            v.ALGORITHM + "View", EnumDomain([v.MONTGOMERY, v.BRICKELL]),
            "Algorithm, revisited inside the power family"))
    return root


def add_power_view(layer: DesignSpaceLayer) -> ReuseLibrary:
    """Attach the power-first hierarchy to a built crypto layer."""
    return attach_alternative_hierarchy(
        layer, build_power_hierarchy(), classify_power,
        library_name="power-view")
