"""The cryptography design space layer (paper Sec 5 case study)."""

from repro.domains.crypto import vocab
from repro.domains.crypto.alt_hierarchy import (
    add_power_view,
    build_power_hierarchy,
    classify_power,
)
from repro.domains.crypto.constraints import (
    cc1_odd_modulo,
    cc2_radix_latency,
    cc3_delay_estimator,
    cc4_csa_for_wide_montgomery,
    cc5_mux_multipliers,
    cc6_slices,
    crypto_constraints,
)
from repro.domains.crypto.cores import (
    arithmetic_cores,
    build_libraries,
    exponentiator_cores,
    hardware_core,
    hardware_cores,
    software_core,
    software_cores,
)
from repro.domains.crypto.explore import (
    CASE_STUDY_ISSUES,
    case_study_requirements,
    conceptual_estimator,
    crypto_exploration_problem,
)
from repro.domains.crypto.hierarchy import build_operator_hierarchy
from repro.domains.crypto.layer import build_crypto_layer, case_study_session

__all__ = [
    "vocab",
    "cc1_odd_modulo", "cc2_radix_latency", "cc3_delay_estimator",
    "cc4_csa_for_wide_montgomery", "cc5_mux_multipliers", "cc6_slices",
    "crypto_constraints",
    "arithmetic_cores", "build_libraries", "exponentiator_cores",
    "hardware_core", "hardware_cores", "software_core", "software_cores",
    "build_operator_hierarchy",
    "build_crypto_layer", "case_study_session",
    "add_power_view", "build_power_hierarchy", "classify_power",
    "CASE_STUDY_ISSUES", "case_study_requirements",
    "conceptual_estimator", "crypto_exploration_problem",
]
