"""The consistency constraints of the crypto layer (paper Fig 13).

CC1-CC4 follow the paper cell by cell; CC5 is the companion constraint
the text mentions ("a similar constraint is also defined to enforce the
use of multiplexer-based multipliers for the same loop, in this case for
any EOL"); CC6 is the structural slice constraint implied by DI4
(``NumberOfSlices = EOL / SliceWidth``).

Line-number note: the paper writes ``oper(+,line:2)`` against Fig 10;
the executable listing in :mod:`repro.behavior.listings` computes the
quotient digit before the main addition, so the loop addition sits on
line 4 — the constraints below address it there.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.constraints import ConsistencyConstraint
from repro.core.relations import (
    Bindings,
    EliminateOptions,
    EstimatorInvocation,
    Formula,
    InconsistentOptions,
)
from repro.domains.crypto import vocab as v
from repro.estimation.tools import DELAY_TOOL
from repro.hw.adders import CSA
from repro.hw.multipliers import MUL


def cc1_odd_modulo() -> ConsistencyConstraint:
    """Montgomery requires an odd modulus (CC1)."""

    def inconsistent(bindings: Bindings) -> bool:
        return (bindings["O"] == v.NOT_GUARANTEED
                and bindings["A"] == v.MONTGOMERY)

    return ConsistencyConstraint(
        "CC1", "The Montgomery algorithm requires the modulo to be odd",
        independents={"O": f"{v.MODULO_IS_ODD}@{v.ALIAS_OMM}"},
        dependents={"A": f"{v.ALGORITHM}@*.Multiplier.Hardware"},
        relation=InconsistentOptions(
            inconsistent,
            "InconsistentOptions(O=notGuaranteed & A=Montgomery)",
            requires=("O", "A")),
    )


def cc2_radix_latency() -> ConsistencyConstraint:
    """The greater the radix, the smaller the latency in cycles (CC2).

    ``L = 2 * EOL / R + 1`` — the paper's heuristic for Montgomery
    multipliers built with carry-save adders.
    """

    def latency(bindings: Bindings) -> float:
        return 2.0 * bindings["EOL"] / bindings["R"] + 1.0

    return ConsistencyConstraint(
        "CC2", "The greater the radix, the smaller the latency in cycles "
               "(Montgomery with carry-save loop adders)",
        independents={
            "R": f"{v.RADIX}@*.Hardware.Montgomery",
            "EOL": f"{v.EOL}@Operator",
            "CSA": f"oper(+,line:4)@{v.BEHAVIORAL_DESCRIPTION}"
                   f"@*.Hardware.Montgomery",
        },
        dependents={"L": f"{v.LATENCY_CYCLES}@*.Multiplier.Hardware"},
        relation=Formula("L", latency,
                         "L = 2 * EOL / R + 1 cycles",
                         requires=("R", "EOL")),
    )


def cc3_delay_estimator() -> ConsistencyConstraint:
    """Behavioral decomposition impacts delay (CC3): the utilization
    context of the BehaviorDelayEstimator."""
    return ConsistencyConstraint(
        "CC3", "Rank alternative behavioral descriptions by maximum "
               "combinational delay when no suitable cores exist",
        independents={
            "B": f"{v.BEHAVIORAL_DESCRIPTION}@*.Multiplier.Hardware.*",
            "EOL": f"{v.EOL}@Operator",
        },
        dependents={
            "MaxCombDelay_R": f"{v.MAX_COMB_DELAY}@*.Multiplier.Hardware"},
        relation=EstimatorInvocation(
            "MaxCombDelay_R", DELAY_TOOL,
            f"MaxCombDelay_R = {DELAY_TOOL}(B)",
            requires=("B",)),
    )


def cc4_csa_for_wide_montgomery() -> ConsistencyConstraint:
    """Inferior solutions eliminated (CC4): for Montgomery with
    EOL >= 32, only carry-save adders may implement the loop additions
    (unbounded carry propagation makes everything else dominated)."""

    def eliminate(bindings: Bindings) -> Sequence[Tuple[str, object]]:
        if bindings["A"] != v.MONTGOMERY or bindings["EOL"] < 32:
            return []
        return [(v.ADDER_IMPL, option)
                for option in v.ADDER_OPTIONS if option != CSA]

    return ConsistencyConstraint(
        "CC4", "For Montgomery with EOL >= 32, non-carry-save loop "
               "adders are dominated (unbounded carry propagation, "
               "large area)",
        independents={
            "EOL": f"{v.EOL}@Operator",
            "A": f"{v.ALGORITHM}@*.Modular.Multiplier.Hardware",
        },
        dependents={"BD": f"{v.ADDER_IMPL}@*.Multiplier.Hardware"},
        shorts={"Adders": f"oper(+,line:4)@{v.BEHAVIORAL_DESCRIPTION}"
                          f"@*.Hardware.Montgomery"},
        relation=EliminateOptions(
            eliminate,
            "InconsistentOptions(A=Montgomery & EOL >= 32 & "
            "Algorithm@Adders != CSA)",
            requires=("EOL", "A")),
    )


def cc5_mux_multipliers() -> ConsistencyConstraint:
    """Companion to CC4: the loop's digit multiplications should use
    multiplexer-based multipliers, for any EOL."""

    def eliminate(bindings: Bindings) -> Sequence[Tuple[str, object]]:
        if bindings["A"] != v.MONTGOMERY:
            return []
        return [(v.MULT_IMPL, MUL)]

    return ConsistencyConstraint(
        "CC5", "Array multipliers for the Montgomery loop products are "
               "dominated by multiplexer-based multipliers at every EOL",
        independents={
            "A": f"{v.ALGORITHM}@*.Modular.Multiplier.Hardware",
        },
        dependents={"M": f"{v.MULT_IMPL}@*.Multiplier.Hardware"},
        relation=EliminateOptions(
            eliminate,
            "InconsistentOptions(A=Montgomery & "
            "MultiplierImplementation=Array-Multiplier)",
            requires=("A",)),
    )


def cc6_slices() -> ConsistencyConstraint:
    """Structural constraint of DI4: the slices tile the operand."""

    def slices(bindings: Bindings) -> int:
        return int(bindings["EOL"]) // int(bindings["W"])

    def check(value: object, bindings: Bindings) -> Optional[str]:
        if int(bindings["EOL"]) % int(bindings["W"]):
            return (f"slice width {bindings['W']} does not divide "
                    f"EOL {bindings['EOL']}")
        return None

    return ConsistencyConstraint(
        "CC6", "The slice width must tile the operand: "
               "NumberOfSlices = EOL / SliceWidth",
        independents={
            "EOL": f"{v.EOL}@Operator",
            "W": f"{v.SLICE_WIDTH}@*.Multiplier.Hardware",
        },
        dependents={"S": f"{v.NUM_SLICES}@*.Multiplier.Hardware"},
        relation=Formula("S", slices,
                         "NumberOfSlices = EOL / SliceWidth",
                         requires=("EOL", "W"), check=check),
    )


def crypto_constraints() -> List[ConsistencyConstraint]:
    """All consistency constraints of the layer, CC1..CC6."""
    return [
        cc1_odd_modulo(),
        cc2_radix_latency(),
        cc3_delay_estimator(),
        cc4_csa_for_wide_montgomery(),
        cc5_mux_multipliers(),
        cc6_slices(),
    ]
