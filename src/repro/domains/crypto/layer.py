"""Assembling the cryptography design space layer.

``build_crypto_layer`` wires everything together exactly as Fig 1
prescribes: the CDO hierarchy, the paper's aliases, the consistency
constraints, the registered estimation tools and path selectors, and the
reuse libraries populated for the target operand length.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.behavior.operators import register_selectors
from repro.core.layer import DesignSpaceLayer
from repro.core.session import ExplorationSession
from repro.domains.crypto import vocab as v
from repro.domains.crypto.constraints import crypto_constraints
from repro.domains.crypto.cores import build_libraries
from repro.domains.crypto.hierarchy import build_operator_hierarchy
from repro.estimation.tools import register_estimators


def build_crypto_layer(eol: int = 768,
                       technologies: Sequence[str] = ("0.35u",),
                       include_software: bool = True,
                       include_arithmetic: bool = True,
                       include_constraints: bool = True,
                       word_bits: int = 32,
                       include_exponentiators: bool = True,
                       strict_lint: bool = False
                       ) -> DesignSpaceLayer:
    """The design space layer of the paper's Sec 5 case study.

    ``eol`` is the operand length the reuse libraries are characterized
    for (the sliced hardware cores' figures of merit depend on it);
    requirement values themselves are entered later, per session.
    ``strict_lint`` additionally runs the static-analysis rules and
    refuses to return a layer with error-severity findings.
    """
    layer = DesignSpaceLayer(
        "crypto",
        "Design space layer for encryption applications: modular "
        "exponentiation and multiplication operators (DATE 1999 case "
        "study)")
    layer.add_root(build_operator_hierarchy())
    layer.add_alias(v.ALIAS_OMM, v.OMM_PATH)
    layer.add_alias(v.ALIAS_OMM_H, v.OMM_H_PATH)
    layer.add_alias(v.ALIAS_OMM_HM, v.OMM_HM_PATH)
    layer.add_alias(v.ALIAS_OMM_HB, v.OMM_HB_PATH)
    layer.add_alias(v.ALIAS_OMM_S, v.OMM_S_PATH)
    layer.add_alias(v.ALIAS_OME, v.OME_PATH)
    register_selectors(layer.selectors)
    register_estimators(layer)
    if include_constraints:
        for constraint in crypto_constraints():
            layer.add_constraint(constraint)
    for library in build_libraries(eol, technologies, include_software,
                                   include_arithmetic, word_bits,
                                   include_exponentiators):
        layer.attach_library(library)
    layer.validate()
    if strict_lint:
        layer.lint(strict=True)
    return layer


def case_study_session(layer: Optional[DesignSpaceLayer] = None,
                       eol: int = 768,
                       latency_us: float = 8.0) -> ExplorationSession:
    """A session pre-loaded with the Fig 8 requirement values.

    Enters Req1..Req5 from the coprocessor specification ([10]/[11]):
    768-bit operands, odd modulus guaranteed, one multiplication within
    8 microseconds.  The session is left at the OMM CDO, ready for the
    DI1 decision.
    """
    layer = layer if layer is not None else build_crypto_layer(eol)
    session = ExplorationSession(
        layer, v.OMM_PATH,
        merit_metrics=("area", "latency_ns", "delay_us", "power_mw"))
    session.set_requirement(v.EOL, eol)
    session.set_requirement(v.OPERAND_CODING, v.CODING_2SC)
    session.set_requirement(v.RESULT_CODING, v.CODING_REDUNDANT)
    session.set_requirement(v.MODULO_IS_ODD, v.GUARANTEED)
    session.set_requirement(v.LATENCY_US, latency_us)
    return session
