"""The CDO hierarchy of the cryptography layer (paper Figs 5, 7, 8, 11).

Builds the ``Operator`` specialization tree::

    Operator
    |-- LogicArithmetic
    |   |-- Logic
    |   `-- Arithmetic
    |       |-- Adder        -> Ripple-Carry / Carry-Look-Ahead / Carry-Save
    |       `-- Multiplier   -> Array-Multiplier / Multiplexer-Based
    `-- Modular
        |-- Exponentiator
        `-- Multiplier (OMM)                 [Req1..Req5, DI1]
            |-- Hardware (OMM-H)             [DI2..DI7]
            |   |-- Montgomery (OMM-HM)      [Fig 10 behavioral description]
            |   `-- Brickell  (OMM-HB)
            `-- Software (OMM-S)
                |-- Pentium-60               [Language/Variant/WordSize]
                |-- Embedded-RISC
                `-- Embedded-DSP

The first three levels are split "with respect to commonalities in
functionality"; from OMM down, the generalized issues partition by
achievable figures of merit, exactly as Sec 5 argues.
"""

from __future__ import annotations

from repro.behavior.listings import (
    brickell_behavior,
    modexp_behavior,
    montgomery_behavior,
)
from repro.core.cdo import ClassOfDesignObjects
from repro.core.properties import (
    BehavioralDecomposition,
    BehavioralDescription,
    DesignIssue,
    Requirement,
    RequirementSense,
)
from repro.core.values import (
    DivisorDomain,
    EnumDomain,
    PowerOfTwoDomain,
    PredicateDomain,
    RealRange,
)
from repro.domains.crypto import vocab as v


def build_operator_hierarchy() -> ClassOfDesignObjects:
    """Construct the full Operator tree and return its root."""
    root = _operator_root()
    _logic_arithmetic_branch(root)
    _modular_branch(root)
    return root


def _operator_root() -> ClassOfDesignObjects:
    root = ClassOfDesignObjects(
        "Operator",
        "All arithmetic/logic operator design objects for encryption "
        "applications (paper Fig 5)")
    # Fig 8 prints Req1's SetOfValues as {2^i | i in Z+} yet assigns the
    # non-power-of-two 768; we widen the set to byte multiples, which
    # covers both the printed set and the case study's value.
    root.add_property(Requirement(
        v.EOL,
        PredicateDomain(
            lambda value, _ctx: (isinstance(value, int)
                                 and not isinstance(value, bool)
                                 and value > 0 and value % 8 == 0),
            "{8i | i in Z+} (bits)",
            samples=(8, 16, 32, 64, 128, 256, 512, 768, 1024)),
        "Required operand word length in bits (Req1); encryption "
        "applications use operands up to 2^1000",
        sense=RequirementSense.AT_LEAST_SUPPORT, unit="bits"))
    root.add_property(DesignIssue(
        v.OPERATOR_CLASS, EnumDomain(["LogicArithmetic", "Modular"]),
        "First functional split of the operator space: conventional "
        "logic/arithmetic operators vs modular-arithmetic operators",
        generalized=True))
    return root


def _logic_arithmetic_branch(root: ClassOfDesignObjects) -> None:
    la = root.specialize(
        "LogicArithmetic", name="LogicArithmetic",
        doc="Conventional (non-modular) logic and arithmetic operators")
    la.add_property(DesignIssue(
        v.LA_FUNCTION, EnumDomain(["Logic", "Arithmetic"]),
        "Bitwise/logic function units vs numeric arithmetic units",
        generalized=True))
    la.specialize("Logic", doc="Bitwise and boolean function units")
    arith = la.specialize("Arithmetic",
                          doc="Numeric arithmetic operator units")
    arith.add_property(DesignIssue(
        v.ARITH_FUNCTION, EnumDomain(["Adder", "Multiplier"]),
        "The arithmetic function realized by the unit", generalized=True))
    adder = arith.specialize("Adder", doc="Binary adder design objects")
    adder.add_property(DesignIssue(
        v.ADDER_STYLE, EnumDomain(list(v.ADDER_OPTIONS)),
        "Adder logic style: constant-delay redundant rows (Carry-Save), "
        "logarithmic look-ahead trees, or linear ripple chains",
        generalized=True))
    adder.specialize_all()
    mult = arith.specialize("Multiplier",
                            doc="Binary multiplier design objects")
    mult.add_property(DesignIssue(
        v.MULT_STYLE, EnumDomain([v.MULT_OPTIONS[1], v.MULT_OPTIONS[0]]),
        "Multiplier structure: full array multiplier vs multiplexer "
        "selection over precomputed multiples", generalized=True))
    mult.specialize_all()


def _modular_branch(root: ClassOfDesignObjects) -> None:
    modular = root.specialize(
        "Modular", name="Modular",
        doc="Modular-arithmetic operators, the substrate of public-key "
            "encryption (paper Sec 5)")
    modular.add_property(DesignIssue(
        v.MODULAR_FUNCTION, EnumDomain(["Exponentiator", "Multiplier"]),
        "Modular exponentiation (the coprocessor's top function) vs "
        "modular multiplication (its basic operation)", generalized=True))
    _exponentiator(modular)
    _modular_multiplier(modular)


def _exponentiator(modular: ClassOfDesignObjects) -> None:
    exp = modular.specialize(
        "Exponentiator", doc="Modular exponentiation: M^E mod N (paper "
                             "ref [10]'s coprocessor function)")
    exp.add_property(DesignIssue(
        v.EXP_SCHEDULE, EnumDomain(list(v.SCHEDULES)),
        "Exponentiation schedule: binary square-and-multiply vs m-ary "
        "windowing (fewer multiplications, precompute table)"))
    # The paper's closing note: bus interface requirements "must be
    # specified for each main architectural component of a
    # system-on-a-chip" — the coprocessor is one, its multiplier block
    # is not, so the requirement lives here.
    exp.add_property(Requirement(
        "BusInterface",
        EnumDomain(["VSI-PBus", "AMBA-AHB", "Custom"]),
        "On-chip bus protocol the coprocessor must present (VSI "
        "alliance standard interfaces; paper Secs 3 and 5)"))
    exp.add_property(BehavioralDescription(
        v.BEHAVIORAL_DESCRIPTION,
        "Algorithm-level description of binary modular exponentiation",
        description=modexp_behavior()))
    exp.add_property(BehavioralDecomposition(
        v.DECOMPOSITION,
        "The modular multiplications in the exponentiation loop are "
        "designed by exploring the Modular Multiplier CDO (the case "
        "study's Sec 5 transition)",
        source=f"{v.BEHAVIORAL_DESCRIPTION}@*.Modular.Exponentiator",
        restrict_pattern="Operator.Modular.Multiplier"))


def _modular_multiplier(modular: ClassOfDesignObjects) -> None:
    omm = modular.specialize(
        "Multiplier", doc="Modular multiplication A x B mod M — the "
                          "Operator-Modular-Multiplier (OMM) CDO of "
                          "paper Sec 5.1.3")
    # Requirements (Fig 8).  Req1 (EOL) is inherited from Operator.
    omm.add_property(Requirement(
        v.OPERAND_CODING, EnumDomain(list(v.CODINGS)),
        "Coding of the input operands (Req2); mismatches against a "
        "core's behavioral description imply conversion blocks"))
    omm.add_property(Requirement(
        v.RESULT_CODING, EnumDomain(list(v.CODINGS)),
        "Coding accepted for the result (Req3); redundant is acceptable "
        "when the consumer is the exponentiator loop itself"))
    omm.add_property(Requirement(
        v.MODULO_IS_ODD, EnumDomain([v.GUARANTEED, v.NOT_GUARANTEED]),
        "Whether the application guarantees an odd modulus (Req4); "
        "cryptography moduli are prime hence odd"))
    omm.add_property(Requirement(
        v.LATENCY_US, RealRange(lo=0.0, unit="us"),
        "Maximum latency of a single modular multiplication (Req5)",
        sense=RequirementSense.MAX, unit="us"))
    # DI1 — the generalized implementation-style issue.
    omm.add_property(DesignIssue(
        v.IMPLEMENTATION_STYLE, EnumDomain([v.HARDWARE, v.SOFTWARE]),
        "Hardware and software realizations offer radically different "
        "performance ranges for this application (Fig 6), so this issue "
        "partitions the space up-front (DI1)", generalized=True))
    _hardware_subtree(omm)
    _software_subtree(omm)


def _hardware_subtree(omm: ClassOfDesignObjects) -> None:
    hw = omm.specialize(
        v.HARDWARE, doc="Hardware modular multipliers (OMM-H); the "
                        "generalized 'hardware' option collapses all "
                        "layout-style and technology alternatives")
    hw.add_property(DesignIssue(
        v.LAYOUT_STYLE, EnumDomain(list(v.LAYOUT_STYLES)),
        "Physical design style (DI5); discriminates the 'real' options "
        "lumped into the generalized Hardware alternative"))
    hw.add_property(DesignIssue(
        v.FAB_TECH, EnumDomain(list(v.TECH_OPTIONS)),
        "Fabrication technology node (DI6)"))
    hw.add_property(DesignIssue(
        v.RADIX, PowerOfTwoDomain(max_value=v.EOL),
        "Digits of the operand processed per iteration (DI3); bounded "
        "by the operand length", default=2))
    hw.add_property(DesignIssue(
        v.SLICE_WIDTH, PowerOfTwoDomain(max_value=v.EOL),
        "Width of the datapath slices the multiplier is built from; "
        "sets the achievable clock rate"))
    hw.add_property(DesignIssue(
        v.NUM_SLICES, DivisorDomain(of=v.EOL),
        "Number of identical slices composing the full-width datapath "
        "(DI4); derived from the slice width through a consistency "
        "constraint", default=1))
    hw.add_property(DesignIssue(
        v.ADDER_IMPL, EnumDomain(list(v.ADDER_OPTIONS)),
        "Adder structure used for the loop additions — the DI7 "
        "decomposition choice realized on the Arithmetic.Adder CDO"))
    hw.add_property(DesignIssue(
        v.MULT_IMPL, EnumDomain(list(v.MULT_OPTIONS)),
        "Digit-multiplier structure for radix > 2 — the DI7 "
        "decomposition choice realized on the Arithmetic.Multiplier CDO"))
    hw.add_property(Requirement(
        v.LATENCY_CYCLES, RealRange(lo=0.0, unit="cycles"),
        "Latency of one multiplication in clock cycles; derived by CC2 "
        "from the radix and operand length",
        sense=RequirementSense.MAX, unit="cycles"))
    hw.add_property(Requirement(
        v.MAX_COMB_DELAY, RealRange(lo=0.0, unit="gate levels"),
        "Rank of the selected behavioral description by maximum "
        "combinational delay; derived by CC3's estimator when no "
        "suitable cores exist",
        sense=RequirementSense.MAX, unit="gate levels"))
    hw.add_property(BehavioralDecomposition(
        v.DECOMPOSITION,
        "The critical operators of the multiplier loop are designed by "
        "exploring the Arithmetic Adder/Multiplier CDOs, restricted to "
        "hardware realizations (DI7)",
        source=f"{v.BEHAVIORAL_DESCRIPTION}@*.Multiplier.Hardware.*",
        restrict_pattern="Operator.LogicArithmetic.Arithmetic.*"))
    hw.add_property(DesignIssue(
        v.ALGORITHM, EnumDomain([v.MONTGOMERY, v.BRICKELL]),
        "Modular multiplication algorithm (DI2); generalized because "
        "Montgomery's consistent superiority (Fig 9) makes this a "
        "coarse partition, not a fine-grained trade-off",
        generalized=True, default=v.MONTGOMERY))
    montgomery = hw.specialize(
        v.MONTGOMERY, doc="Hardware Montgomery multipliers (OMM-HM); "
                          "requires an odd modulus, best area/delay")
    montgomery.add_property(BehavioralDescription(
        v.BEHAVIORAL_DESCRIPTION,
        "Fig 10's radix-r Montgomery listing; the loop addition the "
        "paper's CC2/CC4 address as oper(+,line:2) is line 4 here (the "
        "executable listing computes the quotient digit first)",
        description=montgomery_behavior()))
    brickell = hw.specialize(
        v.BRICKELL, doc="Hardware Brickell multipliers (OMM-HB); works "
                        "for any modulus, pays per-step reduction")
    brickell.add_property(BehavioralDescription(
        v.BEHAVIORAL_DESCRIPTION,
        "MSB-first interleaved multiplication with per-step mod M "
        "reduction",
        description=brickell_behavior()))


def _software_subtree(omm: ClassOfDesignObjects) -> None:
    sw = omm.specialize(
        v.SOFTWARE, doc="Software modular multipliers (OMM-S): routines "
                        "plus the processors they run on")
    sw.add_property(DesignIssue(
        v.PLATFORM, EnumDomain(list(v.PLATFORMS)),
        "Programmable platform executing the routine; platforms differ "
        "in achievable ranges, so the issue is generalized",
        generalized=True))
    sw.add_property(DesignIssue(
        v.LANGUAGE, EnumDomain(list(v.LANGUAGES)),
        "Implementation language: hand-scheduled assembly vs portable C "
        "(roughly 7x apart on 1996 compilers)"))
    sw.add_property(DesignIssue(
        v.SCAN_VARIANT, EnumDomain(list(v.SW_VARIANTS)),
        "Operand/product scanning organization of the word-level "
        "Montgomery routine (Koc/Acar/Kaliski taxonomy)"))
    sw.add_property(DesignIssue(
        v.WORD_SIZE, EnumDomain([16, 32]),
        "Single-precision word size of the routine"))
    for platform in v.PLATFORMS:
        sw.specialize(platform,
                      doc=f"Software multipliers executing on {platform}")
