"""Snapshot-immutability checker (DSA020/DSA021).

A hydrated layer — one obtained from ``LayerSnapshot.hydrate()``, the
per-process ``_LayerCache``, or the ``_worker_layer`` dispatcher — is
shared across every task a worker runs (and, under the thread backend,
across workers).  Worker-side code may *read* it freely; writing to it
corrupts every sibling task's view and invalidates nothing.

The pass tracks, inside each worker-reachable function, which locals
were assigned from a hydration source (including the first element of a
tuple unpack), then flags:

* **DSA020** — calling a representation mutator (``add_root``,
  ``attach``, ``set_property``, ...) on such a local;
* **DSA021** — calling ``observe(...)`` on one: installing a trace
  recorder hands a single-owner object to concurrent tasks, which the
  contract forbids outright.

This is lexical and local by design: aliases that escape the function
are the runtime sanitizer's job (``DSL_SANITIZE=1`` seals hydrated
layers so any missed mutation becomes a hard
:class:`~repro.errors.SanitizerError`).
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.contract import ConcurrencyContract
from repro.analysis.inventory import FunctionInfo, ProjectModel
from repro.analysis.model import Finding
from repro.analysis.registry import (RECORDER_INSTALLED_IN_WORKER,
                                     WORKER_MUTATES_HYDRATED_LAYER)


def _hydrated_locals(fn: FunctionInfo,
                     contract: ConcurrencyContract) -> Set[str]:
    out: Set[str] = set()
    for assign in fn.local_call_assigns:
        if assign.kind == "name" and \
                assign.callee in contract.hydration_functions:
            out.add(assign.local)
        elif assign.kind == "attr" and \
                assign.callee in contract.hydration_methods:
            out.add(assign.local)
        elif assign.kind == "chain" and \
                assign.callee in contract.hydration_chains:
            out.add(assign.local)
    return out


def check_snapshots(model: ProjectModel,
                    contract: ConcurrencyContract) -> List[Finding]:
    findings: List[Finding] = []
    reachable = model.reachable(contract)
    for qualname in sorted(reachable):
        fn = model.functions.get(qualname)
        if fn is None:
            continue
        hydrated = _hydrated_locals(fn, contract)
        if not hydrated:
            continue
        module = model.modules[fn.module]
        for call in fn.calls:
            if call.kind != "attr" or call.base not in hydrated:
                continue
            if call.name == "observe":
                findings.append(RECORDER_INSTALLED_IN_WORKER.make(
                    module.path, call.lineno, fn.qualname,
                    f"worker code installs a recorder on hydrated layer "
                    f"{call.base!r}; TraceRecorder is single-owner",
                    hint="rebuild the layer per task (layer_factory) when "
                         "tracing is requested instead of observing the "
                         "shared hydrated copy"))
            elif call.name in contract.layer_mutators:
                findings.append(WORKER_MUTATES_HYDRATED_LAYER.make(
                    module.path, call.lineno, fn.qualname,
                    f"worker code calls mutator '{call.name}' on hydrated "
                    f"layer {call.base!r} shared across tasks",
                    hint="hydrated layers are frozen; copy or rebuild "
                         "before mutating (the sanitizer enforces this at "
                         "runtime under DSL_SANITIZE=1)"))
    return findings
