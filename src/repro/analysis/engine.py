"""Analyzer driver: file discovery, passes, suppressions, report.

The suppression grammar is a source comment on the offending line or
the line directly above::

    # dsa: allow[DSA002] -- rebuilds are idempotent; store is GIL-atomic
    self._merit_sorted[key] = cached

Multiple codes separate with commas.  The ``-- justification`` tail is
mandatory: an allow without one suppresses its target but earns the
error-grade **DSA003**, so the gate still fails.  An allow naming a code
with no matching finding earns **DSA004** — stale suppressions hide
future regressions.  Suppressed findings stay in the report (and the
JSON output) as the audit trail; only :attr:`AnalysisReport.active`
findings count toward ``--fail-on``.
"""

from __future__ import annotations

import importlib
import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.contract import DEFAULT_CONTRACT, ConcurrencyContract
from repro.analysis.deadlock import LockGraph, build_lock_graph, find_deadlocks
from repro.analysis.determinism import check_determinism
from repro.analysis.epochs import check_epochs
from repro.analysis.inventory import (ModuleInfo, ProjectModel, build_model,
                                      collect_files)
from repro.analysis.model import AnalysisReport, Finding, merge_findings
from repro.analysis.races import find_races
from repro.analysis.registry import (DEFAULT_REGISTRY, SUPPRESSION_WITHOUT_JUSTIFICATION,
                                     UNUSED_SUPPRESSION, AnalysisConfig,
                                     AnalysisRegistry)
from repro.analysis.snapshots import check_snapshots

_ALLOW_RE = re.compile(
    r"#\s*dsa:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(?:--\s*(.+?)\s*)?$")


@dataclass
class _Allow:
    """One parsed ``# dsa: allow[...]`` comment."""

    lineno: int
    codes: Tuple[str, ...]
    justification: str
    target: Optional[int] = None   #: statement line the allow covers
    used: Set[str] = field(default_factory=set)


def _resolve_target(lines: List[str], lineno: int) -> Optional[int]:
    """The statement an allow comment covers: its own line when inline,
    else the next non-blank, non-comment line (justifications may wrap
    over several comment lines)."""
    text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
    if text.split("#", 1)[0].strip():
        return lineno
    for later in range(lineno + 1, len(lines) + 1):
        stripped = lines[later - 1].strip()
        if not stripped or stripped.startswith("#"):
            continue
        return later
    return None


def _parse_allows(module: ModuleInfo) -> List[_Allow]:
    """Extract allow comments via :mod:`tokenize`, so the syntax can be
    quoted in docstrings and string literals without matching."""
    out: List[_Allow] = []
    lines = module.lines
    try:
        tokens = tokenize.generate_tokens(
            io.StringIO(module.source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(sorted({c.strip()
                                  for c in match.group(1).split(",")
                                  if c.strip()}))
            out.append(_Allow(lineno=token.start[0], codes=codes,
                              justification=(match.group(2) or "").strip(),
                              target=_resolve_target(lines, token.start[0])))
    except tokenize.TokenizeError:  # pragma: no cover - code ast-parses
        pass
    return out


def _apply_suppressions(model: ProjectModel, findings: List[Finding],
                        registry: AnalysisRegistry,
                        config: AnalysisConfig) -> List[Finding]:
    allows_by_path: Dict[str, List[_Allow]] = {}
    for module in model.modules.values():
        parsed = _parse_allows(module)
        if parsed:
            allows_by_path[module.path] = parsed

    out: List[Finding] = []
    for finding in findings:
        matched: Optional[_Allow] = None
        for allow in allows_by_path.get(finding.path, ()):
            if finding.line in (allow.lineno, allow.target) and \
                    finding.code in allow.codes:
                matched = allow
                break
        if matched is None:
            out.append(finding)
        else:
            matched.used.add(finding.code)
            out.append(finding.suppress(matched.justification))

    # audit the suppression comments themselves
    for path in sorted(allows_by_path):
        module_name = next(m.name for m in model.modules.values()
                           if m.path == path)
        for allow in allows_by_path[path]:
            if not allow.justification:
                rule = SUPPRESSION_WITHOUT_JUSTIFICATION
                if config.is_enabled(rule):
                    out.append(rule.make(
                        path, allow.lineno, module_name,
                        f"suppression of {', '.join(allow.codes)} has no "
                        f"'-- justification' tail",
                        hint="explain why the finding is acceptable: "
                             "'# dsa: allow[DSA0xx] -- <reason>'",
                        severity_override=config.severity_for(rule)))
            for code in allow.codes:
                if code in allow.used:
                    continue
                rule = UNUSED_SUPPRESSION
                if not config.is_enabled(rule):
                    continue
                detail = "matches no finding on its line" \
                    if code in registry else "names an unknown rule code"
                out.append(rule.make(
                    path, allow.lineno, module_name,
                    f"allow[{code}] {detail}",
                    hint="delete the stale suppression (or fix the code "
                         "reference) so it cannot mask a regression",
                    severity_override=config.severity_for(rule)))
    return out


def _resolve_root(paths: Sequence[str], files: Sequence[str],
                  root: Optional[str]) -> str:
    """Default analysis root: the sole directory argument, or the
    common parent of the given files."""
    if root is not None:
        return root
    dirs = [os.path.abspath(p) for p in paths if os.path.isdir(p)]
    if len(dirs) == 1:
        return dirs[0]
    root = os.path.commonpath(files) if files else os.getcwd()
    if os.path.isfile(root):
        root = os.path.dirname(root)
    return root


def analyze_paths(paths: Sequence[str], root: Optional[str] = None,
                  config: Optional[AnalysisConfig] = None,
                  contract: Optional[ConcurrencyContract] = None,
                  registry: Optional[AnalysisRegistry] = None
                  ) -> AnalysisReport:
    """Run all five passes over ``paths`` and return the report.

    ``root`` anchors the module names and the relative paths in
    findings; it defaults to the sole directory argument, or the common
    parent of the given files.
    """
    config = config if config is not None else AnalysisConfig()
    contract = contract if contract is not None else DEFAULT_CONTRACT
    registry = registry if registry is not None else DEFAULT_REGISTRY
    config.validate(registry)

    files = collect_files(paths)
    root = _resolve_root(paths, files, root)
    model = build_model(files, root)

    raw = (find_races(model, contract)
           + check_epochs(model, contract)
           + check_snapshots(model, contract)
           + find_deadlocks(model, contract)
           + check_determinism(model, contract))

    findings: List[Finding] = []
    for finding in raw:
        rule = registry.get(finding.code)
        if not config.is_enabled(rule):
            continue
        override = config.severity_for(rule)
        if override is not None:
            finding = replace(finding, severity=override)
        findings.append(finding)

    findings = _apply_suppressions(model, findings, registry, config)
    return merge_findings(os.path.abspath(root), len(files), [findings])


def lock_graph_paths(paths: Sequence[str], root: Optional[str] = None,
                     contract: Optional[ConcurrencyContract] = None
                     ) -> LockGraph:
    """Build the lock-acquisition graph for ``paths`` (the artifact the
    CI cycle-free assertion gates on; see ``repro analyze --lock-graph``)."""
    contract = contract if contract is not None else DEFAULT_CONTRACT
    files = collect_files(paths)
    root = _resolve_root(paths, files, root)
    model = build_model(files, root)
    return build_lock_graph(model, contract)


def lock_graph_package(package: str = "repro",
                       contract: Optional[ConcurrencyContract] = None
                       ) -> LockGraph:
    """Lock-acquisition graph for an importable package's source tree."""
    package_dir = _package_dir(package)
    return lock_graph_paths([package_dir],
                            root=os.path.dirname(package_dir),
                            contract=contract)


def _package_dir(package: str) -> str:
    module = importlib.import_module(package)
    package_file = getattr(module, "__file__", None)
    if package_file is None:
        from repro.errors import AnalysisError
        raise AnalysisError(f"package {package!r} has no source file")
    return os.path.dirname(os.path.abspath(package_file))


def analyze_package(package: str = "repro",
                    config: Optional[AnalysisConfig] = None,
                    contract: Optional[ConcurrencyContract] = None,
                    registry: Optional[AnalysisRegistry] = None
                    ) -> AnalysisReport:
    """Analyze an importable package's source tree (default: this repo)."""
    package_dir = _package_dir(package)
    return analyze_paths([package_dir], root=os.path.dirname(package_dir),
                         config=config, contract=contract,
                         registry=registry)
