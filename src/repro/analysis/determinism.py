"""Determinism analysis (DSA040–DSA043): digest-purity proofs.

PRs 6–9 enforce byte-identical frontiers/traces/payloads *dynamically*
with digest oracles.  This pass proves the property's precondition
statically: from every contract-declared digest entry point
(:attr:`ConcurrencyContract.digest_entry_points` — canonical trace
bytes, frontier digests, snapshot capture, the serving stack's
canonical JSON) it walks the typed call graph and reports any reachable
nondeterminism source:

* **DSA040** — wall-clock reads (``time.time``/``perf_counter``/
  ``datetime.now`` …): two runs of the same computation produce
  different bytes.
* **DSA041** — entropy (unseeded ``random``, ``os.urandom``,
  ``secrets``, ``uuid1``/``uuid4``): bytes differ even within one run.
* **DSA042** — object identity (``id()``, builtin ``hash()`` on
  arbitrary objects): values change per process under hash
  randomization and allocation order.
* **DSA043** — unordered ``set`` iteration flowing into an
  order-preserving consumer (``list``/``tuple``/``join``/
  comprehensions) without ``sorted()``: iteration order varies with
  insertion history and per-process hash seeds.  Plain ``for`` loops
  over sets are deliberately *not* flagged — commutative aggregation
  over a set is order-free and common.

The walk stops at functions named in
:attr:`ConcurrencyContract.determinism_boundaries` (with the reason
recorded in the contract — e.g. metrics side-channels whose output
never reaches the digest bytes).  Seeded generators
(``self._rng.random()``) are not flagged: only the module-level
``random.*`` / bare entropy builtins are nondeterminism sources.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.contract import ConcurrencyContract
from repro.analysis.inventory import CallSite, ProjectModel
from repro.analysis.model import Finding
from repro.analysis.registry import (ENTROPY_IN_DIGEST_PATH,
                                     IDENTITY_IN_DIGEST_PATH,
                                     TIME_IN_DIGEST_PATH,
                                     UNORDERED_ITERATION_IN_DIGEST)

_TIME_ATTRS = {
    "time": frozenset({"time", "time_ns", "perf_counter",
                       "perf_counter_ns", "monotonic", "monotonic_ns",
                       "process_time", "process_time_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}
_TIME_NAMES = frozenset({"perf_counter", "perf_counter_ns", "monotonic",
                         "monotonic_ns", "time_ns"})

_ENTROPY_ATTRS = {
    "random": frozenset({"random", "randint", "randrange", "choice",
                         "choices", "shuffle", "sample", "uniform",
                         "gauss", "getrandbits", "randbytes"}),
    "os": frozenset({"urandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}
_ENTROPY_NAMES = frozenset({"urandom", "token_hex", "token_bytes",
                            "token_urlsafe", "uuid4", "getrandbits",
                            "randbytes"})

_IDENTITY_NAMES = frozenset({"id", "hash"})


def _digest_reachable(model: ProjectModel, contract: ConcurrencyContract
                      ) -> Dict[str, Tuple[str, int]]:
    """qualname -> (originating digest entry point, hop distance)."""
    reached: Dict[str, Tuple[str, int]] = {}
    work: List[Tuple[str, str, int]] = []
    for entry in sorted(contract.digest_entry_points):
        if entry in model.functions:
            work.append((entry, entry, 0))
    while work:
        qual, origin, hops = work.pop(0)
        if qual in reached:
            continue
        reached[qual] = (origin, hops)
        if qual in contract.determinism_boundaries and hops > 0:
            continue
        fn = model.functions.get(qual)
        if fn is None:
            continue
        for call in fn.calls:
            for target in model.resolve_call_typed(fn, call):
                if target not in reached:
                    work.append((target, origin, hops + 1))
    return reached


def _via(qual: str, origin: str) -> str:
    return "a digest entry point" if qual == origin \
        else f"the digest path from {origin}"


def _classify(call: CallSite) -> Tuple[str, str]:
    """('', '') or (rule key, human description) for one call site."""
    if call.kind == "attr":
        base = call.base or ""
        if call.name in _TIME_ATTRS.get(base, ()):
            return "time", f"wall-clock read '{base}.{call.name}()'"
        if base == "secrets":
            return "entropy", f"entropy source 'secrets.{call.name}()'"
        if call.name in _ENTROPY_ATTRS.get(base, ()):
            return "entropy", f"entropy source '{base}.{call.name}()'"
    elif call.kind == "name":
        if call.name in _TIME_NAMES:
            return "time", f"wall-clock read '{call.name}()'"
        if call.name in _ENTROPY_NAMES:
            return "entropy", f"entropy source '{call.name}()'"
        if call.name in _IDENTITY_NAMES:
            return "identity", (f"object-identity builtin "
                                f"'{call.name}(...)'")
    return "", ""


def check_determinism(model: ProjectModel,
                      contract: ConcurrencyContract) -> List[Finding]:
    findings: List[Finding] = []
    reached = _digest_reachable(model, contract)
    for qual in sorted(reached):
        fn = model.functions.get(qual)
        if fn is None:
            continue
        origin, _hops = reached[qual]
        if qual in contract.determinism_boundaries:
            continue
        module = model.modules[fn.module]
        for call in fn.calls:
            family, desc = _classify(call)
            if not family:
                continue
            if family == "time":
                findings.append(TIME_IN_DIGEST_PATH.make(
                    module.path, call.lineno, fn.qualname,
                    f"{desc} on {_via(qual, origin)}: two runs of the "
                    f"same computation serialize different bytes",
                    hint="drop the timestamp from the canonical "
                         "projection, or declare the function a "
                         "determinism boundary with a reason"))
            elif family == "entropy":
                findings.append(ENTROPY_IN_DIGEST_PATH.make(
                    module.path, call.lineno, fn.qualname,
                    f"{desc} on {_via(qual, origin)}: the digest "
                    f"changes on every call",
                    hint="derive the value from the inputs (seeded or "
                         "content-addressed), or keep it out of the "
                         "canonical bytes"))
            else:
                findings.append(IDENTITY_IN_DIGEST_PATH.make(
                    module.path, call.lineno, fn.qualname,
                    f"{desc} on {_via(qual, origin)}: values vary per "
                    f"process (allocation order / hash randomization)",
                    hint="key on stable content (names, sorted tuples) "
                         "instead of object identity"))
        for site in fn.set_iterations:
            findings.append(UNORDERED_ITERATION_IN_DIGEST.make(
                module.path, site.lineno, fn.qualname,
                f"unordered set iteration ({site.how} over "
                f"'{site.desc}') on {_via(qual, origin)}: iteration "
                f"order varies with insertion history and the "
                f"per-process hash seed",
                hint="wrap the set in sorted(...) before it reaches "
                     "serialized output"))
    return findings


__all__: Sequence[str] = ("check_determinism",)
