"""Static concurrency/invariant analysis over the repo's own source.

Five passes — shared-state race detection (DSA001/DSA002), epoch-bump
verification (DSA010–DSA012), snapshot immutability (DSA020/DSA021),
deadlock detection over the lock-acquisition graph (DSA030–DSA032) and
digest-path determinism (DSA040–DSA043) — plus a suppression audit
(DSA003/DSA004), driven by the reified concurrency contract in
:mod:`repro.analysis.contract`.  The runtime
half lives in :mod:`repro.analysis.sanitizer` (``DSL_SANITIZE=1``).

This ``__init__`` is deliberately lazy (PEP 562): ``repro.core``
modules import :mod:`repro.analysis.sanitizer` for their mutation
hooks, and eagerly importing the analyzer here would close an import
cycle through :mod:`repro.core.lint`.
"""

from __future__ import annotations

import importlib
from typing import Any, List

_EXPORTS = {
    # model
    "Finding": "repro.analysis.model",
    "AnalysisReport": "repro.analysis.model",
    "merge_findings": "repro.analysis.model",
    # registry
    "AnalysisRule": "repro.analysis.registry",
    "AnalysisRegistry": "repro.analysis.registry",
    "AnalysisConfig": "repro.analysis.registry",
    "DEFAULT_REGISTRY": "repro.analysis.registry",
    "CATEGORIES": "repro.analysis.registry",
    # contract
    "ConcurrencyContract": "repro.analysis.contract",
    "EpochContract": "repro.analysis.contract",
    "DEFAULT_CONTRACT": "repro.analysis.contract",
    # engine
    "analyze_paths": "repro.analysis.engine",
    "analyze_package": "repro.analysis.engine",
    "lock_graph_paths": "repro.analysis.engine",
    "lock_graph_package": "repro.analysis.engine",
    # deadlock pass (the lock graph is a public artifact: CI asserts
    # over it and the CLI renders it)
    "LockGraph": "repro.analysis.deadlock",
    "LockNode": "repro.analysis.deadlock",
    "LockEdge": "repro.analysis.deadlock",
    "build_lock_graph": "repro.analysis.deadlock",
    "find_deadlocks": "repro.analysis.deadlock",
    # determinism pass
    "check_determinism": "repro.analysis.determinism",
    # inventory (for tests / tooling built on the model)
    "ProjectModel": "repro.analysis.inventory",
    "build_model": "repro.analysis.inventory",
    "collect_files": "repro.analysis.inventory",
}

__all__ = sorted(_EXPORTS) + ["sanitizer"]


def __getattr__(name: str) -> Any:
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(target), name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
